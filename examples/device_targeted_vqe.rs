//! Device-targeted VQE: ansatz → optimize → transpile → route.
//!
//! ```text
//! cargo run --example device_targeted_vqe
//! ```
//!
//! Runs a tiny VQE loop for the transverse-field Ising chain using the
//! Pauli-observable API, then transpiles the optimized ansatz to the
//! `{CX, U}` basis and routes it onto line, grid and heavy-hex devices —
//! showing the SWAP overhead that makes the paper's QEC agent
//! topology-specific (§IV-B).

use qugen::qalgo::vqe::{ansatz, ising_energy, optimize_sweep, param_count};
use qugen::qcir::transpile::transpile;
use qugen::qec::route::route;
use qugen::qec::topology::Topology;
use qugen::qsim::exec::Executor;
use qugen::qsim::observable::Hamiltonian;

pub fn main() {
    let n = 4;
    let layers = 2;
    let h = 0.4;

    // --- VQE loop ---------------------------------------------------------
    let mut params = vec![0.5; param_count(n, layers)];
    let mut energy = f64::INFINITY;
    for sweep in 0..8 {
        energy = optimize_sweep(n, layers, &mut params, h, 0.25 / (1.0 + sweep as f64));
    }
    println!("optimized Ising energy (h = {h}): {energy:.4}");
    let exact_aligned = -((n - 1) as f64) - h * n as f64;
    println!("aligned-product-state energy:     {exact_aligned:.4}");

    // Cross-check with the TFIM Hamiltonian observable.
    let qc = ansatz(n, layers, &params);
    let state = Executor::statevector(&qc);
    let direct = ising_energy(&state, h);
    let tfim_x = Hamiltonian::tfim_chain(n, 1.0, 0.0).expectation(&state);
    println!("ZZ part via Hamiltonian API:      {tfim_x:.4}");
    assert!((direct - energy).abs() < 1e-9);

    // --- Transpile + route ------------------------------------------------
    let basis = transpile(&qc);
    println!(
        "\nansatz: {} ops -> transpiled: {} ops ({} cx)",
        qc.len(),
        basis.len(),
        basis.count_gate("cx")
    );
    println!("\n| device | swaps | swaps per 2q gate |");
    println!("|---|---|---|");
    for device in [
        Topology::full(n),
        Topology::line(n),
        Topology::grid(2, 2),
        Topology::heavy_hex(1, 1),
    ] {
        match route(&basis, &device) {
            Ok(routed) => println!(
                "| {} | {} | {:.2} |",
                device.name(),
                routed.swap_count,
                routed.overhead(&basis)
            ),
            Err(e) => println!("| {} | — | {e} |", device.name()),
        }
    }
}
