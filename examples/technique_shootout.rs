//! Technique shootout: a small Figure-3-style sweep over the suite.
//!
//! ```text
//! cargo run --example technique_shootout
//! ```
//!
//! Compares base / fine-tuned / +RAG / +CoT / +SCoT at pass@1 on the full
//! 34-task suite (fewer samples than the bench binary, so it runs in
//! seconds) and prints the per-difficulty breakdown that explains *why*
//! the ordering holds: RAG fixes API errors (syntactic), CoT/SCoT fix
//! algorithm structure (semantic, dominating the advanced band).

use qugen::qeval::report::{evaluate, render_markdown};
use qugen::qeval::suite::test_suite;
use qugen::qlm::model::{CodeLlm, GenConfig};

pub fn main() {
    let llm = CodeLlm::new();
    let tasks = test_suite();
    let configs = [
        GenConfig::base(),
        GenConfig::fine_tuned(),
        GenConfig::with_rag(),
        GenConfig::with_cot(),
        GenConfig::with_scot(),
    ];
    let rows: Vec<_> = configs
        .iter()
        .map(|c| evaluate(&llm, &tasks, c, 8, 2024))
        .collect();
    println!("{}", render_markdown(&rows));

    println!("reading the table:");
    println!("- RAG mostly moves the *syntactic* column (import/deprecation fixes);");
    println!("- CoT/SCoT move the *advanced* column most (structure supplied by the plan);");
    println!("- pass@5 shows how much sampling more candidates helps:");
    for row in &rows {
        println!(
            "  {:>18}: pass@1 {:.1}% -> pass@5 {:.1}%",
            row.label,
            100.0 * row.pass_at_k(1),
            100.0 * row.pass_at_k(5)
        );
    }
}
