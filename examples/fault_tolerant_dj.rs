//! Fault-tolerant Deutsch–Jozsa: the paper's Figure 4 workload, end to end.
//!
//! ```text
//! cargo run --example fault_tolerant_dj
//! ```
//!
//! Generates a Deutsch–Jozsa program with the SCoT-configured pipeline,
//! then hands the compiled circuit to the QEC agent, which synthesizes a
//! surface-code decoder for the device and reports the before/after
//! distributions under an IBM-Brisbane-like noise profile.

use qugen::qagents::orchestrator::{Orchestrator, PipelineConfig, QecStage};
use qugen::qec::topology::Topology;
use qugen::qeval::suite::test_suite;
use qugen::qlm::model::GenConfig;

pub fn main() {
    let config = PipelineConfig {
        gen: GenConfig::with_scot(),
        max_passes: 3,
        qec: Some(QecStage {
            topology: Topology::grid(7, 7),
            physical_rate: 0.02,
            noise: qugen::qsim::profiles::ibm_brisbane_like(),
            shots: 4096,
        }),
    };
    let orchestrator = Orchestrator::new(config);
    let task = test_suite()
        .into_iter()
        .find(|t| t.id == "mid/dj-const")
        .expect("the DJ task exists");

    println!("prompt: {}\n", task.spec.prompt_text());

    // Find a seed whose final program compiles so the QEC stage runs.
    for seed in 0..64u64 {
        let report = orchestrator.run_task(&task, seed);
        let Some(qec) = &report.qec else { continue };
        println!("{}", report.summary());
        println!(
            "\nfinal program:\n{}",
            report.multipass.last().generation.source
        );
        println!("decoder: {}", qec.spec);
        println!(
            "\nwithout QEC: p(|000>) = {:.3}, TVD from ideal = {:.4}",
            qec.noisy.probability(0),
            qec.noisy_tvd()
        );
        println!(
            "with QEC:    p(|000>) = {:.3}, TVD from ideal = {:.4}",
            qec.corrected.probability(0),
            qec.corrected_tvd()
        );
        println!("\nimprovement: {:.4} TVD reduction", qec.improvement());
        return;
    }
    eprintln!("no compiling generation found in 64 seeds (unexpected)");
    std::process::exit(1);
}
