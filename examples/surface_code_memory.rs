//! Surface-code memory: measure the lifetime extension the QEC agent
//! promises.
//!
//! ```text
//! cargo run --example surface_code_memory --release
//! ```
//!
//! Part 1 sweeps physical error rates for distances 3 and 5 under the
//! union-find decoder (code-capacity noise) and prints the logical error
//! rate plus the lifetime-extension factor — the quantity the QEC agent
//! feeds into the Figure 4(c) re-simulation.
//!
//! Part 2 runs the *circuit-level* experiment: the code is lowered to its
//! syndrome-extraction circuit (49 qubits at distance 5, 97 at distance
//! 7) and executed through `qsim`'s `Executor` on the stabilizer-tableau
//! backend — a workload no dense simulator can touch — with gate-level
//! depolarizing noise and space-time decoding. The distance-7 rows record
//! 97-bit outcome words, which the multi-word classical-register layer
//! packs across two `u64`s (the old one-word layer refused them).

use qugen::qec::memory::{circuit_level_experiment, code_capacity_experiment, DecoderKind};
use qugen::qsim::noise::NoiseModel;

pub fn main() {
    println!("code capacity (perfect syndrome extraction):");
    println!("| d | p | p_logical | lifetime extension |");
    println!("|---|---|---|---|");
    for &d in &[3usize, 5] {
        for &p in &[0.005, 0.01, 0.02, 0.05] {
            let r = code_capacity_experiment(d, p, DecoderKind::UnionFind, 3000, 99);
            println!(
                "| {d} | {p} | {:.5} | {:.1}x |",
                r.p_logical,
                r.lifetime_extension()
            );
        }
    }
    println!();
    println!("circuit level (tableau backend, 2 extraction rounds):");
    println!("| d | qubits | clbits | p2q | p_logical |");
    println!("|---|---|---|---|---|");
    for &(d, trials) in &[(3usize, 1500u64), (5, 1500), (7, 400)] {
        for &p in &[0.001, 0.004] {
            let noise = NoiseModel::uniform_depolarizing(p);
            let r = circuit_level_experiment(d, &noise, 2, trials, 7)
                .expect("memory circuits are always tableau-simulable");
            // clbits: 2 rounds of (d^2-1)/2 Z-stabilizer readouts + d^2
            // data bits — 97 at d = 7, past the one-word boundary.
            let clbits = (d * d - 1) + d * d;
            println!(
                "| {d} | {} | {clbits} | {p} | {:.5} |",
                2 * d * d - 1,
                r.p_logical
            );
        }
    }
    println!();
    println!("Below threshold (~10% for this noise model), the logical error");
    println!("rate falls well under the physical rate and improves with d —");
    println!("this is the \"extended average qubit lifetime\" of the paper's §IV-B.");
    println!("The circuit-level rows run 49- and 97-qubit Clifford circuits");
    println!("through the unified backend layer's tableau dispatch — impossible");
    println!("densely — and the d=7 rows record 97-bit multi-word outcomes.");
}
