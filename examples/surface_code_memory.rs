//! Surface-code memory: measure the lifetime extension the QEC agent
//! promises.
//!
//! ```text
//! cargo run --example surface_code_memory --release
//! ```
//!
//! Sweeps physical error rates for distances 3 and 5 under the union-find
//! decoder and prints the logical error rate plus the lifetime-extension
//! factor — the quantity the QEC agent feeds into the Figure 4(c)
//! re-simulation.

use qugen::qec::memory::{code_capacity_experiment, DecoderKind};

pub fn main() {
    println!("| d | p | p_logical | lifetime extension |");
    println!("|---|---|---|---|");
    for &d in &[3usize, 5] {
        for &p in &[0.005, 0.01, 0.02, 0.05] {
            let r = code_capacity_experiment(d, p, DecoderKind::UnionFind, 3000, 99);
            println!(
                "| {d} | {p} | {:.5} | {:.1}x |",
                r.p_logical,
                r.lifetime_extension()
            );
        }
    }
    println!();
    println!("Below threshold (~10% for this noise model), the logical error");
    println!("rate falls well under the physical rate and improves with d —");
    println!("this is the \"extended average qubit lifetime\" of the paper's §IV-B.");
}
