//! Serving: a real TCP round trip against an in-process `qugen-serve`.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! Starts the job service on an ephemeral local port, then acts as a
//! client over an actual `TcpStream`: submits a Bell-pair job, waits for
//! its counts, resubmits the same spec to show the cache hit, exercises
//! the typed refusals (malformed JSON, a program that fails the checker,
//! a circuit over the dense cap), and cross-checks the served counts
//! byte-for-byte against a direct [`Executor`] run of the same spec —
//! the determinism contract that makes serving (and caching) sound.

use qugen::qsim::exec::ExecutorConfig;
use qugen::qsim::job::JobSpec;
use qugen::qugen_serve::codec::Json;
use qugen::qugen_serve::proto::counts_to_json;
use qugen::qugen_serve::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const BELL: &str = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\n\
                    cx q[0], q[1];\nmeasure q -> c;\n";
const SHOTS: u64 = 1024;
const SEED: u64 = 0xB0B;

/// One request line out, one response line back.
fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writeln!(stream, "{line}").expect("write request");
    stream.flush().expect("flush request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Json::parse(response.trim_end()).expect("response is valid JSON")
}

pub fn main() {
    // Serve on an ephemeral port; the accept loop runs until shutdown.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = Arc::new(Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }));
    let accept_loop = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener))
    };

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    println!("connected to qugen-serve at {addr}");

    // Submit, then block on the result.
    let submit = format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":{SHOTS},\"seed\":{SEED},\"tag\":\"bell\"}}",
        Json::Str(BELL.to_string()).encode()
    );
    let accepted = round_trip(&mut stream, &mut reader, &submit);
    assert_eq!(accepted.get("ok"), Some(&Json::Bool(true)));
    let id = accepted.get("job").unwrap().as_u64().expect("job id");
    println!("submitted job {id} ({} shots, seed {SEED:#x})", SHOTS);

    let result = round_trip(
        &mut stream,
        &mut reader,
        &format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"),
    );
    assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(result.get("cached"), Some(&Json::Bool(false)));
    let served_counts = result.get("counts").expect("counts").clone();
    println!("counts over the wire: {}", served_counts.encode());

    // Determinism contract: a direct executor run of the same spec is
    // bit-identical to what the service returned — any thread count.
    let program = qugen::qcir::dsl::parse(BELL).expect("bell parses");
    let circuit = qugen::qcir::check::lower(&program).expect("bell checks");
    let exec = ExecutorConfig::new().threads(2).build();
    let direct = exec
        .try_run_job(&JobSpec::new(circuit, SHOTS, SEED))
        .expect("direct run");
    assert_eq!(
        served_counts.encode(),
        counts_to_json(&direct).encode(),
        "served counts must match direct execution byte-for-byte"
    );
    println!("direct executor run matches byte-for-byte");

    // Resubmitting the same spec is a cache hit: terminal immediately.
    let repeat = round_trip(&mut stream, &mut reader, &submit);
    assert_eq!(repeat.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(repeat.get("cached"), Some(&Json::Bool(true)));
    println!("resubmission served from cache (no re-execution)");

    // Typed refusals: malformed JSON, a program the checker rejects, and
    // a forced-dense circuit over the qubit cap.
    let parse_err = round_trip(&mut stream, &mut reader, "{not json");
    assert_eq!(parse_err.get("error").unwrap().as_str(), Some("parse"));
    let check_err = round_trip(
        &mut stream,
        &mut reader,
        "{\"op\":\"submit\",\"source\":\"import qasmlite 2.1;\\nfly q[0];\\n\",\
         \"shots\":1,\"seed\":0}",
    );
    assert_eq!(check_err.get("error").unwrap().as_str(), Some("check"));
    let too_big = format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":1,\"seed\":0,\"backend\":\"dense\"}}",
        Json::Str(
            "import qasmlite 2.1;\nqreg q[40];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n"
                .to_string()
        )
        .encode()
    );
    let refused = round_trip(&mut stream, &mut reader, &too_big);
    assert_eq!(refused.get("error").unwrap().as_str(), Some("sim"));
    let sim = refused.get("sim").expect("sim payload");
    println!(
        "typed refusal: {} (backend {}, cap {})",
        sim.get("code").unwrap().as_str().unwrap(),
        sim.get("backend").unwrap().as_str().unwrap(),
        sim.get("cap").unwrap().as_u64().unwrap(),
    );

    // Drain and stop the accept loop.
    let bye = round_trip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    drop(stream);
    accept_loop
        .join()
        .expect("accept loop joins")
        .expect("serve loop exits cleanly");
    println!("server drained and shut down");
}
