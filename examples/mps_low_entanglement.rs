//! Low-entanglement simulation past the dense cap with the MPS backend.
//!
//! ```text
//! cargo run --example mps_low_entanglement --release
//! QUGEN_BACKEND=mps:16 cargo run --example mps_low_entanglement --release
//! ```
//!
//! A 32-qubit 1D brickwork circuit (per-qubit RY rotations + nearest-
//! neighbor CP entanglers) is non-Clifford, so the tableau cannot run it,
//! and 32 qubits is past the 26-qubit dense cap — before the MPS backend
//! this workload was unsimulable here. The example shows the dense refusal
//! (a typed `SimError`, not a panic), runs the same circuit through MPS
//! auto-dispatch, and prints the bond dimension the state actually needed
//! plus the truncation ledger. A small cross-check at 10 qubits confirms
//! MPS and dense sampling agree.
//!
//! The backend is scriptable via `QUGEN_BACKEND` (`auto|dense|tableau|`
//! `mps[:χ]`) for the cross-check stage.

use qugen::qcir::circuit::Circuit;
use qugen::qsim::backend::{choice_from_env, BackendChoice};
use qugen::qsim::exec::{Executor, ExecutorConfig};
use qugen::qsim::mps::MpsState;

/// A 1D brickwork circuit: `depth` layers of RY rotations + alternating
/// nearest-neighbor CP entanglers, fully measured.
fn brickwork(n: usize, depth: usize) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for layer in 0..depth {
        for q in 0..n {
            qc.ry(0.3 + 0.1 * ((q + layer) % 7) as f64, q);
        }
        for q in ((layer % 2)..n - 1).step_by(2) {
            qc.cp(0.5 + 0.07 * (q % 5) as f64, q, q + 1);
        }
    }
    qc.measure_all();
    qc
}

pub fn main() {
    let n = 32;
    let qc = brickwork(n, 4);
    println!("{n}-qubit brickwork, depth 4, {} ops", qc.len());

    // 1. The dense engine refuses — with a typed error, not a panic.
    let refusal = ExecutorConfig::new()
        .backend(BackendChoice::Dense)
        .build()
        .try_run(&qc, 256, 1)
        .expect_err("32 qubits is past the dense cap");
    println!("dense engine: {refusal}");

    // 2. Auto dispatch routes the short-range general circuit to MPS.
    let counts = ExecutorConfig::new()
        .threads(2)
        .build()
        .try_run(&qc, 256, 1)
        .expect("short-range general circuits dispatch to the MPS engine");
    println!(
        "mps (auto):   {} shots over {} distinct outcomes",
        counts.shots(),
        counts.distinct_outcomes()
    );

    // 3. How much bond dimension did the state actually need?
    let mut mps = MpsState::new(n, 64);
    for op in qc.ops() {
        if let qugen::qcir::circuit::Op::Gate { gate, qubits } = op {
            mps.apply_gate(*gate, qubits);
        }
    }
    println!(
        "peak bond dimension {} (χ cap 64), discarded weight {:.2e}",
        mps.peak_bond(),
        mps.discarded_weight()
    );

    // 4. Cross-check at a dense-simulable size, backend from QUGEN_BACKEND:
    //    sampled counts on the selected backend against the *exact* dense
    //    distribution. Engines that cannot run the workload at all
    //    (tableau: non-Clifford) skip the stage instead of panicking.
    let small = brickwork(8, 2);
    let choice = choice_from_env();
    let exact = Executor::try_ideal_distribution(&small, 2)
        .expect("8 qubits fits the dense engine exactly");
    match ExecutorConfig::new()
        .backend(choice)
        .build()
        .try_run(&small, 8192, 3)
    {
        Ok(counts) => {
            let tvd = exact.tvd(&counts.to_distribution());
            println!("8-qubit cross-check vs exact dense ({choice}): tvd = {tvd:.4}");
            assert!(tvd < 0.1, "backends disagree: tvd = {tvd}");
        }
        Err(e) => println!("8-qubit cross-check skipped for backend {choice}: {e}"),
    }
}
