//! Quickstart: run the full three-agent pipeline on one task.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the default pipeline (fine-tuned simulated LLM, 3-pass semantic
//! repair loop, no QEC stage), asks it to generate a Bell-pair program,
//! and prints the inter-agent transcript plus the final verdict.

use qugen::qagents::orchestrator::{Orchestrator, PipelineConfig};
use qugen::qeval::suite::test_suite;

pub fn main() {
    let orchestrator = Orchestrator::new(PipelineConfig::default());
    let tasks = test_suite();
    let bell = &tasks[0];

    println!("prompt: {}\n", bell.spec.prompt_text());

    // Seeds are deterministic; sweep a few to show both a repair and a
    // first-pass success.
    for seed in [3u64, 5, 8] {
        let report = orchestrator.run_task(bell, seed);
        println!("--- seed {seed} ---");
        println!("{}", report.summary());
        let last = report.multipass.last();
        println!("final program:\n{}", last.generation.source);
        if let Ok(program) = qugen::qcir::dsl::parse(&last.generation.source) {
            if let Ok(circuit) = qugen::qcir::check::lower(&program) {
                println!("diagram:\n{}", qugen::qcir::draw::draw(&circuit));
            }
        }
        if !last.analysis.error_trace.is_empty() {
            println!("last error trace:\n{}", last.analysis.error_trace);
        }
    }

    // Show one full transcript.
    let report = orchestrator.run_task(bell, 12);
    println!("=== full transcript (seed 12) ===\n{}", report.transcript);
}
