//! Offline stand-in for the slice of [`criterion` 0.5](https://docs.rs/criterion)
//! used by this workspace: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, finish}`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Timing model: each benchmark warms up briefly, then runs batches until
//! ~`MEASURE_MS` of wall-clock time has accumulated, and reports the mean
//! iteration time. A smoke-bench, not a statistics engine.
//!
//! Two environment variables support the CI bench-smoke job:
//!
//! * `QUGEN_BENCH_QUICK` — when set (to anything), skip the time-budgeted
//!   loop and run a fixed small iteration count (1 warmup + 3 measured), so
//!   a full bench binary finishes in seconds.
//! * `QUGEN_BENCH_JSON=<path>` — when set, write every result as a JSON
//!   document (`{"quick": bool, "results": [{"name", "mean_ns", "iters"}]}`)
//!   to `<path>` when `criterion_main!`'s generated `main` finishes.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const WARMUP_MS: u64 = 50;
const MEASURE_MS: u64 = 300;
const QUICK_ITERS: u64 = 3;

pub use std::hint::black_box;

/// Collected results, flushed to JSON by [`finalize`].
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var_os("QUGEN_BENCH_QUICK").is_some()
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.name.fmt(f)
    }
}

/// Drives the timed closure passed to `bench_function`-style entry points.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters: 0,
            mean: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if quick_mode() {
            // Fixed small iteration count for the CI smoke job.
            black_box(routine());
            let mut total = Duration::ZERO;
            for _ in 0..QUICK_ITERS {
                let start = Instant::now();
                black_box(routine());
                total += start.elapsed();
            }
            self.iters = QUICK_ITERS;
            self.mean = total / QUICK_ITERS as u32;
            return;
        }

        let warmup_until = Instant::now() + Duration::from_millis(WARMUP_MS);
        while Instant::now() < warmup_until {
            black_box(routine());
        }

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget = Duration::from_millis(MEASURE_MS);
        while total < budget {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean = total / iters.max(1) as u32;
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "bench: {name:<48} mean {:>12.3?} ({} iters)",
        b.mean, b.iters
    );
    RESULTS.lock().expect("bench results poisoned").push((
        name.to_string(),
        b.mean.as_nanos() as f64,
        b.iters,
    ));
}

/// Writes collected results to the `QUGEN_BENCH_JSON` path, if set. Called
/// by the `main` that `criterion_main!` generates; harmless to call twice.
pub fn finalize() {
    let Ok(path) = std::env::var("QUGEN_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench results poisoned");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"results\": [\n");
    for (i, (name, mean_ns, iters)) in results.iter().enumerate() {
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{escaped}\", \"mean_ns\": {mean_ns:.1}, \"iters\": {iters}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write bench JSON to {path}: {e}");
    } else {
        println!("bench: wrote JSON results to {path}");
    }
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
        self
    }

    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_mean_and_iters() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
    }
}
