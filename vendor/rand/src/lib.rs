//! Offline stand-in for the slice of [`rand` 0.8](https://docs.rs/rand/0.8)
//! used by this workspace: `Rng::{gen, gen_bool, gen_range}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It is
//! deterministic in the seed (which is all the workspace relies on) but does
//! not reproduce the upstream ChaCha12 stream.

use std::ops::Range;

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli sample. `p` outside `[0, 1]` saturates rather than panics.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a range. The single blanket
/// `SampleRange` impl below goes through this trait so that integer-literal
/// ranges (`rng.gen_range(0..3)` used as a slice index) leave the element
/// type open for inference, matching real-rand behavior.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform over `[start, end)`.
    fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform over `[start, end]`.
    fn sample_incl<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range {start}..{end}");
                let width = (end as i128 - start as i128) as u128;
                // Widening multiply keeps modulo bias negligible.
                let off = ((rng.next_u64() as u128).wrapping_mul(width)) >> 64;
                (start as i128 + off as i128) as $t
            }

            fn sample_incl<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(width)) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range {start}..{end}");
                start + <$t>::sample(rng) * (end - start)
            }

            fn sample_incl<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                start + <$t>::sample(rng) * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f64, f32);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_incl(rng, start, end)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Deterministic in the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_references() {
        fn take(rng: &mut impl Rng) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(3);
        // &mut StdRng must itself satisfy Rng for nested helper calls.
        take(&mut rng);
        take(&mut &mut rng);
    }
}
