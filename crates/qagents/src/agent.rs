//! Agent identity and conversation transcripts.

use std::fmt;

/// Which agent produced a transcript entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentId {
    /// The orchestrator itself.
    Orchestrator,
    /// Code generation agent.
    CodeGen,
    /// Semantic analyzer agent.
    SemanticAnalyzer,
    /// QEC decoder generation agent.
    Qec,
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentId::Orchestrator => write!(f, "orchestrator"),
            AgentId::CodeGen => write!(f, "code-gen"),
            AgentId::SemanticAnalyzer => write!(f, "semantic-analyzer"),
            AgentId::Qec => write!(f, "qec"),
        }
    }
}

/// One message in a pipeline transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct TranscriptEntry {
    /// Who spoke.
    pub agent: AgentId,
    /// Short kind tag (`prompt`, `code`, `trace`, `plan`, `decoder`, ...).
    pub kind: &'static str,
    /// Message body.
    pub content: String,
}

/// An append-only record of the pipeline's inter-agent traffic — useful
/// for debugging and for the examples' human-readable output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Transcript {
    entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, agent: AgentId, kind: &'static str, content: impl Into<String>) {
        self.entries.push(TranscriptEntry {
            agent,
            kind,
            content: content.into(),
        });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[TranscriptEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries from one agent.
    pub fn from_agent(&self, agent: AgentId) -> impl Iterator<Item = &TranscriptEntry> {
        self.entries.iter().filter(move |e| e.agent == agent)
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "[{} / {}]", e.agent, e.kind)?;
            for line in e.content.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_records_in_order() {
        let mut t = Transcript::new();
        t.push(AgentId::Orchestrator, "prompt", "generate a bell pair");
        t.push(AgentId::CodeGen, "code", "h q[0];");
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].kind, "prompt");
        assert_eq!(t.from_agent(AgentId::CodeGen).count(), 1);
    }

    #[test]
    fn display_is_readable() {
        let mut t = Transcript::new();
        t.push(
            AgentId::SemanticAnalyzer,
            "trace",
            "error[E0104]: unknown gate",
        );
        let s = t.to_string();
        assert!(s.contains("semantic-analyzer"));
        assert!(s.contains("E0104"));
    }
}
