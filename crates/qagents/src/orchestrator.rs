//! The orchestrator: wires the three agents into the Figure 1 pipeline.

use crate::agent::{AgentId, Transcript};
use crate::codegen::CodeGenAgent;
use crate::multipass::{run_multipass, MultiPassResult};
use crate::qec_agent::{QecAgent, QecComparison};
use crate::semantic::SemanticAnalyzerAgent;
use qec::topology::Topology;
use qeval::suite::Task;
use qlm::model::{CodeLlm, GenConfig};
use qsim::noise::NoiseModel;
use std::fmt::Write as _;

/// QEC stage configuration.
#[derive(Debug, Clone)]
pub struct QecStage {
    /// Target device topology.
    pub topology: Topology,
    /// Calibration physical error rate.
    pub physical_rate: f64,
    /// Noise model used for the before/after runs.
    pub noise: NoiseModel,
    /// Shots per run.
    pub shots: u64,
}

impl Default for QecStage {
    fn default() -> Self {
        QecStage {
            topology: Topology::grid(7, 7),
            physical_rate: 0.02,
            noise: qsim::profiles::ibm_brisbane_like(),
            shots: 4096,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Generation technique configuration.
    pub gen: GenConfig,
    /// Multi-pass budget (>= 1).
    pub max_passes: usize,
    /// Optional QEC stage.
    pub qec: Option<QecStage>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            gen: GenConfig::fine_tuned(),
            max_passes: 3,
            qec: None,
        }
    }
}

/// The end-to-end report for one task.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Task identifier.
    pub task_id: String,
    /// The multi-pass result (generations + analyses).
    pub multipass: MultiPassResult,
    /// QEC comparison, when the stage ran and the final code compiled.
    pub qec: Option<QecComparison>,
    /// Full inter-agent transcript.
    pub transcript: Transcript,
}

impl PipelineReport {
    /// Whether the final program is fully correct.
    pub fn passed(&self) -> bool {
        self.multipass.passed()
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let last = self.multipass.last();
        let _ = write!(
            out,
            "task {}: {} after {} pass(es)",
            self.task_id,
            if self.passed() { "PASS" } else { "FAIL" },
            self.multipass.passes_used()
        );
        if let Some(tvd) = last.analysis.detail.tvd {
            let _ = write!(out, ", tvd {tvd:.3}");
        }
        if let Some(qec) = &self.qec {
            let _ = write!(
                out,
                "; qec: tvd {:.3} -> {:.3} ({})",
                qec.noisy_tvd(),
                qec.corrected_tvd(),
                qec.spec
            );
        }
        out
    }
}

/// The multi-agent pipeline.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    codegen: CodeGenAgent,
    analyzer: SemanticAnalyzerAgent,
    config: PipelineConfig,
}

impl Orchestrator {
    /// Builds the pipeline with a fresh LLM.
    pub fn new(config: PipelineConfig) -> Self {
        Orchestrator {
            codegen: CodeGenAgent::new(CodeLlm::new(), config.gen.clone()),
            analyzer: SemanticAnalyzerAgent::new(),
            config,
        }
    }

    /// Builds the pipeline around an existing LLM (shared corpora).
    pub fn with_llm(llm: CodeLlm, config: PipelineConfig) -> Self {
        Orchestrator {
            codegen: CodeGenAgent::new(llm, config.gen.clone()),
            analyzer: SemanticAnalyzerAgent::new(),
            config,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on one task.
    pub fn run_task(&self, task: &Task, seed: u64) -> PipelineReport {
        let mut transcript = Transcript::new();
        transcript.push(AgentId::Orchestrator, "prompt", task.spec.prompt_text());

        let multipass = run_multipass(
            &self.codegen,
            &self.analyzer,
            &task.spec,
            self.config.max_passes,
            seed,
        );
        for record in &multipass.history {
            if let Some(plan) = &record.generation.plan {
                transcript.push(AgentId::CodeGen, "plan", qlm::cot::render_plan(plan));
            }
            transcript.push(AgentId::CodeGen, "code", record.generation.source.clone());
            if record.analysis.passed() {
                transcript.push(AgentId::SemanticAnalyzer, "verdict", "pass");
            } else {
                transcript.push(
                    AgentId::SemanticAnalyzer,
                    "trace",
                    record.analysis.error_trace.clone(),
                );
            }
        }

        // QEC stage: only meaningful when the final program lowered.
        let qec = match (
            &self.config.qec,
            multipass.last().analysis.detail.syntactic_ok,
        ) {
            (Some(stage), true) => {
                let source = &multipass.last().generation.source;
                let circuit = qcir::dsl::parse(source)
                    .ok()
                    .and_then(|p| qcir::check::lower(&p).ok());
                circuit.and_then(|c| {
                    let agent = QecAgent::new(stage.topology.clone(), stage.physical_rate);
                    match agent.compare(&c, &stage.noise, stage.shots, seed) {
                        Ok(cmp) => {
                            transcript.push(AgentId::Qec, "decoder", cmp.spec.to_string());
                            Some(cmp)
                        }
                        Err(e) => {
                            transcript.push(AgentId::Qec, "error", e.to_string());
                            None
                        }
                    }
                })
            }
            _ => None,
        };

        PipelineReport {
            task_id: task.id.to_string(),
            multipass,
            qec,
            transcript,
        }
    }

    /// Best-of-k sampling (the paper's §V-A pass@k methodology): runs the
    /// pipeline up to `k` times with derived seeds and returns the first
    /// passing report, or the last attempt when none passes.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn run_task_best_of(&self, task: &Task, k: usize, seed: u64) -> PipelineReport {
        assert!(k >= 1, "need at least one sample");
        let mut last = None;
        for i in 0..k {
            let report = self.run_task(task, seed.wrapping_add(i as u64 * 0x9E37_79B9));
            if report.passed() {
                return report;
            }
            last = Some(report);
        }
        last.expect("k >= 1 guarantees at least one attempt")
    }

    /// Runs the pipeline over a task list, returning per-task reports.
    pub fn run_suite(&self, tasks: &[Task], seed: u64) -> Vec<PipelineReport> {
        tasks
            .iter()
            .enumerate()
            .map(|(i, task)| self.run_task(task, seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qeval::suite::test_suite;

    #[test]
    fn default_pipeline_runs_a_task() {
        let orchestrator = Orchestrator::new(PipelineConfig::default());
        let report = orchestrator.run_task(&test_suite()[0], 5);
        assert!(!report.transcript.is_empty());
        assert!(report.summary().contains("task basic/bell"));
    }

    #[test]
    fn transcript_contains_prompt_and_code() {
        let orchestrator = Orchestrator::new(PipelineConfig::default());
        let report = orchestrator.run_task(&test_suite()[0], 9);
        let kinds: Vec<&str> = report.transcript.entries().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"prompt"));
        assert!(kinds.contains(&"code"));
    }

    #[test]
    fn qec_stage_attaches_comparison() {
        let config = PipelineConfig {
            gen: GenConfig::with_scot(),
            max_passes: 3,
            qec: Some(QecStage {
                shots: 512,
                ..QecStage::default()
            }),
        };
        let orchestrator = Orchestrator::new(config);
        // Run the DJ task (the paper's Figure 4 workload) until the code
        // compiles so the QEC stage fires.
        let task = test_suite()
            .into_iter()
            .find(|t| t.id == "mid/dj-const")
            .expect("dj task");
        for seed in 0..30 {
            let report = orchestrator.run_task(&task, seed);
            if report.multipass.last().analysis.detail.syntactic_ok {
                let qec = report.qec.expect("qec comparison present");
                assert!(qec.spec.estimated_lifetime_extension > 0.0);
                return;
            }
        }
        panic!("no compiling generation in 30 seeds");
    }

    #[test]
    fn best_of_k_beats_single_sample() {
        let orchestrator = Orchestrator::new(PipelineConfig {
            gen: GenConfig::fine_tuned(),
            max_passes: 1,
            qec: None,
        });
        let tasks: Vec<_> = test_suite().into_iter().take(6).collect();
        let mut single = 0usize;
        let mut best5 = 0usize;
        for (i, task) in tasks.iter().enumerate() {
            for s in 0..8u64 {
                let seed = (i as u64) * 977 + s;
                if orchestrator.run_task(task, seed).passed() {
                    single += 1;
                }
                if orchestrator.run_task_best_of(task, 5, seed).passed() {
                    best5 += 1;
                }
            }
        }
        assert!(best5 > single, "best-of-5 {best5} !> single {single}");
    }

    #[test]
    fn run_suite_covers_all_tasks() {
        let orchestrator = Orchestrator::new(PipelineConfig::default());
        let tasks: Vec<_> = test_suite().into_iter().take(4).collect();
        let reports = orchestrator.run_suite(&tasks, 1);
        assert_eq!(reports.len(), 4);
    }
}
