//! The code-generation agent: the LLM plus its technique configuration.

use qcir::diag::DiagCode;
use qlm::model::{CodeLlm, GenConfig, Generation};
use qlm::spec::TaskSpec;

/// Agent #1 of Figure 1.
#[derive(Debug, Clone)]
pub struct CodeGenAgent {
    llm: CodeLlm,
    config: GenConfig,
}

impl CodeGenAgent {
    /// Creates the agent with a model and configuration.
    pub fn new(llm: CodeLlm, config: GenConfig) -> Self {
        CodeGenAgent { llm, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// First-pass generation for a task.
    pub fn generate(&self, spec: &TaskSpec, seed: u64) -> Generation {
        self.llm.generate(spec, &self.config, seed)
    }

    /// Repair pass: regenerate given the previous attempt and its error
    /// trace (the multi-pass prompt template of §IV-A embeds the original
    /// prompt, the previous code and the trace; mechanistically the model
    /// keys on the diagnostic codes).
    pub fn repair(
        &self,
        spec: &TaskSpec,
        prev: &Generation,
        trace_codes: &[DiagCode],
        semantic_feedback: bool,
        seed: u64,
    ) -> Generation {
        self.llm.repair(
            spec,
            &self.config,
            prev,
            trace_codes,
            semantic_feedback,
            seed,
        )
    }

    /// Renders the multi-pass repair prompt (for transcripts; the paper's
    /// template: original prompt + generated code + error trace).
    pub fn repair_prompt(spec: &TaskSpec, prev_source: &str, trace: &str) -> String {
        format!(
            "{}\n\nThe previous attempt was:\n```\n{}```\n\nIt failed with:\n{}\nFix the error and regenerate the full program.",
            spec.prompt_text(),
            prev_source,
            trace
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_source() {
        let agent = CodeGenAgent::new(CodeLlm::new(), GenConfig::fine_tuned());
        let g = agent.generate(&TaskSpec::BellPair, 3);
        assert!(g.source.contains("qreg"));
    }

    #[test]
    fn repair_prompt_contains_all_pieces() {
        let p = CodeGenAgent::repair_prompt(&TaskSpec::BellPair, "h q[0];\n", "error[E0002]");
        assert!(p.contains("Bell pair"));
        assert!(p.contains("h q[0];"));
        assert!(p.contains("E0002"));
    }
}
