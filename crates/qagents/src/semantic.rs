//! The semantic analyzer agent: grading plus error-trace production.

use qcir::diag::{render_trace, DiagCode, Severity};
use qeval::grade::{grade_source, GradeDetail};
use qlm::spec::TaskSpec;

/// The analyzer's verdict on one generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticAnalysis {
    /// Full grading detail (diagnostics, TVD).
    pub detail: GradeDetail,
    /// Rendered error trace (what the repair prompt embeds).
    pub error_trace: String,
    /// Machine-readable diagnostic codes for the repair model.
    pub trace_codes: Vec<DiagCode>,
    /// `true` when the program ran but its behaviour was wrong — the
    /// analyzer then attaches behavioural feedback instead of a traceback.
    pub semantic_feedback: bool,
}

impl SemanticAnalysis {
    /// Whether the program is fully correct.
    pub fn passed(&self) -> bool {
        self.detail.passed()
    }
}

/// Agent #2 of Figure 1.
#[derive(Debug, Clone, Default)]
pub struct SemanticAnalyzerAgent {
    _private: (),
}

impl SemanticAnalyzerAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        SemanticAnalyzerAgent { _private: () }
    }

    /// Analyzes a generated program against the task.
    pub fn analyze(&self, source: &str, spec: &TaskSpec) -> SemanticAnalysis {
        let detail = grade_source(source, spec);
        let error_diags: Vec<_> = detail
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .cloned()
            .collect();
        let mut trace_codes: Vec<DiagCode> = error_diags.iter().map(|d| d.code).collect();
        let mut error_trace = if error_diags.is_empty() {
            String::new()
        } else {
            render_trace(&error_diags)
        };
        let semantic_feedback = detail.syntactic_ok && !detail.semantic_ok;
        if semantic_feedback {
            // Behavioural feedback: the program ran, the distribution is
            // off. Include measured evidence the way a test harness would.
            if detail.circuitless_semantic_failure() {
                error_trace.push_str(
                    "semantic check failed: program output interface does not match the task\n",
                );
                trace_codes.push(DiagCode::NoMeasurement);
            } else if let Some(tvd) = detail.tvd {
                error_trace.push_str(&format!(
                    "semantic check failed: output distribution deviates from the expected one (total variation distance {tvd:.3})\n"
                ));
            }
        }
        SemanticAnalysis {
            detail,
            error_trace,
            trace_codes,
            semantic_feedback,
        }
    }
}

/// Extension used above; kept on `GradeDetail` semantics.
trait GradeDetailExt {
    fn circuitless_semantic_failure(&self) -> bool;
}

impl GradeDetailExt for GradeDetail {
    fn circuitless_semantic_failure(&self) -> bool {
        self.syntactic_ok && !self.semantic_ok && self.tvd.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_code_yields_empty_trace() {
        let agent = SemanticAnalyzerAgent::new();
        let gold = qlm::template::gold_source(&TaskSpec::BellPair);
        let analysis = agent.analyze(&gold, &TaskSpec::BellPair);
        assert!(analysis.passed());
        assert!(analysis.error_trace.is_empty());
        assert!(analysis.trace_codes.is_empty());
    }

    #[test]
    fn syntax_failure_yields_traceback() {
        let agent = SemanticAnalyzerAgent::new();
        let analysis = agent.analyze("qreg q[2]\nh q[0];", &TaskSpec::BellPair);
        assert!(!analysis.passed());
        assert!(analysis.error_trace.contains("Traceback"));
        assert!(!analysis.trace_codes.is_empty());
        assert!(!analysis.semantic_feedback);
    }

    #[test]
    fn semantic_failure_yields_behavioural_feedback() {
        let agent = SemanticAnalyzerAgent::new();
        // Valid GHZ graded as superposition: runs, wrong distribution.
        let src = qlm::template::gold_source(&TaskSpec::Ghz { n: 3 });
        let analysis = agent.analyze(&src, &TaskSpec::Superposition { n: 3 });
        assert!(!analysis.passed());
        assert!(analysis.semantic_feedback);
        assert!(analysis.error_trace.contains("distribution"));
    }

    #[test]
    fn removed_symbol_trace_carries_the_code() {
        let agent = SemanticAnalyzerAgent::new();
        let src =
            "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\ncnot q[0], q[1];\nmeasure q -> c;\n";
        let analysis = agent.analyze(src, &TaskSpec::BellPair);
        assert!(analysis.trace_codes.contains(&DiagCode::RemovedSymbol));
        assert!(
            analysis.error_trace.contains("cx"),
            "{}",
            analysis.error_trace
        );
    }
}
