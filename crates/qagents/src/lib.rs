//! # qagents — the multi-agent quantum code generation framework
//!
//! The paper's primary contribution (Figure 1): an orchestrator wiring
//! three agents around a quantum-program developer's request.
//!
//! 1. [`codegen::CodeGenAgent`] — wraps the (simulated) code LLM with its
//!    inference-time technique configuration (fine-tuning, RAG, CoT/SCoT).
//! 2. [`semantic::SemanticAnalyzerAgent`] — parses, checks and simulates
//!    the generated program against the task's reference behaviour,
//!    producing the structured error trace the repair loop feeds back.
//! 3. [`qec_agent::QecAgent`] — synthesizes a surface-code decoder from
//!    the device topology and quantifies the noise reduction applied to
//!    program executions (the paper's Figure 4 methodology).
//!
//! [`multipass`] implements the iterative multi-pass optimization (§IV-A)
//! and [`orchestrator`] glues everything into a single pipeline.
//!
//! # Example
//!
//! ```
//! use qagents::orchestrator::{Orchestrator, PipelineConfig};
//! use qeval::suite::test_suite;
//!
//! let orchestrator = Orchestrator::new(PipelineConfig::default());
//! let report = orchestrator.run_task(&test_suite()[0], 7);
//! println!("{}", report.summary());
//! ```

pub mod agent;
pub mod codegen;
pub mod multipass;
pub mod orchestrator;
pub mod qec_agent;
pub mod semantic;

pub use orchestrator::{Orchestrator, PipelineConfig, PipelineReport};
