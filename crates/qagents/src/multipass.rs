//! Iterative multi-pass optimization (§IV-A).
//!
//! Pass 1 generates; every subsequent pass feeds the previous code and its
//! error trace back to the code-generation agent. The loop stops early on
//! success and reports the full history so benches can measure accuracy
//! as a function of the pass budget (the §V-D experiment: 28% → 34% by
//! pass 3, then saturation).

use crate::codegen::CodeGenAgent;
use crate::semantic::{SemanticAnalysis, SemanticAnalyzerAgent};
use qlm::model::Generation;
use qlm::spec::TaskSpec;

/// One pass of the loop: what was generated and how it graded.
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// 1-based pass number.
    pub pass: usize,
    /// The generation.
    pub generation: Generation,
    /// The analyzer's verdict.
    pub analysis: SemanticAnalysis,
}

/// The outcome of a multi-pass run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPassResult {
    /// All passes, in order (at least one).
    pub history: Vec<PassRecord>,
}

impl MultiPassResult {
    /// The final pass.
    pub fn last(&self) -> &PassRecord {
        self.history.last().expect("at least one pass")
    }

    /// Whether the final program passed.
    pub fn passed(&self) -> bool {
        self.last().analysis.passed()
    }

    /// Number of passes actually executed.
    pub fn passes_used(&self) -> usize {
        self.history.len()
    }

    /// The earliest pass that passed, if any (1-based).
    pub fn first_passing(&self) -> Option<usize> {
        self.history
            .iter()
            .find(|r| r.analysis.passed())
            .map(|r| r.pass)
    }
}

/// Runs up to `max_passes` generate/repair passes for a task.
///
/// # Panics
///
/// Panics when `max_passes == 0`.
pub fn run_multipass(
    codegen: &CodeGenAgent,
    analyzer: &SemanticAnalyzerAgent,
    spec: &TaskSpec,
    max_passes: usize,
    seed: u64,
) -> MultiPassResult {
    assert!(max_passes >= 1, "need at least one pass");
    let mut history = Vec::with_capacity(max_passes);
    let mut generation = codegen.generate(spec, seed);
    for pass in 1..=max_passes {
        let analysis = analyzer.analyze(&generation.source, spec);
        let passed = analysis.passed();
        history.push(PassRecord {
            pass,
            generation: generation.clone(),
            analysis,
        });
        if passed || pass == max_passes {
            break;
        }
        let last = history.last().expect("just pushed");
        generation = codegen.repair(
            spec,
            &last.generation,
            &last.analysis.trace_codes,
            last.analysis.semantic_feedback,
            seed.wrapping_add(pass as u64 * 0x9E37),
        );
    }
    MultiPassResult { history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlm::model::{CodeLlm, GenConfig};

    fn agents() -> (CodeGenAgent, SemanticAnalyzerAgent) {
        (
            CodeGenAgent::new(CodeLlm::new(), GenConfig::fine_tuned()),
            SemanticAnalyzerAgent::new(),
        )
    }

    #[test]
    fn stops_early_on_success() {
        let (codegen, analyzer) = agents();
        // Find a seed that passes on pass 1, then confirm no extra passes.
        for seed in 0..100 {
            let result = run_multipass(&codegen, &analyzer, &TaskSpec::BellPair, 5, seed);
            if result.first_passing() == Some(1) {
                assert_eq!(result.passes_used(), 1);
                return;
            }
        }
        panic!("no first-pass success in 100 seeds");
    }

    #[test]
    fn repair_improves_aggregate_accuracy() {
        let (codegen, analyzer) = agents();
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Ghz { n: 3 },
            TaskSpec::Superposition { n: 3 },
        ];
        let mut pass1 = 0usize;
        let mut pass3 = 0usize;
        let trials = 120;
        for seed in 0..trials {
            for spec in &specs {
                let result = run_multipass(&codegen, &analyzer, spec, 3, seed);
                if result.first_passing() == Some(1) {
                    pass1 += 1;
                }
                if result.passed() {
                    pass3 += 1;
                }
            }
        }
        assert!(
            pass3 > pass1,
            "multi-pass must improve: pass1 {pass1}, pass3 {pass3}"
        );
    }

    #[test]
    fn history_is_complete_and_ordered() {
        let (codegen, analyzer) = agents();
        let result = run_multipass(&codegen, &analyzer, &TaskSpec::Shor, 4, 3);
        assert!(!result.history.is_empty());
        for (i, record) in result.history.iter().enumerate() {
            assert_eq!(record.pass, i + 1);
        }
        assert!(result.passes_used() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn rejects_zero_passes() {
        let (codegen, analyzer) = agents();
        run_multipass(&codegen, &analyzer, &TaskSpec::BellPair, 0, 1);
    }
}
