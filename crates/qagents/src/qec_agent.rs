//! The QEC decoder-generation agent (agent #3 of Figure 1).
//!
//! Synthesizes a decoder from the device topology, then quantifies the
//! effect on a program's measured distribution. Mirroring the paper's
//! Figure 4 methodology: corrections cannot be applied to physical qubits
//! on IBM hardware, so the "after QEC" run re-simulates under the reduced
//! effective error rate implied by the decoder's measured lifetime
//! extension.

use qcir::circuit::Circuit;
use qec::agent_iface::{synthesize, DecoderSpec, SynthesisError};
use qec::topology::Topology;
use qsim::backend::SimError;
use qsim::dist::Counts;
use qsim::exec::{Executor, ExecutorConfig};
use qsim::noise::NoiseModel;
use std::fmt;

/// The QEC agent: holds the target device.
#[derive(Debug, Clone)]
pub struct QecAgent {
    topology: Topology,
    physical_rate: f64,
}

/// Why a QEC comparison could not be produced: either the decoder could
/// not be synthesized for the device, or the circuit is not simulable
/// (backend capacity / classical-register caps).
#[derive(Debug, Clone, PartialEq)]
pub enum QecAgentError {
    /// Decoder synthesis failed.
    Synthesis(SynthesisError),
    /// The before/after simulation failed with a typed backend error.
    Sim(SimError),
}

impl fmt::Display for QecAgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QecAgentError::Synthesis(e) => write!(f, "decoder synthesis failed: {e}"),
            QecAgentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for QecAgentError {}

impl From<SynthesisError> for QecAgentError {
    fn from(e: SynthesisError) -> Self {
        QecAgentError::Synthesis(e)
    }
}

impl From<SimError> for QecAgentError {
    fn from(e: SimError) -> Self {
        QecAgentError::Sim(e)
    }
}

/// Before/after comparison for one circuit (the Figure 4 artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct QecComparison {
    /// The synthesized decoder.
    pub spec: DecoderSpec,
    /// Ideal (noiseless) distribution reference.
    pub ideal: qsim::dist::Distribution,
    /// Counts under the raw device noise (Figure 4b).
    pub noisy: Counts,
    /// Counts under the post-QEC effective noise (Figure 4c).
    pub corrected: Counts,
}

impl QecComparison {
    /// TVD of the noisy run from ideal.
    pub fn noisy_tvd(&self) -> f64 {
        self.noisy.to_distribution().tvd(&self.ideal)
    }

    /// TVD of the corrected run from ideal.
    pub fn corrected_tvd(&self) -> f64 {
        self.corrected.to_distribution().tvd(&self.ideal)
    }

    /// Error reduction: how much closer to ideal the corrected run is.
    pub fn improvement(&self) -> f64 {
        self.noisy_tvd() - self.corrected_tvd()
    }
}

impl QecAgent {
    /// Creates the agent for a device with a calibration error rate.
    pub fn new(topology: Topology, physical_rate: f64) -> Self {
        QecAgent {
            topology,
            physical_rate,
        }
    }

    /// The target device.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Synthesizes the decoder spec for the device.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError`] for unusable devices.
    pub fn synthesize_decoder(&self, seed: u64) -> Result<DecoderSpec, SynthesisError> {
        synthesize(&self.topology, self.physical_rate, 5, seed)
    }

    /// Runs `circuit` with and without the decoder's noise reduction.
    ///
    /// Simulation goes through the fallible backend-dispatch API: Clifford
    /// circuits past the dense cap run on the tableau, shots fan out over
    /// the host's cores (deterministically — results do not depend on the
    /// thread count), and unsimulable circuits surface as
    /// [`QecAgentError::Sim`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Propagates decoder-synthesis failures and backend [`SimError`]s.
    pub fn compare(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
        seed: u64,
    ) -> Result<QecComparison, QecAgentError> {
        let spec = self.synthesize_decoder(seed)?;
        let threads = qsim::exec::recommended_threads();
        let ideal = Executor::try_ideal_distribution_threaded(circuit, seed, threads)?;
        let noisy = ExecutorConfig::new()
            .noise(noise.clone())
            .threads(threads)
            .build()
            .try_run(circuit, shots, seed)?;
        let corrected_noise = noise.scaled(spec.noise_reduction_factor());
        let corrected = ExecutorConfig::new()
            .noise(corrected_noise)
            .threads(threads)
            .build()
            .try_run(circuit, shots, seed ^ 0xC0DE)?;
        Ok(QecComparison {
            spec,
            ideal,
            noisy,
            corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::profiles;

    #[test]
    fn agent_synthesizes_for_grid_device() {
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        let spec = agent.synthesize_decoder(1).expect("synthesis");
        assert!(spec.estimated_lifetime_extension > 1.0, "{spec}");
    }

    #[test]
    fn qec_improves_dj_distribution() {
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        let circuit = qalgo::dj::figure4_circuit();
        let cmp = agent
            .compare(&circuit, &profiles::noisy_nisq(), 4000, 11)
            .expect("comparison");
        assert!(
            cmp.corrected_tvd() < cmp.noisy_tvd(),
            "corrected {} vs noisy {}",
            cmp.corrected_tvd(),
            cmp.noisy_tvd()
        );
        // The expected |000> outcome should gain probability.
        let p_noisy = cmp.noisy.probability(0);
        let p_corrected = cmp.corrected.probability(0);
        assert!(
            p_corrected > p_noisy,
            "p(000): corrected {p_corrected} vs noisy {p_noisy}"
        );
    }

    #[test]
    fn disconnected_device_fails_synthesis() {
        let t = Topology::new("split", 4, &[(0, 1), (2, 3)]);
        let agent = QecAgent::new(t, 0.02);
        assert!(agent.synthesize_decoder(0).is_err());
    }

    #[test]
    fn compare_handles_large_clifford_circuits_via_tableau() {
        // A 30-qubit GHZ circuit: far past the dense cap, fine under the
        // backend layer's tableau dispatch. Pre-backend-layer this panicked.
        let mut ghz = Circuit::new(30, 30);
        ghz.h(0);
        for q in 0..29 {
            ghz.cx(q, q + 1);
        }
        ghz.measure_all();
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        let cmp = agent
            .compare(
                &ghz,
                &qsim::noise::NoiseModel::uniform_depolarizing(0.002),
                512,
                17,
            )
            .expect("tableau-backed comparison");
        assert_eq!(cmp.noisy.shots(), 512);
        assert!(cmp.corrected_tvd() <= cmp.noisy_tvd() + 0.1);
    }

    #[test]
    fn compare_surfaces_sim_errors_instead_of_panicking() {
        // Non-Clifford AND long-range past the dense cap: no admissible
        // backend (short-range general circuits dispatch to the MPS
        // engine instead).
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).cp(0.4, 0, 29).measure_all();
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        match agent.compare(&big, &profiles::noisy_nisq(), 64, 3) {
            Err(QecAgentError::Sim(SimError::QubitCapExceeded { .. })) => {}
            other => panic!("expected a Sim capacity error, got {other:?}"),
        }
    }

    #[test]
    fn comparison_is_deterministic() {
        let agent = QecAgent::new(Topology::grid(5, 5), 0.02);
        let circuit = qalgo::basics::bell_pair();
        let a = agent
            .compare(&circuit, &profiles::ibm_brisbane_like(), 500, 3)
            .unwrap();
        let b = agent
            .compare(&circuit, &profiles::ibm_brisbane_like(), 500, 3)
            .unwrap();
        assert_eq!(a, b);
    }
}
