//! The QEC decoder-generation agent (agent #3 of Figure 1).
//!
//! Synthesizes a decoder from the device topology, then quantifies the
//! effect on a program's measured distribution. Mirroring the paper's
//! Figure 4 methodology: corrections cannot be applied to physical qubits
//! on IBM hardware, so the "after QEC" run re-simulates under the reduced
//! effective error rate implied by the decoder's measured lifetime
//! extension.

use qcir::circuit::Circuit;
use qec::agent_iface::{synthesize, DecoderSpec, SynthesisError};
use qec::topology::Topology;
use qsim::dist::Counts;
use qsim::exec::Executor;
use qsim::noise::NoiseModel;

/// The QEC agent: holds the target device.
#[derive(Debug, Clone)]
pub struct QecAgent {
    topology: Topology,
    physical_rate: f64,
}

/// Before/after comparison for one circuit (the Figure 4 artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct QecComparison {
    /// The synthesized decoder.
    pub spec: DecoderSpec,
    /// Ideal (noiseless) distribution reference.
    pub ideal: qsim::dist::Distribution,
    /// Counts under the raw device noise (Figure 4b).
    pub noisy: Counts,
    /// Counts under the post-QEC effective noise (Figure 4c).
    pub corrected: Counts,
}

impl QecComparison {
    /// TVD of the noisy run from ideal.
    pub fn noisy_tvd(&self) -> f64 {
        self.noisy.to_distribution().tvd(&self.ideal)
    }

    /// TVD of the corrected run from ideal.
    pub fn corrected_tvd(&self) -> f64 {
        self.corrected.to_distribution().tvd(&self.ideal)
    }

    /// Error reduction: how much closer to ideal the corrected run is.
    pub fn improvement(&self) -> f64 {
        self.noisy_tvd() - self.corrected_tvd()
    }
}

impl QecAgent {
    /// Creates the agent for a device with a calibration error rate.
    pub fn new(topology: Topology, physical_rate: f64) -> Self {
        QecAgent {
            topology,
            physical_rate,
        }
    }

    /// The target device.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Synthesizes the decoder spec for the device.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError`] for unusable devices.
    pub fn synthesize_decoder(&self, seed: u64) -> Result<DecoderSpec, SynthesisError> {
        synthesize(&self.topology, self.physical_rate, 5, seed)
    }

    /// Runs `circuit` with and without the decoder's noise reduction.
    ///
    /// # Errors
    ///
    /// Propagates decoder-synthesis failures.
    pub fn compare(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
        seed: u64,
    ) -> Result<QecComparison, SynthesisError> {
        let spec = self.synthesize_decoder(seed)?;
        let ideal = Executor::ideal_distribution(circuit, seed);
        let noisy = Executor::with_noise(noise.clone()).run(circuit, shots, seed);
        let corrected_noise = noise.scaled(spec.noise_reduction_factor());
        let corrected = Executor::with_noise(corrected_noise).run(circuit, shots, seed ^ 0xC0DE);
        Ok(QecComparison {
            spec,
            ideal,
            noisy,
            corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::profiles;

    #[test]
    fn agent_synthesizes_for_grid_device() {
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        let spec = agent.synthesize_decoder(1).expect("synthesis");
        assert!(spec.estimated_lifetime_extension > 1.0, "{spec}");
    }

    #[test]
    fn qec_improves_dj_distribution() {
        let agent = QecAgent::new(Topology::grid(7, 7), 0.02);
        let circuit = qalgo::dj::figure4_circuit();
        let cmp = agent
            .compare(&circuit, &profiles::noisy_nisq(), 4000, 11)
            .expect("comparison");
        assert!(
            cmp.corrected_tvd() < cmp.noisy_tvd(),
            "corrected {} vs noisy {}",
            cmp.corrected_tvd(),
            cmp.noisy_tvd()
        );
        // The expected |000> outcome should gain probability.
        let p_noisy = cmp.noisy.probability(0);
        let p_corrected = cmp.corrected.probability(0);
        assert!(
            p_corrected > p_noisy,
            "p(000): corrected {p_corrected} vs noisy {p_noisy}"
        );
    }

    #[test]
    fn disconnected_device_fails_synthesis() {
        let t = Topology::new("split", 4, &[(0, 1), (2, 3)]);
        let agent = QecAgent::new(t, 0.02);
        assert!(agent.synthesize_decoder(0).is_err());
    }

    #[test]
    fn comparison_is_deterministic() {
        let agent = QecAgent::new(Topology::grid(5, 5), 0.02);
        let circuit = qalgo::basics::bell_pair();
        let a = agent
            .compare(&circuit, &profiles::ibm_brisbane_like(), 500, 3)
            .unwrap();
        let b = agent
            .compare(&circuit, &profiles::ibm_brisbane_like(), 500, 3)
            .unwrap();
        assert_eq!(a, b);
    }
}
