//! Service-level tests: the acceptance criteria of the serve subsystem.
//!
//! * ≥ 64 concurrently submitted jobs come back bit-identical to running
//!   the same [`JobSpec`]s directly on an [`Executor`] — the service adds
//!   no nondeterminism on top of the determinism contract.
//! * A repeated submission is served from the result cache without
//!   re-execution (the `executed` gauge does not move).
//! * A full queue refuses promptly with a typed `queue_full` error —
//!   backpressure is load shedding, never a hang.

use qsim::exec::ExecutorConfig;
use qsim::job::JobSpec;
use qugen_serve::codec::Json;
use qugen_serve::proto::counts_to_json;
use qugen_serve::server::{Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A ladder of entangling + rotation layers: non-Clifford so it runs on
/// the dense engine, parameterized by `layers` so specs differ.
fn ladder_source(layers: usize) -> String {
    let mut src = String::from("import qasmlite 2.1;\nqreg q[4];\ncreg c[4];\n");
    for l in 0..layers {
        src.push_str("h q[0];\ncx q[0], q[1];\ncx q[1], q[2];\ncx q[2], q[3];\n");
        src.push_str(&format!("rz({}) q[{}];\n", 0.1 + 0.05 * l as f64, l % 4));
    }
    src.push_str("measure q -> c;\n");
    src
}

/// The same circuit, lowered the way the server lowers it.
fn ladder_circuit(layers: usize) -> qcir::circuit::Circuit {
    let program = qcir::dsl::parse(&ladder_source(layers)).expect("ladder parses");
    qcir::check::lower(&program).expect("ladder checks")
}

fn submit_line(layers: usize, shots: u64, seed: u64) -> String {
    format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":{shots},\"seed\":{seed}}}",
        Json::Str(ladder_source(layers)).encode()
    )
}

fn parse(response: &str) -> Json {
    Json::parse(response).expect("response is valid JSON")
}

#[test]
fn sixty_four_concurrent_jobs_match_the_executor_bit_for_bit() {
    const JOBS: usize = 64;
    let server = Arc::new(Server::new(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    }));

    // 64 client threads submit concurrently and block on their results.
    let responses: Vec<(usize, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..JOBS)
            .map(|i| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let layers = 1 + i % 8;
                    let shots = 128 + (i as u64 % 3) * 64;
                    let seed = i as u64 * 0x9E37;
                    let reply = parse(&server.handle_line(&submit_line(layers, shots, seed)));
                    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "job {i}");
                    let id = reply.get("job").unwrap().as_u64().unwrap();
                    let result =
                        parse(&server.handle_line(&format!(
                            "{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"
                        )));
                    assert_eq!(
                        result.get("status").unwrap().as_str(),
                        Some("done"),
                        "job {i}"
                    );
                    (i, result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Ground truth: the same specs on a plain executor, any thread count.
    let exec = ExecutorConfig::new().threads(2).build();
    for (i, result) in responses {
        let layers = 1 + i % 8;
        let shots = 128 + (i as u64 % 3) * 64;
        let seed = i as u64 * 0x9E37;
        let direct = exec
            .try_run_job(&JobSpec::new(ladder_circuit(layers), shots, seed))
            .expect("direct run succeeds");
        assert_eq!(
            result.get("counts").unwrap().encode(),
            counts_to_json(&direct).encode(),
            "job {i}: service counts differ from direct execution"
        );
    }
}

#[test]
fn repeat_submissions_hit_the_cache_instead_of_executing() {
    let server = Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let first = parse(&server.handle_line(&submit_line(3, 512, 41)));
    let id = first.get("job").unwrap().as_u64().unwrap();
    let first_result =
        parse(&server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")));
    let executed_after_first = parse(&server.handle_line("{\"op\":\"stats\"}"))
        .get("executed")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(executed_after_first, 1);

    for _ in 0..5 {
        let repeat = parse(&server.handle_line(&submit_line(3, 512, 41)));
        assert_eq!(repeat.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(repeat.get("cached"), Some(&Json::Bool(true)));
        let rid = repeat.get("job").unwrap().as_u64().unwrap();
        let result = parse(&server.handle_line(&format!("{{\"op\":\"result\",\"job\":{rid}}}")));
        assert_eq!(result.get("counts"), first_result.get("counts"));
        assert_eq!(result.get("cached"), Some(&Json::Bool(true)));
    }

    let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
    assert_eq!(
        stats.get("executed").unwrap().as_u64(),
        Some(1),
        "cache hits must not re-execute"
    );
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(5));
    // A different seed is a different key: it executes.
    let other = parse(&server.handle_line(&submit_line(3, 512, 42)));
    assert_eq!(other.get("cached"), Some(&Json::Bool(false)));
}

#[test]
fn backpressure_is_a_prompt_typed_refusal_not_a_hang() {
    // Zero workers freeze the queue at whatever fills it.
    let server = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    for seed in 0..4 {
        let reply = parse(&server.handle_line(&submit_line(1, 64, seed)));
        assert_eq!(reply.get("status").unwrap().as_str(), Some("queued"));
    }
    let start = Instant::now();
    let refused = parse(&server.handle_line(&submit_line(1, 64, 999)));
    let elapsed = start.elapsed();
    assert_eq!(refused.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(refused.get("error").unwrap().as_str(), Some("queue_full"));
    assert_eq!(refused.get("capacity").unwrap().as_u64(), Some(4));
    assert!(
        elapsed < Duration::from_secs(2),
        "refusal took {elapsed:?}; submission must never block on a full queue"
    );
    // Queued (non-terminal) jobs still answer status queries.
    let status = parse(&server.handle_line("{\"op\":\"status\",\"job\":1}"));
    assert_eq!(status.get("status").unwrap().as_str(), Some("queued"));
}

#[test]
fn per_job_backend_overrides_ride_the_wire() {
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // A 30-qubit GHZ is over the dense cap but fine on tableau — only the
    // per-job override makes it runnable when forced away from auto.
    let mut src = String::from("import qasmlite 2.1;\nqreg q[30];\ncreg c[30];\nh q[0];\n");
    for i in 0..29 {
        src.push_str(&format!("cx q[{i}], q[{}];\n", i + 1));
    }
    src.push_str("measure q -> c;\n");
    let line = format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":64,\"seed\":5,\"backend\":\"tableau\"}}",
        Json::Str(src.clone()).encode()
    );
    let reply = parse(&server.handle_line(&line));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let id = reply.get("job").unwrap().as_u64().unwrap();
    let result =
        parse(&server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")));
    assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(result.get("backend").unwrap().as_str(), Some("tableau"));
    // Forcing dense instead is refused at submit time with the dense cap.
    let dense_line = format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":64,\"seed\":5,\"backend\":\"dense\"}}",
        Json::Str(src).encode()
    );
    let refused = parse(&server.handle_line(&dense_line));
    assert_eq!(refused.get("error").unwrap().as_str(), Some("sim"));
    assert_eq!(
        refused.get("sim").unwrap().get("code").unwrap().as_str(),
        Some("qubit_cap")
    );
}
