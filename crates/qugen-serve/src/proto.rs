//! The wire protocol: typed requests and response shapes.
//!
//! Transport is line-delimited JSON — one request object per line, one
//! response object per line, over TCP or stdio. Every request carries an
//! `"op"` discriminant:
//!
//! | op | fields | reply |
//! |---|---|---|
//! | `submit` | `source`, `shots`, `seed`, `backend?`, `budget?`, `tag?` | `{ok,job,status,cached}` |
//! | `status` | `job` | `{ok,job,status}` |
//! | `result` | `job`, `wait?` | `{ok,job,status,counts,backend,cached,shots,clbits}` |
//! | `stats` | — | queue/cache/worker gauges |
//! | `metrics` | — | `{ok,metrics}`: full process telemetry snapshot |
//! | `shutdown` | — | `{ok:true}` then drain |
//!
//! `budget` accepts a number or the string `"inf"` (JSON has no infinity
//! literal); `backend` is the `auto|dense|tableau|mps[:χ]` selector
//! [`BackendChoice`] parses everywhere else. Counts are rendered as a
//! bitstring→count object in canonical (sorted) order, so encoded replies
//! compare byte-for-byte across clients and runs.

use crate::codec::Json;
use crate::error::ServeError;
use qsim::backend::BackendChoice;
use qsim::dist::Counts;
use std::collections::BTreeMap;

/// A parsed, typed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Validate, classify, and enqueue a job.
    Submit {
        /// Program text in the circuit DSL.
        source: String,
        /// Shots to run.
        shots: u64,
        /// Deterministic base seed.
        seed: u64,
        /// Per-job backend override (`None` inherits the server's).
        backend: Option<BackendChoice>,
        /// Per-job truncation-budget override (`None` inherits).
        budget: Option<f64>,
        /// Opaque client tag, echoed back in replies about this job.
        tag: Option<String>,
    },
    /// Where is this job in its lifecycle?
    Status {
        /// The job id a submit reply returned.
        job: u64,
    },
    /// Fetch a job's counts (optionally blocking until terminal).
    Result {
        /// The job id.
        job: u64,
        /// When `true`, block until the job is done or failed.
        wait: bool,
    },
    /// Queue/cache/worker gauges.
    Stats,
    /// Full process-wide telemetry registry snapshot (every
    /// `qugen-telemetry` counter, gauge, and histogram) — the superset of
    /// `stats` for scrapers; `stats` stays the small curated view.
    Metrics,
    /// Stop accepting work, drain, and exit the serve loop.
    Shutdown,
}

impl Request {
    /// Parses one request line's JSON into a typed request.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] naming the missing or mistyped field —
    /// submit-time validation is the API's contract, so messages point at
    /// the exact field.
    pub fn from_json(value: &Json) -> Result<Request, ServeError> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field `op`"))?;
        match op {
            "submit" => {
                let source = require_str(value, "source")?.to_string();
                let shots = require_u64(value, "shots")?;
                if shots == 0 {
                    return Err(bad("`shots` must be at least 1"));
                }
                let seed = require_u64(value, "seed")?;
                let backend =
                    match value.get("backend") {
                        None | Some(Json::Null) => None,
                        Some(Json::Str(s)) => Some(s.parse::<BackendChoice>().map_err(|e| {
                            ServeError::BadRequest(format!("invalid `backend`: {e}"))
                        })?),
                        Some(_) => return Err(bad("`backend` must be a string")),
                    };
                let budget = parse_budget(value)?;
                let tag = match value.get("tag") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(_) => return Err(bad("`tag` must be a string")),
                };
                Ok(Request::Submit {
                    source,
                    shots,
                    seed,
                    backend,
                    budget,
                    tag,
                })
            }
            "status" => Ok(Request::Status {
                job: require_u64(value, "job")?,
            }),
            "result" => {
                let job = require_u64(value, "job")?;
                let wait = match value.get("wait") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(bad("`wait` must be a boolean")),
                };
                Ok(Request::Result { job, wait })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::BadRequest(format!(
                "unknown op `{other}` (expected submit|status|result|stats|metrics|shutdown)"
            ))),
        }
    }
}

fn bad(msg: &str) -> ServeError {
    ServeError::BadRequest(msg.to_string())
}

fn require_str<'j>(value: &'j Json, field: &str) -> Result<&'j str, ServeError> {
    value
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("missing string field `{field}`")))
}

fn require_u64(value: &Json, field: &str) -> Result<u64, ServeError> {
    value.get(field).and_then(Json::as_u64).ok_or_else(|| {
        ServeError::BadRequest(format!("missing non-negative integer field `{field}`"))
    })
}

/// `budget`: a non-negative finite number, or the string `"inf"` for an
/// unbounded budget (JSON has no infinity literal).
fn parse_budget(value: &Json) -> Result<Option<f64>, ServeError> {
    match value.get("budget") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) if s == "inf" => Ok(Some(f64::INFINITY)),
        Some(j) => match j.as_f64() {
            Some(b) if b >= 0.0 && b.is_finite() => Ok(Some(b)),
            _ => Err(bad("`budget` must be a non-negative number or \"inf\"")),
        },
    }
}

/// Counts as a canonical bitstring→count JSON object.
///
/// Keys sort lexicographically in the [`crate::codec::Json::Obj`] map, so
/// the same counts always encode to the same bytes — the property the
/// cross-checking tests and example client compare on.
pub fn counts_to_json(counts: &Counts) -> Json {
    let map: BTreeMap<String, Json> = counts
        .iter()
        .map(|(outcome, n)| (counts.bitstring(outcome), Json::Int(n as i128)))
        .collect();
    Json::Obj(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Request, ServeError> {
        Request::from_json(&Json::parse(line).unwrap())
    }

    #[test]
    fn submit_parses_with_and_without_options() {
        let full = parse(
            "{\"op\":\"submit\",\"source\":\"qreg q[1];\",\"shots\":128,\"seed\":7,\
             \"backend\":\"mps:32\",\"budget\":\"inf\",\"tag\":\"t0\"}",
        )
        .unwrap();
        assert_eq!(
            full,
            Request::Submit {
                source: "qreg q[1];".into(),
                shots: 128,
                seed: 7,
                backend: Some(BackendChoice::Mps { max_bond: 32 }),
                budget: Some(f64::INFINITY),
                tag: Some("t0".into()),
            }
        );
        let minimal = parse("{\"op\":\"submit\",\"source\":\"s\",\"shots\":1,\"seed\":0}").unwrap();
        assert_eq!(
            minimal,
            Request::Submit {
                source: "s".into(),
                shots: 1,
                seed: 0,
                backend: None,
                budget: None,
                tag: None,
            }
        );
    }

    #[test]
    fn bad_submits_name_the_offending_field() {
        for (line, needle) in [
            ("{\"op\":\"submit\",\"shots\":1,\"seed\":0}", "`source`"),
            ("{\"op\":\"submit\",\"source\":\"s\",\"seed\":0}", "`shots`"),
            (
                "{\"op\":\"submit\",\"source\":\"s\",\"shots\":0,\"seed\":0}",
                "`shots`",
            ),
            (
                "{\"op\":\"submit\",\"source\":\"s\",\"shots\":1,\"seed\":-1}",
                "`seed`",
            ),
            (
                "{\"op\":\"submit\",\"source\":\"s\",\"shots\":1,\"seed\":0,\
                 \"backend\":\"warp\"}",
                "`backend`",
            ),
            (
                "{\"op\":\"submit\",\"source\":\"s\",\"shots\":1,\"seed\":0,\
                 \"budget\":-0.5}",
                "`budget`",
            ),
        ] {
            let err = parse(line).unwrap_err();
            assert_eq!(err.code(), "bad_request", "{line}");
            assert!(err.to_string().contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn other_ops_parse() {
        assert_eq!(
            parse("{\"op\":\"status\",\"job\":3}").unwrap(),
            Request::Status { job: 3 }
        );
        assert_eq!(
            parse("{\"op\":\"result\",\"job\":3,\"wait\":true}").unwrap(),
            Request::Result { job: 3, wait: true }
        );
        assert_eq!(
            parse("{\"op\":\"result\",\"job\":3}").unwrap(),
            Request::Result {
                job: 3,
                wait: false
            }
        );
        assert_eq!(parse("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse("{\"op\":\"metrics\"}").unwrap(), Request::Metrics);
        assert_eq!(parse("{\"op\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert_eq!(parse("{\"op\":\"fly\"}").unwrap_err().code(), "bad_request");
        assert_eq!(parse("{}").unwrap_err().code(), "bad_request");
    }

    #[test]
    fn full_range_seeds_survive_the_wire() {
        let line = format!(
            "{{\"op\":\"submit\",\"source\":\"s\",\"shots\":1,\"seed\":{}}}",
            u64::MAX
        );
        match parse(&line).unwrap() {
            Request::Submit { seed, .. } => assert_eq!(seed, u64::MAX),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_render_canonically() {
        let mut counts = Counts::new(2);
        counts.record(0b10u64);
        counts.record(0b10u64);
        counts.record(0b01u64);
        let json = counts_to_json(&counts);
        assert_eq!(json.encode(), "{\"01\":1,\"10\":2}");
    }
}
