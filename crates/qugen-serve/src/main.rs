//! The `qugen-serve` binary: a line-delimited-JSON simulation job daemon.
//!
//! ```text
//! qugen-serve --listen 127.0.0.1:7878   # TCP transport
//! qugen-serve --stdio                   # one request per stdin line
//! ```
//!
//! The executor configuration comes from the environment
//! ([`ExecutorConfig::from_env`]: `QUGEN_BACKEND`, `QUGEN_THREADS`,
//! `QUGEN_TRUNCATION_BUDGET`), then flags shape the service around it.

use qsim::exec::ExecutorConfig;
use qugen_serve::server::{Server, ServerConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: qugen-serve [--stdio | --listen ADDR] \
                     [--workers N] [--queue N] [--cache N] [--retain N]";

enum Transport {
    Stdio,
    Tcp(String),
}

fn main() -> ExitCode {
    let mut transport = Transport::Stdio;
    let mut config = ServerConfig {
        // Per-worker simulator threads default to 1 (parallelism comes
        // from concurrent jobs); QUGEN_THREADS raises it explicitly.
        executor: ExecutorConfig::from_env(),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => transport = Transport::Stdio,
            "--listen" => match args.next() {
                Some(addr) => transport = Transport::Tcp(addr),
                None => return usage_error("--listen needs an ADDR"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage_error("--workers needs a number"),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.queue_capacity = n,
                None => return usage_error("--queue needs a number"),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_capacity = n,
                None => return usage_error("--cache needs a number"),
            },
            "--retain" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.terminal_retention = n,
                None => return usage_error("--retain needs a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let server = Arc::new(Server::new(config));
    let outcome = match transport {
        Transport::Stdio => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.serve_lines(stdin.lock(), stdout.lock())
        }
        Transport::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!("qugen-serve listening on {addr}");
                server.serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("qugen-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qugen-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("qugen-serve: {message}\n{USAGE}");
    ExitCode::FAILURE
}
