//! A bounded MPMC work queue with typed rejection.
//!
//! The deliberate design point: a full queue **refuses** instead of
//! blocking the submitter. Submission happens on connection-handler
//! threads; blocking there would turn overload into client-visible hangs.
//! [`BoundedQueue::try_push`] returns the item back so the caller can map
//! it to [`crate::error::ServeError::QueueFull`] promptly. Workers block on
//! [`BoundedQueue::pop`], which parks on a condvar until work arrives or
//! the queue closes for shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or returns it back when the queue is full or
    /// closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed and drained (returning `None` — the worker's exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: future pushes are refused, and workers drain the
    /// remaining items before [`BoundedQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(7), Ok(()));
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn close_drains_then_signals_workers() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue refuses new work");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn workers_park_until_work_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        };
        for i in 0..32 {
            // Spin until the slot frees; capacity 4 forces interleaving.
            let mut item = i;
            while let Err(back) = q.try_push(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
