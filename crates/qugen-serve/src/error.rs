//! The service's typed error vocabulary.
//!
//! Every refusal a client can see is a [`ServeError`] with a stable
//! machine-readable [`ServeError::code`], mirroring how
//! [`qsim::backend::SimError::code`] works one layer down. Clients key
//! their handling on the code; the human-readable message can grow detail
//! without breaking anyone.

use crate::codec::{obj, Json, JsonError};
use qcir::diag::Diagnostic;
use qsim::backend::SimError;
use std::fmt;

/// Why the service refused (or failed) a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The line was not valid JSON.
    Parse(JsonError),
    /// The line was JSON but not a well-formed request (unknown op,
    /// missing or mistyped field, …).
    BadRequest(String),
    /// The submitted program failed to parse or check; the diagnostics
    /// carry the compiler's line/column findings.
    Check(Vec<Diagnostic>),
    /// The circuit checked but the simulator refused it at submit time
    /// (qubit cap, non-Clifford gate on tableau, …) or at run time
    /// (truncation budget).
    Sim(SimError),
    /// The bounded work queue is full; the job was **not** accepted.
    /// Back off and resubmit — this is load shedding, not failure.
    QueueFull {
        /// The queue's capacity, so clients can size their backoff.
        capacity: usize,
    },
    /// No job with this id exists on this server.
    UnknownJob {
        /// The id that missed.
        id: u64,
    },
    /// The server is draining; no new jobs are accepted.
    ShuttingDown,
}

impl ServeError {
    /// Stable machine-readable identifier for the failure class.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Parse(_) => "parse",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Check(_) => "check",
            ServeError::Sim(_) => "sim",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::UnknownJob { .. } => "unknown_job",
            ServeError::ShuttingDown => "shutting_down",
        }
    }

    /// The error as a wire-ready JSON object:
    /// `{"ok":false,"error":<code>,"message":…,…payload}`.
    ///
    /// Structured payloads ride along per class — simulator refusals carry
    /// [`SimError::code`] plus its fields under `"sim"`, check failures
    /// carry a `"diagnostics"` array, `queue_full` carries `"capacity"` —
    /// so clients never have to parse the message text.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(self.code().to_string())),
            ("message", Json::Str(self.to_string())),
        ];
        match self {
            ServeError::Parse(e) => {
                fields.push(("offset", Json::Int(e.offset as i128)));
            }
            ServeError::Check(diags) => {
                let rendered = diags
                    .iter()
                    .map(|d| {
                        obj([
                            ("code", Json::Str(d.code.ident().to_string())),
                            ("message", Json::Str(d.message.clone())),
                            ("line", Json::Int(d.span.line as i128)),
                            ("col", Json::Int(d.span.col as i128)),
                        ])
                    })
                    .collect();
                fields.push(("diagnostics", Json::Arr(rendered)));
            }
            ServeError::Sim(e) => {
                fields.push(("sim", sim_error_payload(e)));
            }
            ServeError::QueueFull { capacity } => {
                fields.push(("capacity", Json::Int(*capacity as i128)));
            }
            ServeError::UnknownJob { id } => {
                fields.push(("job", Json::Int(*id as i128)));
            }
            ServeError::BadRequest(_) | ServeError::ShuttingDown => {}
        }
        obj(fields)
    }
}

/// A [`SimError`]'s machine-readable payload as JSON: always a `"code"`,
/// plus the variant's own fields.
fn sim_error_payload(e: &SimError) -> Json {
    let mut fields = vec![("code", Json::Str(e.code().to_string()))];
    match e {
        SimError::QubitCapExceeded {
            backend,
            num_qubits,
            cap,
        } => {
            fields.push(("backend", Json::Str(backend.to_string())));
            fields.push(("num_qubits", Json::Int(*num_qubits as i128)));
            fields.push(("cap", Json::Int(*cap as i128)));
        }
        SimError::NonCliffordGate { gate } => {
            fields.push(("gate", Json::Str(gate.to_string())));
        }
        SimError::TruncationBudgetExceeded {
            max_bond,
            error_bound,
            budget,
        } => {
            fields.push(("max_bond", Json::Int(*max_bond as i128)));
            fields.push(("error_bound", Json::Float(*error_bound)));
            fields.push(("budget", Json::Float(*budget)));
        }
    }
    obj(fields)
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "invalid JSON: {e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Check(diags) => {
                let errors = diags.len();
                write!(
                    f,
                    "program failed to check ({errors} diagnostic{})",
                    if errors == 1 { "" } else { "s" }
                )
            }
            ServeError::Sim(e) => write!(f, "simulator refused: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "work queue full (capacity {capacity}); resubmit later")
            }
            ServeError::UnknownJob { id } => write!(f, "no job with id {id}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ServeError::Parse(JsonError {
                message: "x".into(),
                offset: 3,
            }),
            ServeError::BadRequest("missing field".into()),
            ServeError::Check(vec![]),
            ServeError::Sim(SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits: 30,
                cap: 26,
            }),
            ServeError::QueueFull { capacity: 4 },
            ServeError::UnknownJob { id: 9 },
            ServeError::ShuttingDown,
        ];
        let codes: Vec<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "parse",
                "bad_request",
                "check",
                "sim",
                "queue_full",
                "unknown_job",
                "shutting_down"
            ]
        );
    }

    #[test]
    fn sim_refusals_keep_their_machine_readable_payload() {
        let e = ServeError::Sim(SimError::QubitCapExceeded {
            backend: "mps",
            num_qubits: 2000,
            cap: 1024,
        });
        let json = e.to_json();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(json.get("error").unwrap().as_str(), Some("sim"));
        let sim = json.get("sim").unwrap();
        assert_eq!(sim.get("code").unwrap().as_str(), Some("qubit_cap"));
        assert_eq!(sim.get("backend").unwrap().as_str(), Some("mps"));
        assert_eq!(sim.get("cap").unwrap().as_u64(), Some(1024));
    }

    #[test]
    fn queue_full_carries_capacity() {
        let json = ServeError::QueueFull { capacity: 256 }.to_json();
        assert_eq!(json.get("error").unwrap().as_str(), Some("queue_full"));
        assert_eq!(json.get("capacity").unwrap().as_u64(), Some(256));
    }
}
