//! Simulation-as-a-service over the deterministic [`qsim`] executor.
//!
//! `qugen-serve` turns the library's batch execution API into a
//! long-running daemon: clients submit typed simulation jobs as
//! line-delimited JSON (over TCP or stdio), the server validates and
//! classifies each circuit *at submit time* (so refusals are immediate
//! and machine-readable, not deferred failures), and a worker pool drives
//! [`qsim::exec::Executor::try_run_job`] behind a bounded queue and a
//! process-wide result cache.
//!
//! The crate is deliberately layered so each policy is testable alone:
//!
//! * [`codec`] — the shared JSON wire layer, re-exported from
//!   [`qugen_wire`] so `qugen-serve` and `qugen-shard` speak one
//!   protocol; integers stay exact so `u64` seeds survive the wire, and
//!   serialization is canonical so replies compare byte-for-byte.
//! * [`proto`] — the typed request vocabulary and wire shapes.
//! * [`error`] — [`error::ServeError`], every refusal a client can see,
//!   each with a stable machine-readable code.
//! * [`queue`] — a bounded MPMC queue whose full-queue behavior is a
//!   typed refusal, never a blocked submitter.
//! * [`cache`] — an LRU result cache keyed by [`qsim::job::JobKey`],
//!   sound because counts are a pure function of the key.
//! * [`server`] — the service itself: job table, worker pool, lifecycle.
//!
//! # Determinism contract
//!
//! The service adds *no* nondeterminism on top of the executor: a job's
//! counts depend only on its [`qsim::job::JobKey`] (circuit fingerprint,
//! shots, seed, effective backend, effective truncation budget), never on
//! submission order, worker count, queue pressure, or cache state. A
//! `qugen-serve` deployment therefore returns bit-identical counts to a
//! local [`qsim::exec::Executor`] run of the same spec — the property the
//! service-level tests assert over 64-way concurrent submissions.

pub mod cache;
pub mod error;
pub mod proto;
pub mod queue;
pub mod server;

pub use codec::Json;
pub use error::ServeError;
// The wire value layer moved to `qugen-wire` (shared with `qugen-shard`);
// the `qugen_serve::codec` path keeps working for existing callers.
pub use proto::Request;
pub use qugen_wire::codec;
pub use server::{Server, ServerConfig};
