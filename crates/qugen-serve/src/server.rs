//! The job service: submit-time validation, a bounded queue, a worker
//! pool over the deterministic [`Executor`], and a result cache.
//!
//! # Job lifecycle
//!
//! ```text
//! submit ──parse/check──resolve──▶ refused (typed error, never enters the table)
//!    │
//!    ├── cache hit ──▶ Done (cached: true, no execution)
//!    │
//!    └── cache miss ─▶ try_push ──full──▶ QueueFull (typed, prompt — never a hang)
//!                         │
//!                         ▼
//!                      Queued ──worker──▶ Running ──▶ Done | Failed
//! ```
//!
//! Validation is front-loaded: a program that cannot parse, check, or
//! resolve onto a backend is refused in the submit reply itself, so
//! clients never poll a job that was doomed from the start. Run-time
//! failures still exist (an MPS truncation budget trips only while
//! executing) and surface as `Failed` with the same typed
//! [`SimError`](qsim::backend::SimError) payload.
//!
//! # Determinism and caching
//!
//! Workers drive [`Executor::try_run_job`], whose counts are a pure
//! function of the [`JobKey`] (see [`qsim::job`]). The server exploits
//! this twice: results are cached process-wide by key, and concurrent
//! submission order cannot change any job's counts — a serve deployment
//! returns bit-identical counts to a local [`Executor`] run of the same
//! spec.
//!
//! # Bounded everything
//!
//! Every resource a client can consume is bounded: the work queue
//! refuses past its capacity, the result cache evicts LRU, terminal
//! jobs are retained in a bounded window
//! ([`ServerConfig::terminal_retention`]) so the job table cannot grow
//! with lifetime submissions, and `result` waits park in finite
//! intervals — giving up with the job's current status once no live
//! worker can make progress — so no handler thread blocks forever.
//!
//! Lock discipline: the job-table and cache mutexes are never held at
//! the same time (cache lookups/inserts bracket the jobs lock on both
//! the submit and worker paths), so there is no lock-order cycle.

use crate::cache::{CachedResult, ResultCache};
use crate::codec::{obj, Json};
use crate::error::ServeError;
use crate::proto::{counts_to_json, Request};
use crate::queue::BoundedQueue;
use qsim::backend::{self, BackendKind};
use qsim::exec::{recommended_threads, Executor, ExecutorConfig};
use qsim::job::{JobKey, JobResult, JobSpec, JobStatus};
use qugen_telemetry::metrics::{self as tmetrics, Counter, Gauge, Histogram};
use qugen_telemetry::trace;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry handles for the serve layer, interned once. The counters
/// mirror [`Inner`]'s per-server atomics into the process-wide registry
/// (the `metrics` op's snapshot); the per-server atomics stay
/// authoritative for `stats`, which must describe *this* server even
/// when tests run several in one process.
struct ServeMetrics {
    submitted: &'static Counter,
    executed: &'static Counter,
    cache_hits: &'static Counter,
    cache_misses: &'static Counter,
    /// `result` waits released because no live worker could make
    /// progress (workerless pool, panicked pool, or drained shutdown).
    wait_released: &'static Counter,
    queue_depth: &'static Gauge,
    busy_workers: &'static Gauge,
    submit_us: &'static Histogram,
    status_us: &'static Histogram,
    result_us: &'static Histogram,
    stats_us: &'static Histogram,
    metrics_us: &'static Histogram,
    shutdown_us: &'static Histogram,
}

impl ServeMetrics {
    /// The latency histogram for one op (names match the wire `op`).
    fn op_us(&self, op: &str) -> &'static Histogram {
        match op {
            "submit" => self.submit_us,
            "status" => self.status_us,
            "result" => self.result_us,
            "stats" => self.stats_us,
            "metrics" => self.metrics_us,
            _ => self.shutdown_us,
        }
    }
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        submitted: tmetrics::counter("serve.submitted"),
        executed: tmetrics::counter("serve.executed"),
        cache_hits: tmetrics::counter("serve.cache_hits"),
        cache_misses: tmetrics::counter("serve.cache_misses"),
        wait_released: tmetrics::counter("serve.wait_released"),
        queue_depth: tmetrics::gauge("serve.queue_depth"),
        busy_workers: tmetrics::gauge("serve.busy_workers"),
        submit_us: tmetrics::histogram("serve.submit_us"),
        status_us: tmetrics::histogram("serve.status_us"),
        result_us: tmetrics::histogram("serve.result_us"),
        stats_us: tmetrics::histogram("serve.stats_us"),
        metrics_us: tmetrics::histogram("serve.metrics_us"),
        shutdown_us: tmetrics::histogram("serve.shutdown_us"),
    })
}

/// The wire `op` a typed request arrived as (for metric/span names).
fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Submit { .. } => "submit",
        Request::Status { .. } => "status",
        Request::Result { .. } => "result",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// How the service is shaped: worker count, queue and cache bounds, and
/// the executor the workers share.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs. `0` spawns none — jobs queue but
    /// never run, which is how the backpressure tests freeze the queue.
    pub workers: usize,
    /// Bounded work-queue capacity; a full queue refuses with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// How many terminal (`Done`/`Failed`) jobs stay queryable. Once a
    /// job is terminal it only exists for `status`/`result` lookups, so
    /// the table evicts the oldest terminal entries beyond this bound —
    /// a long-running daemon's memory stays proportional to in-flight
    /// work plus this window, not to lifetime submissions.
    pub terminal_retention: usize,
    /// The executor configuration workers run under. Defaults to one
    /// simulator thread per worker so the two pools do not nest
    /// multiplicatively — parallelism comes from concurrent jobs.
    pub executor: ExecutorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: recommended_threads(),
            queue_capacity: 256,
            cache_capacity: 1024,
            terminal_retention: 1024,
            executor: ExecutorConfig::new().threads(1),
        }
    }
}

/// Everything the server remembers about one accepted job.
struct JobEntry {
    spec: JobSpec,
    key: JobKey,
    backend: BackendKind,
    tag: Option<String>,
    status: JobStatus,
    result: Option<JobResult>,
    error: Option<ServeError>,
}

/// The job map plus a bounded window of terminal entries. Terminal jobs
/// are evicted oldest-first past [`ServerConfig::terminal_retention`],
/// so sustained submissions cannot grow the table without bound.
struct JobTable {
    map: HashMap<u64, JobEntry>,
    /// Terminal job ids in completion order — the eviction queue.
    terminal: VecDeque<u64>,
    retention: usize,
}

impl JobTable {
    fn new(retention: usize) -> Self {
        JobTable {
            map: HashMap::new(),
            terminal: VecDeque::new(),
            retention,
        }
    }

    /// Records `id` as terminal and evicts the oldest terminal entries
    /// beyond the retention bound. With `retention` 0 the job is evicted
    /// immediately — legal, but its result is only reachable via the
    /// submit reply or the cache.
    fn mark_terminal(&mut self, id: u64) {
        self.terminal.push_back(id);
        while self.terminal.len() > self.retention {
            if let Some(old) = self.terminal.pop_front() {
                self.map.remove(&old);
            }
        }
    }
}

struct Inner {
    exec: Executor,
    queue: BoundedQueue<u64>,
    jobs: Mutex<JobTable>,
    /// Signalled whenever a job reaches a terminal status or a worker
    /// exits (for `{"op":"result","wait":true}` blockers).
    done: Condvar,
    cache: Mutex<ResultCache>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    executed: AtomicU64,
    /// Workers still running their loop; when this hits zero no queued
    /// or running job can ever progress, so waiters stop blocking.
    live_workers: AtomicUsize,
    /// Workers currently executing a job (between pop and completion) —
    /// the occupancy half of `stats`' worker picture; `live_workers`
    /// is the capacity half.
    busy_workers: AtomicUsize,
    shutting_down: AtomicBool,
}

/// A running job service. Dropping it drains the queue and joins the
/// workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the service and spawns its worker pool.
    pub fn new(config: ServerConfig) -> Self {
        let inner = Arc::new(Inner {
            exec: Executor::new(config.executor),
            queue: BoundedQueue::new(config.queue_capacity),
            jobs: Mutex::new(JobTable::new(config.terminal_retention)),
            done: Condvar::new(),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            live_workers: AtomicUsize::new(config.workers),
            busy_workers: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Server { inner, workers }
    }

    /// A service with [`ServerConfig::default`].
    pub fn with_defaults() -> Self {
        Server::new(ServerConfig::default())
    }

    /// Handles one request line and returns the one response line
    /// (without trailing newline). Transport-agnostic: the TCP and stdio
    /// loops, tests, and in-process clients all call this.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match Json::parse(line) {
            Err(e) => ServeError::Parse(e).to_json(),
            Ok(value) => match Request::from_json(&value) {
                Err(e) => e.to_json(),
                Ok(request) => self.handle(request),
            },
        };
        response.encode()
    }

    /// Typed request dispatch; returns the wire-ready response object.
    ///
    /// Every op is timed into its `serve.<op>_us` histogram and emits a
    /// `serve`-layer trace span; with telemetry and tracing both off the
    /// wrapper is two relaxed atomic loads.
    pub fn handle(&self, request: Request) -> Json {
        if !tmetrics::enabled() && !trace::enabled() {
            return self.dispatch(request);
        }
        let op = op_name(&request);
        let span = trace::span("serve", op);
        let start = Instant::now();
        let response = self.dispatch(request);
        serve_metrics()
            .op_us(op)
            .record(start.elapsed().as_micros() as u64);
        span.int("ok", response.get("error").is_none() as i128)
            .finish();
        response
    }

    fn dispatch(&self, request: Request) -> Json {
        match request {
            Request::Submit {
                source,
                shots,
                seed,
                backend,
                budget,
                tag,
            } => match self.submit(&source, shots, seed, backend, budget, tag) {
                Ok(json) => json,
                Err(e) => e.to_json(),
            },
            Request::Status { job } => match self.status(job) {
                Ok(json) => json,
                Err(e) => e.to_json(),
            },
            Request::Result { job, wait } => match self.result(job, wait) {
                Ok(json) => json,
                Err(e) => e.to_json(),
            },
            Request::Stats => self.stats(),
            Request::Metrics => obj([
                ("ok", Json::Bool(true)),
                ("metrics", tmetrics::snapshot_json()),
            ]),
            Request::Shutdown => {
                self.begin_shutdown();
                obj([("ok", Json::Bool(true)), ("status", str_json("draining"))])
            }
        }
    }

    /// Validates, classifies, caches or enqueues one job. See the module
    /// docs for the lifecycle this implements.
    fn submit(
        &self,
        source: &str,
        shots: u64,
        seed: u64,
        backend_override: Option<backend::BackendChoice>,
        budget: Option<f64>,
        tag: Option<String>,
    ) -> Result<Json, ServeError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Front-loaded validation: parse, check, and resolve before the
        // job can consume a queue slot.
        let program = qcir::dsl::parse(source).map_err(|d| ServeError::Check(vec![d]))?;
        let outcome = qcir::check::check(&program, &qcir::api::ApiRegistry::standard());
        let circuit = match outcome.circuit {
            Some(c) => c,
            None => return Err(ServeError::Check(outcome.diagnostics)),
        };
        let mut spec = JobSpec::new(circuit, shots, seed);
        if let Some(choice) = backend_override {
            spec = spec.with_backend(choice);
        }
        if let Some(b) = budget {
            spec = spec.with_budget(b);
        }
        let config = inner.exec.config();
        let choice = spec.effective_backend(config.backend);
        let resolved = backend::resolve(choice, spec.circuit())?;
        let key = spec.key(config.backend, config.truncation_budget);

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Cache hit: the job is born terminal, no execution, no queue
        // slot. The lookup is bound to a local so the cache guard drops
        // before the jobs lock below — no thread ever holds both mutexes
        // (workers insert into the cache outside the jobs lock for the
        // same reason), so there is no lock-order cycle.
        let hit = inner.cache.lock().expect("cache lock poisoned").get(&key);
        let m = serve_metrics();
        if let Some(hit) = hit {
            inner.submitted.fetch_add(1, Ordering::Relaxed);
            m.submitted.inc();
            m.cache_hits.inc();
            let result = JobResult {
                counts: hit.counts.clone(),
                backend: hit.backend,
                cached: true,
            };
            let entry = JobEntry {
                spec,
                key,
                backend: hit.backend,
                tag: tag.clone(),
                status: JobStatus::Done,
                result: Some(result),
                error: None,
            };
            let mut jobs = inner.jobs.lock().expect("job table poisoned");
            jobs.map.insert(id, entry);
            jobs.mark_terminal(id);
            drop(jobs);
            inner.done.notify_all();
            return Ok(submit_reply(id, JobStatus::Done, true, &tag));
        }

        let entry = JobEntry {
            spec,
            key,
            backend: resolved,
            tag: tag.clone(),
            status: JobStatus::Queued,
            result: None,
            error: None,
        };
        inner
            .jobs
            .lock()
            .expect("job table poisoned")
            .map
            .insert(id, entry);
        if inner.queue.try_push(id).is_err() {
            // Give the slot back atomically with the refusal: the job id
            // was never visible to the client, so remove the entry. A
            // refused submission never counts as submitted.
            inner
                .jobs
                .lock()
                .expect("job table poisoned")
                .map
                .remove(&id);
            return Err(ServeError::QueueFull {
                capacity: inner.queue.capacity(),
            });
        }
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        m.submitted.inc();
        m.cache_misses.inc();
        m.queue_depth.set(inner.queue.len() as i64);
        Ok(submit_reply(id, JobStatus::Queued, false, &tag))
    }

    fn status(&self, id: u64) -> Result<Json, ServeError> {
        let jobs = self.inner.jobs.lock().expect("job table poisoned");
        let entry = jobs.map.get(&id).ok_or(ServeError::UnknownJob { id })?;
        Ok(obj([
            ("ok", Json::Bool(true)),
            ("job", Json::Int(id as i128)),
            ("status", str_json(entry.status.as_str())),
            ("backend", str_json(entry.backend.name())),
        ]))
    }

    /// A job's counts. With `wait`, blocks until the job is terminal; a
    /// non-terminal job without `wait` answers with its status and no
    /// counts.
    ///
    /// The wait is bounded: it parks in finite intervals and gives up —
    /// answering with the job's current (non-terminal) status — once no
    /// worker is left to make progress (`workers: 0`, a panicked pool,
    /// or a drained shutdown). Clients are never parked forever.
    fn result(&self, id: u64, wait: bool) -> Result<Json, ServeError> {
        let inner = &self.inner;
        let mut jobs = inner.jobs.lock().expect("job table poisoned");
        loop {
            let entry = jobs.map.get(&id).ok_or(ServeError::UnknownJob { id })?;
            if entry.status.is_terminal() {
                return Ok(render_terminal(id, entry));
            }
            if !wait || inner.live_workers.load(Ordering::SeqCst) == 0 {
                if wait {
                    // The caller asked to block but no live worker can
                    // ever finish this job — a released (not satisfied)
                    // wait, worth counting: a nonzero rate means clients
                    // are polling a pool that cannot progress.
                    serve_metrics().wait_released.inc();
                }
                return Ok(obj([
                    ("ok", Json::Bool(true)),
                    ("job", Json::Int(id as i128)),
                    ("status", str_json(entry.status.as_str())),
                ]));
            }
            let (guard, _timed_out) = inner
                .done
                .wait_timeout(jobs, Duration::from_millis(100))
                .expect("job table poisoned");
            jobs = guard;
        }
    }

    fn stats(&self) -> Json {
        let inner = &self.inner;
        let cache = inner.cache.lock().expect("cache lock poisoned");
        let cache_stats = cache.stats();
        let cache_len = cache.len();
        drop(cache);
        let plan = inner.exec.plan_cache_stats();
        obj([
            ("ok", Json::Bool(true)),
            ("workers", Json::Int(self.workers.len() as i128)),
            ("queue_depth", Json::Int(inner.queue.len() as i128)),
            ("queue_capacity", Json::Int(inner.queue.capacity() as i128)),
            (
                "jobs",
                Json::Int(inner.jobs.lock().expect("job table poisoned").map.len() as i128),
            ),
            (
                "live_workers",
                Json::Int(inner.live_workers.load(Ordering::SeqCst) as i128),
            ),
            (
                "busy_workers",
                Json::Int(inner.busy_workers.load(Ordering::SeqCst) as i128),
            ),
            (
                "submitted",
                Json::Int(inner.submitted.load(Ordering::Relaxed) as i128),
            ),
            (
                "executed",
                Json::Int(inner.executed.load(Ordering::Relaxed) as i128),
            ),
            ("cache_hits", Json::Int(cache_stats.hits as i128)),
            ("cache_misses", Json::Int(cache_stats.misses as i128)),
            ("cache_len", Json::Int(cache_len as i128)),
            ("plan_cache_hits", Json::Int(plan.hits as i128)),
            ("plan_cache_misses", Json::Int(plan.misses as i128)),
            ("plan_cache_evictions", Json::Int(plan.evictions as i128)),
            ("plan_cache_len", Json::Int(plan.len as i128)),
            ("plan_cache_capacity", Json::Int(plan.capacity as i128)),
            (
                "plan_fusion_declined",
                Json::Int(plan.fusion_declined as i128),
            ),
            (
                "shutting_down",
                Json::Bool(inner.shutting_down.load(Ordering::SeqCst)),
            ),
        ])
    }

    /// Stops accepting submissions and closes the queue; workers drain
    /// what was already accepted.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.queue.close();
    }

    /// `true` once [`Server::begin_shutdown`] (or a `shutdown` request)
    /// has been seen.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Serves line-delimited JSON over TCP until a `shutdown` request
    /// arrives. Each connection gets its own handler thread; the accept
    /// loop polls so it can observe shutdown promptly.
    ///
    /// # Errors
    ///
    /// I/O errors from the listener setup; per-connection errors just end
    /// that connection.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let server = Arc::clone(self);
                    handlers.push(std::thread::spawn(move || {
                        let _ = handle_connection(&server, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Serves line-delimited JSON over a reader/writer pair (the
    /// `--stdio` transport) until EOF or a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates write errors; a read error ends the loop cleanly.
    pub fn serve_lines(&self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(output, "{response}")?;
            output.flush()?;
            if self.is_shutting_down() {
                break;
            }
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Decrements [`Inner::live_workers`] when a worker exits — normally
/// *or* by panic — and wakes `result` waiters so nobody blocks on a
/// pool that can no longer make progress.
struct WorkerGuard<'a> {
    inner: &'a Inner,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.inner.live_workers.fetch_sub(1, Ordering::SeqCst);
        self.inner.done.notify_all();
    }
}

/// One worker: pop → Running → execute → cache → Done/Failed → notify.
fn worker_loop(inner: &Inner) {
    let _guard = WorkerGuard { inner };
    let m = serve_metrics();
    while let Some(id) = inner.queue.pop() {
        m.queue_depth.set(inner.queue.len() as i64);
        let (spec, key, backend) = {
            let mut jobs = inner.jobs.lock().expect("job table poisoned");
            match jobs.map.get_mut(&id) {
                Some(entry) => {
                    entry.status = JobStatus::Running;
                    (entry.spec.clone(), entry.key, entry.backend)
                }
                None => continue,
            }
        };
        // Occupancy brackets the execute-and-record section, so a
        // `stats` reply showing `busy_workers: 0, queue_depth: 0` means
        // the server is fully drained — every accepted job's result and
        // terminal status are visible.
        let busy = inner.busy_workers.fetch_add(1, Ordering::SeqCst) + 1;
        m.busy_workers.set(busy as i64);
        // Execute outside the table lock so status queries stay live.
        let outcome = inner.exec.try_run_job(&spec);
        inner.executed.fetch_add(1, Ordering::Relaxed);
        m.executed.inc();
        // Cache insert happens before (not inside) the jobs lock: every
        // site holds at most one of the two mutexes at a time, so the
        // cache/jobs pair cannot form a lock-order cycle with `submit`.
        if let Ok(counts) = &outcome {
            inner.cache.lock().expect("cache lock poisoned").insert(
                key,
                Arc::new(CachedResult {
                    counts: counts.clone(),
                    backend,
                }),
            );
        }
        let mut jobs = inner.jobs.lock().expect("job table poisoned");
        if let Some(entry) = jobs.map.get_mut(&id) {
            match outcome {
                Ok(counts) => {
                    entry.result = Some(JobResult {
                        counts,
                        backend: entry.backend,
                        cached: false,
                    });
                    entry.status = JobStatus::Done;
                }
                Err(e) => {
                    entry.error = Some(ServeError::Sim(e));
                    entry.status = JobStatus::Failed;
                }
            }
            jobs.mark_terminal(id);
        }
        drop(jobs);
        // Occupancy drops only after the terminal status is recorded —
        // see the increment above for the drain invariant this buys.
        let busy = inner.busy_workers.fetch_sub(1, Ordering::SeqCst) - 1;
        m.busy_workers.set(busy as i64);
        inner.done.notify_all();
    }
}

fn handle_connection(server: &Arc<Server>, stream: TcpStream) -> std::io::Result<()> {
    // Finite read timeout so this thread notices server shutdown even on
    // an idle connection.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = server.handle_line(line.trim_end());
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if server.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn submit_reply(id: u64, status: JobStatus, cached: bool, tag: &Option<String>) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Int(id as i128)),
        ("status", str_json(status.as_str())),
        ("cached", Json::Bool(cached)),
    ];
    if let Some(tag) = tag {
        fields.push(("tag", Json::Str(tag.clone())));
    }
    obj(fields)
}

/// Renders a terminal job: counts for `Done`, the stored typed error
/// (plus the job id) for `Failed`.
fn render_terminal(id: u64, entry: &JobEntry) -> Json {
    match (&entry.result, &entry.error) {
        (Some(result), _) => {
            let mut fields = vec![
                ("ok", Json::Bool(true)),
                ("job", Json::Int(id as i128)),
                ("status", str_json(JobStatus::Done.as_str())),
                ("backend", str_json(result.backend.name())),
                ("cached", Json::Bool(result.cached)),
                ("shots", Json::Int(result.counts.shots() as i128)),
                ("clbits", Json::Int(result.counts.num_clbits() as i128)),
                ("counts", counts_to_json(&result.counts)),
            ];
            if let Some(tag) = &entry.tag {
                fields.push(("tag", Json::Str(tag.clone())));
            }
            obj(fields)
        }
        (None, Some(error)) => {
            let mut json = error.to_json();
            if let Json::Obj(map) = &mut json {
                map.insert("job".to_string(), Json::Int(id as i128));
                map.insert("status".to_string(), str_json(JobStatus::Failed.as_str()));
            }
            json
        }
        (None, None) => unreachable!("terminal job with neither result nor error"),
    }
}

fn str_json(s: &str) -> Json {
    Json::Str(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\n\
                        cx q[0], q[1];\nmeasure q -> c;\n";

    fn submit_line(shots: u64, seed: u64) -> String {
        format!(
            "{{\"op\":\"submit\",\"source\":{},\"shots\":{shots},\"seed\":{seed}}}",
            Json::Str(BELL.to_string()).encode()
        )
    }

    fn parse(response: &str) -> Json {
        Json::parse(response).expect("response is valid JSON")
    }

    #[test]
    fn submit_wait_result_round_trip() {
        let server = Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let reply = parse(&server.handle_line(&submit_line(512, 7)));
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        let id = reply.get("job").unwrap().as_u64().unwrap();
        let result = parse(
            &server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")),
        );
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(result.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(result.get("shots").unwrap().as_u64(), Some(512));
        let counts = result.get("counts").unwrap().as_obj().unwrap();
        // A Bell pair only ever measures 00 or 11.
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
    }

    #[test]
    fn malformed_and_unknown_requests_get_typed_errors() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let parse_err = parse(&server.handle_line("{nope"));
        assert_eq!(parse_err.get("error").unwrap().as_str(), Some("parse"));
        let unknown = parse(&server.handle_line("{\"op\":\"status\",\"job\":999}"));
        assert_eq!(unknown.get("error").unwrap().as_str(), Some("unknown_job"));
        let bad_program = parse(
            &server.handle_line("{\"op\":\"submit\",\"source\":\"hq[0];\",\"shots\":1,\"seed\":0}"),
        );
        assert_eq!(bad_program.get("error").unwrap().as_str(), Some("check"));
    }

    #[test]
    fn submit_time_refusals_carry_the_sim_payload() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // 40 qubits forced dense: over the cap, refused at submit time.
        let line = format!(
            "{{\"op\":\"submit\",\"source\":{},\"shots\":1,\"seed\":0,\"backend\":\"dense\"}}",
            Json::Str(
                "import qasmlite 2.1;\nqreg q[40];\ncreg c[1];\nh q[0];\n\
                 measure q[0] -> c[0];\n"
                    .into()
            )
            .encode()
        );
        let reply = parse(&server.handle_line(&line));
        assert_eq!(reply.get("error").unwrap().as_str(), Some("sim"));
        let sim = reply.get("sim").unwrap();
        assert_eq!(sim.get("code").unwrap().as_str(), Some("qubit_cap"));
        assert_eq!(sim.get("backend").unwrap().as_str(), Some("dense"));
    }

    #[test]
    fn cache_hit_skips_execution_and_says_so() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let first = parse(&server.handle_line(&submit_line(256, 3)));
        let id = first.get("job").unwrap().as_u64().unwrap();
        let first_result = parse(
            &server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")),
        );
        // Same spec again: terminal at submit, served from cache.
        let second = parse(&server.handle_line(&submit_line(256, 3)));
        assert_eq!(second.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        let id2 = second.get("job").unwrap().as_u64().unwrap();
        let second_result =
            parse(&server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id2}}}")));
        assert_eq!(
            second_result.get("counts"),
            first_result.get("counts"),
            "cached counts are bit-identical"
        );
        let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
        assert_eq!(stats.get("executed").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn full_queue_refuses_with_queue_full() {
        // No workers: nothing drains, so capacity 2 fills at once.
        let server = Server::new(ServerConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        for seed in 0..2 {
            let reply = parse(&server.handle_line(&submit_line(64, seed)));
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "seed {seed}");
        }
        let refused = parse(&server.handle_line(&submit_line(64, 99)));
        assert_eq!(refused.get("error").unwrap().as_str(), Some("queue_full"));
        assert_eq!(refused.get("capacity").unwrap().as_u64(), Some(2));
        // The refused job left no trace in the table: 2 live jobs.
        let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
        assert_eq!(stats.get("jobs").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn cache_hit_submissions_race_worker_completions_without_deadlock() {
        // Regression: a cache-hit submit (cache lock → jobs lock) racing
        // a worker completion (jobs lock → cache lock) used to ABBA
        // deadlock. Hammer the same key from several threads while
        // workers complete fresh keys; completion within the timeout is
        // the assertion.
        let server = Arc::new(Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        }));
        // Prime the cache so submitters take the cache-hit path.
        let primed = parse(&server.handle_line(&submit_line(64, 42)));
        let id = primed.get("job").unwrap().as_u64().unwrap();
        server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"));
        let hammers: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        if t % 2 == 0 {
                            // Cache hits on the primed key.
                            let reply = parse(&server.handle_line(&submit_line(64, 42)));
                            assert_eq!(reply.get("cached"), Some(&Json::Bool(true)));
                        } else {
                            // Fresh keys that workers must execute.
                            let seed = 1_000 + t as u64 * 100 + i;
                            let reply = parse(&server.handle_line(&submit_line(64, seed)));
                            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
                        }
                    }
                })
            })
            .collect();
        for h in hammers {
            h.join().expect("no deadlock, no panic");
        }
    }

    #[test]
    fn terminal_jobs_are_evicted_past_the_retention_window() {
        let server = Server::new(ServerConfig {
            workers: 1,
            terminal_retention: 2,
            ..ServerConfig::default()
        });
        let mut ids = Vec::new();
        for seed in 0..4 {
            let reply = parse(&server.handle_line(&submit_line(32, seed)));
            let id = reply.get("job").unwrap().as_u64().unwrap();
            // Wait each job to terminal so completion order is the
            // submission order.
            server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"));
            ids.push(id);
        }
        let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
        assert_eq!(stats.get("jobs").unwrap().as_u64(), Some(2));
        // The oldest terminal jobs are gone; the newest are queryable.
        let oldest =
            parse(&server.handle_line(&format!("{{\"op\":\"status\",\"job\":{}}}", ids[0])));
        assert_eq!(oldest.get("error").unwrap().as_str(), Some("unknown_job"));
        let newest =
            parse(&server.handle_line(&format!("{{\"op\":\"status\",\"job\":{}}}", ids[3])));
        assert_eq!(newest.get("status").unwrap().as_str(), Some("done"));
    }

    #[test]
    fn wait_on_a_workerless_server_returns_instead_of_hanging() {
        // With no workers a queued job can never progress; `wait: true`
        // must answer with the current status, not park forever.
        let server = Server::new(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
        let reply = parse(&server.handle_line(&submit_line(64, 5)));
        let id = reply.get("job").unwrap().as_u64().unwrap();
        let result = parse(
            &server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")),
        );
        assert_eq!(result.get("status").unwrap().as_str(), Some("queued"));
        assert!(result.get("counts").is_none());
    }

    #[test]
    fn refused_submissions_do_not_count_as_submitted() {
        let server = Server::new(ServerConfig {
            workers: 0,
            queue_capacity: 1,
            ..ServerConfig::default()
        });
        let accepted = parse(&server.handle_line(&submit_line(64, 0)));
        assert_eq!(accepted.get("ok"), Some(&Json::Bool(true)));
        let refused = parse(&server.handle_line(&submit_line(64, 1)));
        assert_eq!(refused.get("error").unwrap().as_str(), Some("queue_full"));
        let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
        assert_eq!(stats.get("submitted").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("jobs").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn stats_reports_drained_queue_and_idle_workers_after_completion() {
        // Regression: `stats` must expose live occupancy, and both gauges
        // must return to zero once every accepted job is terminal. The
        // worker decrements occupancy only after recording the terminal
        // status, so a short poll (not an instant assert) is the honest
        // way to observe the drain without racing the notify.
        let server = Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let mut ids = Vec::new();
        for seed in 0..6 {
            let reply = parse(&server.handle_line(&submit_line(256, 100 + seed)));
            ids.push(reply.get("job").unwrap().as_u64().unwrap());
        }
        for id in ids {
            let result = parse(
                &server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")),
            );
            assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
            let depth = stats.get("queue_depth").unwrap().as_u64().unwrap();
            let busy = stats.get("busy_workers").unwrap().as_u64().unwrap();
            if depth == 0 && busy == 0 {
                assert_eq!(stats.get("executed").unwrap().as_u64(), Some(6));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "queue_depth={depth} busy_workers={busy} never drained to 0"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn stats_exposes_plan_cache_counters() {
        use qsim::exec::PlanCacheMode;
        // A private plan cache isolates this test's counters from every
        // other test sharing the process-wide cache.
        let server = Server::new(ServerConfig {
            workers: 1,
            executor: ExecutorConfig::new()
                .threads(1)
                .plan_cache(PlanCacheMode::Private),
            ..ServerConfig::default()
        });
        // Forced dense: auto would pick tableau for a Clifford circuit
        // and the trajectory path never consults the plan cache.
        for seed in [1, 2] {
            let line = format!(
                "{{\"op\":\"submit\",\"source\":{},\"shots\":64,\"seed\":{seed},\
                 \"backend\":\"dense\"}}",
                Json::Str(BELL.to_string()).encode()
            );
            let reply = parse(&server.handle_line(&line));
            let id = reply.get("job").unwrap().as_u64().unwrap();
            server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"));
        }
        let stats = parse(&server.handle_line("{\"op\":\"stats\"}"));
        // Same circuit twice: one compile (miss), one plan-cache hit.
        assert_eq!(stats.get("plan_cache_misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("plan_cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("plan_cache_len").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("plan_cache_evictions").unwrap().as_u64(), Some(0));
        // BELL is a bare Bell pair: nothing for the fuser to decline.
        assert_eq!(stats.get("plan_fusion_declined").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn metrics_op_returns_a_registry_snapshot() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let reply = parse(&server.handle_line(&submit_line(64, 71)));
        let id = reply.get("job").unwrap().as_u64().unwrap();
        server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"));
        let snapshot = parse(&server.handle_line("{\"op\":\"metrics\"}"));
        assert_eq!(snapshot.get("ok"), Some(&Json::Bool(true)));
        let metrics = snapshot.get("metrics").unwrap().as_obj().unwrap();
        // The registry is process-wide, so concurrent tests may have
        // added more — assert presence and a lower bound, not equality.
        let executed = metrics.get("serve.executed").unwrap().as_u64().unwrap();
        assert!(executed >= 1, "serve.executed = {executed}");
        let submit_us = metrics.get("serve.submit_us").unwrap();
        assert!(submit_us.get("count").unwrap().as_u64().unwrap() >= 1);
        assert!(metrics.contains_key("exec.jobs"), "{metrics:?}");
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let accepted = parse(&server.handle_line(&submit_line(128, 1)));
        let id = accepted.get("job").unwrap().as_u64().unwrap();
        let bye = parse(&server.handle_line("{\"op\":\"shutdown\"}"));
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        let refused = parse(&server.handle_line(&submit_line(128, 2)));
        assert_eq!(
            refused.get("error").unwrap().as_str(),
            Some("shutting_down")
        );
        // The already-accepted job still completes.
        let result = parse(
            &server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}")),
        );
        assert_eq!(result.get("status").unwrap().as_str(), Some("done"));
    }
}
