//! Process-wide result cache keyed by [`JobKey`].
//!
//! The determinism contract ([`qsim::job`] module docs) is what makes this
//! sound: equal keys imply bit-identical counts, so a cached result *is*
//! the result — `cached: true` on a [`qsim::job::JobResult`] is an honest
//! latency note, not an approximation flag. Eviction is least-recently-used
//! over a logical access clock, the same idiom as `qsim::plan`'s plan
//! cache.

use qsim::backend::BackendKind;
use qsim::dist::Counts;
use qsim::job::JobKey;
use std::collections::HashMap;
use std::sync::Arc;

/// What the cache remembers per key: enough to build a
/// [`qsim::job::JobResult`] without re-execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The counts the job produced.
    pub counts: Counts,
    /// The engine that produced them.
    pub backend: BackendKind,
}

/// Cache hit/miss counters (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
}

/// A fixed-capacity LRU map from [`JobKey`] to finished counts.
///
/// Not internally synchronized — the server wraps it in its own mutex so
/// lookup-then-insert sequences stay simple.
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    entries: HashMap<JobKey, (u64, Arc<CachedResult>)>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &JobKey) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((last_used, result)) => {
                *last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(result))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: JobKey, result: Arc<CachedResult>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::circuit::Circuit;
    use qsim::backend::BackendChoice;
    use qsim::job::JobSpec;

    fn key(seed: u64) -> JobKey {
        let mut qc = Circuit::new(1, 1);
        qc.h(0).measure(0, 0);
        JobSpec::new(qc, 64, seed).key(BackendChoice::Auto, 0.01)
    }

    fn result() -> Arc<CachedResult> {
        Arc::new(CachedResult {
            counts: Counts::new(1),
            backend: BackendKind::Dense,
        })
    }

    #[test]
    fn hit_returns_the_inserted_result() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), result());
        let hit = cache.get(&key(1)).expect("hit");
        assert_eq!(hit.backend, BackendKind::Dense);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), result());
        cache.insert(key(2), result());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), result());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), result());
        cache.insert(key(2), result());
        cache.insert(key(2), result());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
    }
}
