//! Criterion bench: the observability layer's overhead on the warm-plan
//! executor path.
//!
//! The `telemetry_16q` group runs the `plan` bench's random circuit
//! family through a warm shared-plan `try_run`, once with telemetry off
//! (`baseline` — the metric gates early-return on one relaxed load) and
//! once with it on (`instrumented` — job counters, per-backend latency
//! histograms, kernel dispatch-tier counters all live). CI's acceptance
//! bar: `instrumented` within 3% of `baseline`. Tracing stays disabled
//! in both rows — spans wrap jobs, not shots, so their cost is per-call
//! and the bar belongs to the metrics hot path.
//!
//! Sized for a *stable* A/B comparison under quick mode's 3 fixed
//! iterations: 16 qubits keeps the whole state vector (1 MiB)
//! cache-resident — the 20q variant is memory-bandwidth-bound and its
//! run-to-run noise alone exceeds the 3% bar — and each timed iteration
//! executes the job [`RUNS_PER_ITER`] times so the mean averages over
//! `3 × RUNS_PER_ITER` executor runs.

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::Executor;
use qugen_telemetry::{metrics, trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The same deterministic random gate mix as `plan::random_gates`
/// (diagonal, permutation, butterfly and controlled tiers).
fn random_gates(n: usize, count: usize, seed: u64) -> Vec<(Gate, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates = Vec::with_capacity(count);
    for _ in 0..count {
        let q = rng.gen_range(0..n);
        let p = (q + rng.gen_range(1..n)) % n;
        let gate: (Gate, Vec<usize>) = match rng.gen_range(0..8) {
            0 => (Gate::H, vec![q]),
            1 => (Gate::T, vec![q]),
            2 => (Gate::RZ(rng.gen_range(-3.0..3.0)), vec![q]),
            3 => (Gate::U(0.3, 1.1, -0.4), vec![q]),
            4 => (Gate::X, vec![q]),
            5 => (Gate::CX, vec![q, p]),
            6 => (Gate::CZ, vec![q, p]),
            _ => (Gate::SWAP, vec![q, p]),
        };
        gates.push(gate);
    }
    gates
}

/// Executor runs per timed iteration (averages system noise down far
/// enough for the 3% CI bar to measure telemetry, not the machine).
const RUNS_PER_ITER: usize = 8;

fn bench_telemetry_overhead_16q(c: &mut Criterion) {
    let n = 16;
    let mut qc = Circuit::new(n, n);
    for (g, qs) in random_gates(n, 40, 99) {
        qc.push_gate(g, &qs);
    }
    qc.measure_all();
    trace::disable();
    // Prime the shared plan cache so both rows replay the same warm plan.
    let _ = Executor::ideal().try_run(&qc, 1, 0).unwrap();
    let mut group = c.benchmark_group("telemetry_16q");
    group.bench_function("baseline", |b| {
        metrics::set_enabled(false);
        b.iter(|| {
            for _ in 0..RUNS_PER_ITER {
                std::hint::black_box(Executor::ideal().try_run(&qc, 64, 1).unwrap());
            }
        })
    });
    group.bench_function("instrumented", |b| {
        metrics::set_enabled(true);
        b.iter(|| {
            for _ in 0..RUNS_PER_ITER {
                std::hint::black_box(Executor::ideal().try_run(&qc, 64, 1).unwrap());
            }
        })
    });
    group.finish();
    metrics::set_enabled(true);
}

criterion_group!(benches, bench_telemetry_overhead_16q);
criterion_main!(benches);
