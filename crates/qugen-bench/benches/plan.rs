//! Criterion benches: the compile step — fused cached plans vs the
//! per-gate kernel dispatch they replace.
//!
//! The headline `plan_fusion_20q` group runs the same 20-qubit random
//! circuit family as `sim_kernels`' `random_circuit_20q` through both
//! execution paths; the ratio between `per_gate_dispatch` and
//! `fused_plan_warm` is the fusion win CI tracks (acceptance floor: 1.5x).

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::Executor;
use qsim::noise::NoiseModel;
use qsim::plan::CircuitPlan;
use qsim::replay::NoisyPlan;
use qsim::state::StateVector;
use qsim::word::OutcomeWord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The same deterministic random gate mix as `sim_kernels::random_gates`
/// (diagonal, permutation, butterfly and controlled tiers).
fn random_gates(n: usize, count: usize, seed: u64) -> Vec<(Gate, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates = Vec::with_capacity(count);
    for _ in 0..count {
        let q = rng.gen_range(0..n);
        let p = (q + rng.gen_range(1..n)) % n;
        let gate: (Gate, Vec<usize>) = match rng.gen_range(0..8) {
            0 => (Gate::H, vec![q]),
            1 => (Gate::T, vec![q]),
            2 => (Gate::RZ(rng.gen_range(-3.0..3.0)), vec![q]),
            3 => (Gate::U(0.3, 1.1, -0.4), vec![q]),
            4 => (Gate::X, vec![q]),
            5 => (Gate::CX, vec![q, p]),
            6 => (Gate::CZ, vec![q, p]),
            _ => (Gate::SWAP, vec![q, p]),
        };
        gates.push(gate);
    }
    gates
}

fn circuit_from(n: usize, gates: &[(Gate, Vec<usize>)]) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for (g, qs) in gates {
        qc.push_gate(*g, qs);
    }
    qc
}

/// The headline bench: the 20q random circuit through PR 2's per-gate
/// kernel dispatch vs a fused cached plan (and vs cold compile-and-run,
/// which bounds the amortized compile cost).
fn bench_plan_fusion_20q(c: &mut Criterion) {
    let n = 20;
    let gates = random_gates(n, 40, 99);
    let qc = circuit_from(n, &gates);
    let plan = CircuitPlan::compile(&qc);
    println!(
        "bench: plan_fusion_20q fused {} source gates into {} planned ops",
        plan.source_gate_ops(),
        plan.fused_unitaries()
    );
    let mut group = c.benchmark_group("plan_fusion_20q");
    let mut sv = StateVector::zero(n);
    group.bench_function("per_gate_dispatch", |b| {
        b.iter(|| {
            sv.reinit();
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_warm", |b| {
        b.iter(|| {
            sv.reinit();
            plan.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_cold_compile", |b| {
        b.iter(|| {
            let cold = CircuitPlan::compile(&qc);
            sv.reinit();
            cold.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.finish();
}

/// A deterministic rotation-brickwork circuit: `layers` rounds of per-qubit
/// RX·RZ rotations followed by alternating nearest-neighbour CX bricks —
/// the deep-circuit shape whose qubit triples fuse into `Dense3`
/// superblocks.
fn brickwork(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = Circuit::new(n, n);
    for layer in 0..layers {
        for q in 0..n {
            qc.rx(rng.gen_range(-3.0..3.0), q)
                .rz(rng.gen_range(-3.0..3.0), q);
        }
        for q in ((layer % 2)..n - 1).step_by(2) {
            qc.cx(q, q + 1);
        }
    }
    qc
}

/// The deep-circuit rows CI gates on: 20q depth-100 brickwork through
/// per-gate dispatch vs the fused (Dense3-forming) warm plan. The
/// `fused_plan_warm`/`per_gate_dispatch` ratio is the superblock win the
/// bench-smoke job asserts at ≥1.3x.
fn bench_plan_deep_20q(c: &mut Criterion) {
    let n = 20;
    let qc = brickwork(n, 100, 11);
    let plan = CircuitPlan::compile(&qc);
    println!(
        "bench: plan_deep_20q fused {} source gates into {} planned ops ({} declined)",
        plan.source_gate_ops(),
        plan.fused_unitaries(),
        plan.fusion_declined()
    );
    let gates: Vec<(Gate, Vec<usize>)> = qc
        .ops()
        .iter()
        .filter_map(|op| match op {
            qcir::circuit::Op::Gate { gate, qubits } => Some((*gate, qubits.clone())),
            _ => None,
        })
        .collect();
    let mut group = c.benchmark_group("plan_deep_20q");
    let mut sv = StateVector::zero(n);
    group.bench_function("per_gate_dispatch", |b| {
        b.iter(|| {
            sv.reinit();
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_warm", |b| {
        b.iter(|| {
            sv.reinit();
            plan.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.finish();
}

/// Diagonal-heavy circuit: long runs of phase gates the cost-model fuser
/// declines to densify, so the fused plan keeps the cheap `Diag1`/`Diag2`
/// sweeps instead of paying dense 4x4/8x8 blocks.
fn bench_plan_diag_heavy_18q(c: &mut Criterion) {
    let n = 18;
    let mut rng = StdRng::seed_from_u64(23);
    let mut qc = Circuit::new(n, n);
    for _ in 0..400 {
        let q = rng.gen_range(0..n);
        let p = (q + rng.gen_range(1..n)) % n;
        match rng.gen_range(0..5) {
            0 => qc.t(q),
            1 => qc.rz(rng.gen_range(-3.0..3.0), q),
            2 => qc.s(q),
            3 => qc.cz(q, p),
            _ => qc.push_gate(Gate::CP(rng.gen_range(-3.0..3.0)), &[q, p]),
        };
    }
    let plan = CircuitPlan::compile(&qc);
    println!(
        "bench: plan_diag_heavy_18q fused {} source gates into {} planned ops ({} declined)",
        plan.source_gate_ops(),
        plan.fused_unitaries(),
        plan.fusion_declined()
    );
    let gates: Vec<(Gate, Vec<usize>)> = qc
        .ops()
        .iter()
        .filter_map(|op| match op {
            qcir::circuit::Op::Gate { gate, qubits } => Some((*gate, qubits.clone())),
            _ => None,
        })
        .collect();
    let mut group = c.benchmark_group("plan_diag_heavy_18q");
    let mut sv = StateVector::zero(n);
    group.bench_function("per_gate_dispatch", |b| {
        b.iter(|| {
            sv.reinit();
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_warm", |b| {
        b.iter(|| {
            sv.reinit();
            plan.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.finish();
}

/// Noisy trajectories: per-gate dispatch with inline noise sampling (the
/// path PR 10 replaced) vs replaying the precompiled `NoisyPlan` segments.
/// Both arms consume identical RNG streams and produce identical outcomes.
fn bench_noisy_replay_16q(c: &mut Criterion) {
    let n = 16;
    let mut qc = brickwork(n, 12, 31);
    qc.measure_all();
    let mut noise = NoiseModel::uniform_depolarizing(0.002);
    noise.readout_error = 0.01;
    let plan = NoisyPlan::compile(&qc, &noise);
    let gates: Vec<(Gate, Vec<usize>)> = qc
        .ops()
        .iter()
        .filter_map(|op| match op {
            qcir::circuit::Op::Gate { gate, qubits } => Some((*gate, qubits.clone())),
            _ => None,
        })
        .collect();
    let measures: Vec<(usize, usize)> = qc
        .ops()
        .iter()
        .filter_map(|op| match op {
            qcir::circuit::Op::Measure { qubit, clbit } => Some((*qubit, *clbit)),
            _ => None,
        })
        .collect();
    const SHOTS: usize = 24;
    let mut group = c.benchmark_group("noisy_replay_16q");
    let mut sv = StateVector::zero(n);
    let mut word = OutcomeWord::zero();
    group.bench_function("per_gate_dispatch", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..SHOTS {
                sv.reinit();
                word.clear();
                for (g, qs) in &gates {
                    sv.apply_gate(*g, qs);
                    for (q, pauli) in noise.sample_gate_errors(g, qs, &mut rng) {
                        pauli.apply(&mut sv, q);
                    }
                }
                for &(qubit, clbit) in &measures {
                    let raw = sv.measure(qubit, &mut rng);
                    word.set_bit(clbit, noise.sample_readout(raw, &mut rng));
                    acc += word.bit(clbit) as usize;
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("segment_replay", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..SHOTS {
                plan.run_trajectory(&mut sv, &noise, &mut rng, &mut word);
                acc += word.bit(0) as usize;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// Executor-level view: repeated `try_run` of one circuit hits the shared
/// plan cache (the grader's access pattern — fresh executor per call).
fn bench_executor_plan_cache(c: &mut Criterion) {
    let n = 16;
    let gates = random_gates(n, 48, 7);
    let mut qc = circuit_from(n, &gates);
    qc.measure_all();
    // Prime the shared cache once so the loop below is all warm hits.
    let _ = Executor::ideal().try_run(&qc, 1, 0).unwrap();
    c.bench_function("executor_cached_plan_16q_256_shots", |b| {
        b.iter(|| std::hint::black_box(Executor::ideal().try_run(&qc, 256, 1).unwrap()))
    });
    c.bench_function("plan_compile_only_16q", |b| {
        b.iter(|| std::hint::black_box(CircuitPlan::compile(&qc).fused_unitaries()))
    });
}

criterion_group!(
    benches,
    bench_plan_fusion_20q,
    bench_plan_deep_20q,
    bench_plan_diag_heavy_18q,
    bench_noisy_replay_16q,
    bench_executor_plan_cache
);
criterion_main!(benches);
