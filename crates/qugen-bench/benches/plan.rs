//! Criterion benches: the compile step — fused cached plans vs the
//! per-gate kernel dispatch they replace.
//!
//! The headline `plan_fusion_20q` group runs the same 20-qubit random
//! circuit family as `sim_kernels`' `random_circuit_20q` through both
//! execution paths; the ratio between `per_gate_dispatch` and
//! `fused_plan_warm` is the fusion win CI tracks (acceptance floor: 1.5x).

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::Executor;
use qsim::plan::CircuitPlan;
use qsim::state::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The same deterministic random gate mix as `sim_kernels::random_gates`
/// (diagonal, permutation, butterfly and controlled tiers).
fn random_gates(n: usize, count: usize, seed: u64) -> Vec<(Gate, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates = Vec::with_capacity(count);
    for _ in 0..count {
        let q = rng.gen_range(0..n);
        let p = (q + rng.gen_range(1..n)) % n;
        let gate: (Gate, Vec<usize>) = match rng.gen_range(0..8) {
            0 => (Gate::H, vec![q]),
            1 => (Gate::T, vec![q]),
            2 => (Gate::RZ(rng.gen_range(-3.0..3.0)), vec![q]),
            3 => (Gate::U(0.3, 1.1, -0.4), vec![q]),
            4 => (Gate::X, vec![q]),
            5 => (Gate::CX, vec![q, p]),
            6 => (Gate::CZ, vec![q, p]),
            _ => (Gate::SWAP, vec![q, p]),
        };
        gates.push(gate);
    }
    gates
}

fn circuit_from(n: usize, gates: &[(Gate, Vec<usize>)]) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for (g, qs) in gates {
        qc.push_gate(*g, qs);
    }
    qc
}

/// The headline bench: the 20q random circuit through PR 2's per-gate
/// kernel dispatch vs a fused cached plan (and vs cold compile-and-run,
/// which bounds the amortized compile cost).
fn bench_plan_fusion_20q(c: &mut Criterion) {
    let n = 20;
    let gates = random_gates(n, 40, 99);
    let qc = circuit_from(n, &gates);
    let plan = CircuitPlan::compile(&qc);
    println!(
        "bench: plan_fusion_20q fused {} source gates into {} planned ops",
        plan.source_gate_ops(),
        plan.fused_unitaries()
    );
    let mut group = c.benchmark_group("plan_fusion_20q");
    let mut sv = StateVector::zero(n);
    group.bench_function("per_gate_dispatch", |b| {
        b.iter(|| {
            sv.reinit();
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_warm", |b| {
        b.iter(|| {
            sv.reinit();
            plan.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.bench_function("fused_plan_cold_compile", |b| {
        b.iter(|| {
            let cold = CircuitPlan::compile(&qc);
            sv.reinit();
            cold.apply_unitary(&mut sv);
            std::hint::black_box(sv.amplitudes().len())
        })
    });
    group.finish();
}

/// Executor-level view: repeated `try_run` of one circuit hits the shared
/// plan cache (the grader's access pattern — fresh executor per call).
fn bench_executor_plan_cache(c: &mut Criterion) {
    let n = 16;
    let gates = random_gates(n, 48, 7);
    let mut qc = circuit_from(n, &gates);
    qc.measure_all();
    // Prime the shared cache once so the loop below is all warm hits.
    let _ = Executor::ideal().try_run(&qc, 1, 0).unwrap();
    c.bench_function("executor_cached_plan_16q_256_shots", |b| {
        b.iter(|| std::hint::black_box(Executor::ideal().try_run(&qc, 256, 1).unwrap()))
    });
    c.bench_function("plan_compile_only_16q", |b| {
        b.iter(|| std::hint::black_box(CircuitPlan::compile(&qc).fused_unitaries()))
    });
}

criterion_group!(benches, bench_plan_fusion_20q, bench_executor_plan_cache);
criterion_main!(benches);
