//! Criterion microbenches: the unified backend layer.
//!
//! * `clifford_surface_memory` — the same surface-code syndrome-extraction
//!   circuit through the tableau backend vs. the dense backend at the
//!   largest distance both can run (d = 3, 17 qubits), plus tableau-only
//!   distance 5 (49 qubits, impossible densely) and distance 7
//!   (`tableau_d7_wide_counts`: 97 qubits, 97-bit multi-word outcome
//!   registers — the wide-counts row CI watches so the spill
//!   representation stays cheap relative to the ≤ 64-bit rows). The
//!   tableau/dense ratio on the d = 3 rows is the speedup CI tracks.
//! * `parallel_exec` — a 10k-shot noisy GHZ workload at 1 vs. 8 worker
//!   threads (bit-identical results; the ratio is the wall-clock speedup).

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::circuit::Circuit;
use qec::surface::SurfaceCode;
use qsim::backend::BackendChoice;
use qsim::exec::ExecutorConfig;
use qsim::noise::NoiseModel;

const MEMORY_SHOTS: u64 = 16;

fn bench_clifford_surface_memory(c: &mut Criterion) {
    let noise = NoiseModel::uniform_depolarizing(0.001);
    let d3 = SurfaceCode::new(3).memory_circuit(2).circuit;
    let d5 = SurfaceCode::new(5).memory_circuit(2).circuit;
    let mut group = c.benchmark_group("clifford_surface_memory");
    group.bench_function("tableau_d3", |b| {
        let exec = ExecutorConfig::new()
            .noise(noise.clone())
            .backend(BackendChoice::Tableau)
            .build();
        b.iter(|| std::hint::black_box(exec.try_run(&d3, MEMORY_SHOTS, 1).unwrap()))
    });
    group.bench_function("dense_d3", |b| {
        let exec = ExecutorConfig::new()
            .noise(noise.clone())
            .backend(BackendChoice::Dense)
            .build();
        b.iter(|| std::hint::black_box(exec.try_run(&d3, MEMORY_SHOTS, 1).unwrap()))
    });
    group.bench_function("tableau_d5", |b| {
        let exec = ExecutorConfig::new()
            .noise(noise.clone())
            .backend(BackendChoice::Tableau)
            .build();
        b.iter(|| std::hint::black_box(exec.try_run(&d5, MEMORY_SHOTS, 1).unwrap()))
    });
    // Wide-counts row: distance-7 memory records 97-bit outcome words, so
    // every shot exercises the multi-word spill path end to end (tableau
    // write → counts table → chunk merge).
    let d7 = SurfaceCode::new(7).memory_circuit(2).circuit;
    assert!(d7.num_clbits() > 64, "d7 must cross the one-word boundary");
    group.bench_function("tableau_d7_wide_counts", |b| {
        let exec = ExecutorConfig::new()
            .noise(noise.clone())
            .backend(BackendChoice::Tableau)
            .build();
        b.iter(|| std::hint::black_box(exec.try_run(&d7, MEMORY_SHOTS, 1).unwrap()))
    });
    group.finish();
}

fn bench_parallel_exec(c: &mut Criterion) {
    let mut ghz = Circuit::new(10, 10);
    ghz.h(0);
    for q in 0..9 {
        ghz.cx(q, q + 1);
    }
    ghz.measure_all();
    let noise = qsim::profiles::noisy_nisq();
    // Scriptable from CI: QUGEN_BACKEND=auto|dense|tableau|mps[:χ]. Use
    // the strict reader here — a misspelled CI matrix entry should fail
    // the job, not silently benchmark the wrong backend.
    let choice = qsim::backend::try_choice_from_env().expect("QUGEN_BACKEND");
    let mut group = c.benchmark_group("parallel_exec");
    for &threads in &[1usize, 8] {
        let exec = ExecutorConfig::new()
            .noise(noise.clone())
            .backend(choice)
            .threads(threads)
            .build();
        let name = format!("ghz10_noisy_10k_shots/backend={choice}/threads={threads}");
        group.bench_function(&name, |b| {
            b.iter(|| std::hint::black_box(exec.try_run(&ghz, 10_000, 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clifford_surface_memory, bench_parallel_exec);
criterion_main!(benches);
