//! Criterion benches: the serve layer's overhead on top of raw execution.
//!
//! * `serve_request_path` — the same Bell-pair job measured three ways:
//!   raw `Executor::try_run_job` (the floor), a cold submit+wait through
//!   [`Server::handle_line`] (adds parse/check/resolve + queue + table
//!   bookkeeping), and a warm submit that hits the result cache (no
//!   execution at all — the payoff row: it should beat even the raw
//!   floor once shots are nontrivial).
//! * `serve_codec` — encode/decode of a counts-bearing result line, the
//!   per-reply wire cost.

use criterion::{criterion_group, criterion_main, Criterion};
use qsim::exec::ExecutorConfig;
use qsim::job::JobSpec;
use qugen_serve::codec::Json;
use qugen_serve::server::{Server, ServerConfig};

const BELL: &str = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\n\
                    cx q[0], q[1];\nmeasure q -> c;\n";
const SHOTS: u64 = 4096;

fn submit_line(seed: u64) -> String {
    format!(
        "{{\"op\":\"submit\",\"source\":{},\"shots\":{SHOTS},\"seed\":{seed}}}",
        Json::Str(BELL.to_string()).encode()
    )
}

/// Submit one job and block until its counts come back; returns the
/// result line (so the whole request path stays on the measured path).
fn submit_and_wait(server: &Server, seed: u64) -> String {
    let reply = Json::parse(&server.handle_line(&submit_line(seed))).unwrap();
    let id = reply.get("job").unwrap().as_u64().unwrap();
    server.handle_line(&format!("{{\"op\":\"result\",\"job\":{id},\"wait\":true}}"))
}

fn bench_request_path(c: &mut Criterion) {
    let program = qcir::dsl::parse(BELL).unwrap();
    let circuit = qcir::check::lower(&program).unwrap();
    let exec = ExecutorConfig::new().build();
    let mut group = c.benchmark_group("serve_request_path");
    group.bench_function("raw_executor", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(
                exec.try_run_job(&JobSpec::new(circuit.clone(), SHOTS, seed))
                    .unwrap(),
            )
        })
    });
    group.bench_function("serve_cold_submit", |b| {
        let server = Server::new(ServerConfig {
            workers: 1,
            cache_capacity: 1, // every fresh seed evicts: always a miss
            ..ServerConfig::default()
        });
        let mut seed = 1_000_000u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(submit_and_wait(&server, seed))
        })
    });
    group.bench_function("serve_cache_hit", |b| {
        let server = Server::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // Prime the cache once; every measured iteration is a hit.
        let _ = submit_and_wait(&server, 7);
        b.iter(|| std::hint::black_box(submit_and_wait(&server, 7)))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let result_line = submit_and_wait(&server, 3);
    let mut group = c.benchmark_group("serve_codec");
    group.bench_function("decode_result_line", |b| {
        b.iter(|| std::hint::black_box(Json::parse(&result_line).unwrap()))
    });
    let parsed = Json::parse(&result_line).unwrap();
    group.bench_function("encode_result_line", |b| {
        b.iter(|| std::hint::black_box(parsed.encode()))
    });
    group.finish();
}

criterion_group!(benches, bench_request_path, bench_codec);
criterion_main!(benches);
