//! Criterion microbenches: QasmLite front-end throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use qlm::spec::TaskSpec;
use qlm::template::gold_source;

fn bench_parse_and_check(c: &mut Criterion) {
    let sources: Vec<String> = [
        TaskSpec::BellPair,
        TaskSpec::Grover { n: 3, marked: 5 },
        TaskSpec::Shor,
        TaskSpec::Annealing { n: 4 },
        TaskSpec::Qpe { t: 4, phi: 0.3125 },
    ]
    .iter()
    .map(gold_source)
    .collect();

    c.bench_function("parse_5_programs", |b| {
        b.iter(|| {
            for src in &sources {
                std::hint::black_box(qcir::dsl::parse(src).expect("parses"));
            }
        })
    });

    let programs: Vec<_> = sources
        .iter()
        .map(|s| qcir::dsl::parse(s).unwrap())
        .collect();
    c.bench_function("check_5_programs", |b| {
        b.iter(|| {
            for p in &programs {
                std::hint::black_box(qcir::check::lower(p).expect("checks"));
            }
        })
    });

    c.bench_function("round_trip_shor", |b| {
        let shor = gold_source(&TaskSpec::Shor);
        b.iter(|| {
            let p = qcir::dsl::parse(&shor).expect("parses");
            let circuit = qcir::check::lower(&p).expect("checks");
            std::hint::black_box(qcir::fmt::to_qasmlite(&circuit))
        })
    });
}

fn bench_grading(c: &mut Criterion) {
    let spec = TaskSpec::Grover { n: 3, marked: 5 };
    let src = gold_source(&spec);
    c.bench_function("grade_grover3", |b| {
        b.iter(|| std::hint::black_box(qeval::grade::grade_source(&src, &spec)))
    });
}

criterion_group!(benches, bench_parse_and_check, bench_grading);
criterion_main!(benches);
