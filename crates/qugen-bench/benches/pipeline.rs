//! Criterion microbenches: end-to-end pipeline cost.

use criterion::{criterion_group, criterion_main, Criterion};
use qagents::orchestrator::{Orchestrator, PipelineConfig};
use qeval::suite::test_suite;
use qlm::model::{CodeLlm, GenConfig};

fn bench_generation(c: &mut Criterion) {
    let llm = CodeLlm::new();
    let config = GenConfig::with_scot();
    let spec = qlm::spec::TaskSpec::Grover { n: 3, marked: 5 };
    let mut seed = 0u64;
    c.bench_function("llm_generate_grover", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(llm.generate(&spec, &config, seed))
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let orchestrator = Orchestrator::new(PipelineConfig::default());
    let task = test_suite().into_iter().next().expect("bell task");
    let mut seed = 0u64;
    c.bench_function("pipeline_bell_3_passes", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(orchestrator.run_task(&task, seed))
        })
    });
}

fn bench_qec_synthesis(c: &mut Criterion) {
    use qec::agent_iface::synthesize;
    use qec::topology::Topology;
    let device = Topology::grid(7, 7);
    c.bench_function("qec_decoder_synthesis_grid7", |b| {
        b.iter(|| std::hint::black_box(synthesize(&device, 0.02, 3, 1).expect("synthesis")))
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_pipeline,
    bench_qec_synthesis
);
criterion_main!(benches);
