//! Criterion microbenches: the MPS backend.
//!
//! * `mps_brickwork` — a 1D brickwork circuit (per-qubit RY rotations +
//!   nearest-neighbor CP entanglers, non-Clifford throughout) run at sizes
//!   the dense engine can still handle (the MPS-vs-dense crossover rows)
//!   and at 30–40 qubits where only the MPS engine can run at all. The
//!   `dense_refused_30q` row pins down that the dense backend returns
//!   `SimError::QubitCapExceeded` for the same ≥30-qubit circuit the MPS
//!   rows complete — the acceptance evidence in `BENCH_mps.json`.
//! * `mps_env_backend` — the same workload under the backend selected by
//!   the `QUGEN_BACKEND` environment variable (`auto|dense|tableau|`
//!   `mps[:χ]`), so CI can sweep engines without code edits.

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::circuit::Circuit;
use qsim::backend::{BackendChoice, SimError};
use qsim::exec::{derive_seed, ExecutorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHOTS: u64 = 32;
const DEPTH: usize = 4;
const CHI: usize = 32;

/// A 1D brickwork circuit: `depth` alternating layers of per-qubit RY
/// rotations and nearest-neighbor CP entanglers, fully measured. General
/// class (non-Clifford), interaction range 1 — the low-entanglement regime
/// the MPS backend targets.
fn brickwork(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, n as u64));
    let mut qc = Circuit::new(n, n);
    for layer in 0..depth {
        for q in 0..n {
            qc.ry(rng.gen_range(-1.5..1.5), q);
        }
        let start = layer % 2;
        for q in (start..n - 1).step_by(2) {
            qc.cp(rng.gen_range(-1.5..1.5), q, q + 1);
        }
    }
    qc.measure_all();
    qc
}

fn bench_mps_brickwork(c: &mut Criterion) {
    let mut group = c.benchmark_group("mps_brickwork");
    // Crossover rows: sizes both engines can run.
    for &n in &[16usize, 20] {
        let qc = brickwork(n, DEPTH, 7);
        let dense = ExecutorConfig::new().backend(BackendChoice::Dense).build();
        group.bench_function(&format!("dense_{n}q"), |b| {
            b.iter(|| std::hint::black_box(dense.try_run(&qc, SHOTS, 1).unwrap()))
        });
        let mps = ExecutorConfig::new()
            .backend(BackendChoice::Mps { max_bond: CHI })
            .build();
        group.bench_function(&format!("mps_{n}q_chi{CHI}"), |b| {
            b.iter(|| std::hint::black_box(mps.try_run(&qc, SHOTS, 1).unwrap()))
        });
    }
    // Past the dense cap: MPS only.
    for &n in &[30usize, 36, 40] {
        let qc = brickwork(n, DEPTH, 7);
        let mps = ExecutorConfig::new()
            .backend(BackendChoice::Mps { max_bond: CHI })
            .build();
        group.bench_function(&format!("mps_{n}q_chi{CHI}"), |b| {
            b.iter(|| std::hint::black_box(mps.try_run(&qc, SHOTS, 1).unwrap()))
        });
    }
    // The same 30-qubit circuit is refused outright by the dense engine.
    let qc30 = brickwork(30, DEPTH, 7);
    let dense = ExecutorConfig::new().backend(BackendChoice::Dense).build();
    group.bench_function("dense_refused_30q", |b| {
        b.iter(|| {
            let err = dense.try_run(&qc30, SHOTS, 1).unwrap_err();
            assert!(matches!(err, SimError::QubitCapExceeded { .. }));
            std::hint::black_box(err)
        })
    });
    group.finish();
}

fn bench_env_selected_backend(c: &mut Criterion) {
    // QUGEN_BACKEND picks the engine (default auto, which routes this
    // short-range general circuit densely at 20 qubits). Engines that
    // cannot run the workload at all (tableau: non-Clifford) are skipped
    // rather than failing the sweep.
    // Strict reader: a misspelled CI matrix entry should fail the job,
    // not silently benchmark the wrong backend.
    let choice = qsim::backend::try_choice_from_env().expect("QUGEN_BACKEND");
    let qc = brickwork(20, DEPTH, 7);
    let exec = ExecutorConfig::new().backend(choice).build();
    if let Err(e) = exec.try_run(&qc, 1, 0) {
        println!("bench: mps_env_backend/brickwork_20q/{choice} skipped ({e})");
        return;
    }
    c.bench_function(&format!("mps_env_backend/brickwork_20q/{choice}"), |b| {
        b.iter(|| std::hint::black_box(exec.try_run(&qc, SHOTS, 1).unwrap()))
    });
}

criterion_group!(benches, bench_mps_brickwork, bench_env_selected_backend);
criterion_main!(benches);
