//! Criterion microbenches: decoder throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qec::decoder::{
    Decoder, DecodingGraph, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use qec::surface::SurfaceCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_syndromes(code: &SurfaceCode, p: f64, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let graph = DecodingGraph::code_capacity_x(code);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let errors: Vec<bool> = (0..code.num_data()).map(|_| rng.gen_bool(p)).collect();
            graph.syndrome_of(&errors)
        })
        .collect()
}

fn bench_decoders_d3(c: &mut Criterion) {
    let code = SurfaceCode::new(3);
    let syndromes = random_syndromes(&code, 0.05, 64, 1);
    let graph = DecodingGraph::code_capacity_x(&code);
    let lookup = LookupDecoder::new(&code);
    let greedy = GreedyMatchingDecoder::new(graph.clone());
    let uf = UnionFindDecoder::new(graph);

    let mut group = c.benchmark_group("decode_d3_batch64");
    group.bench_function("lookup", |b| {
        b.iter(|| {
            for s in &syndromes {
                std::hint::black_box(lookup.decode(s));
            }
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            for s in &syndromes {
                std::hint::black_box(greedy.decode(s));
            }
        })
    });
    group.bench_function("union-find", |b| {
        b.iter(|| {
            for s in &syndromes {
                std::hint::black_box(uf.decode(s));
            }
        })
    });
    group.finish();
}

fn bench_decoders_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_scaling");
    for &d in &[3usize, 5, 7] {
        let code = SurfaceCode::new(d);
        let syndromes = random_syndromes(&code, 0.03, 16, 2);
        let graph = DecodingGraph::code_capacity_x(&code);
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        let uf = UnionFindDecoder::new(graph);
        group.bench_with_input(BenchmarkId::new("greedy", d), &d, |b, _| {
            b.iter(|| {
                for s in &syndromes {
                    std::hint::black_box(greedy.decode(s));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("union-find", d), &d, |b, _| {
            b.iter(|| {
                for s in &syndromes {
                    std::hint::black_box(uf.decode(s));
                }
            })
        });
    }
    group.finish();
}

fn bench_spacetime(c: &mut Criterion) {
    let code = SurfaceCode::new(3);
    let graph = DecodingGraph::spacetime_x(&code, 6);
    let decoder = GreedyMatchingDecoder::new(graph);
    let mut rng = StdRng::seed_from_u64(3);
    let events: Vec<Vec<usize>> = (0..16)
        .map(|_| (0..24usize).filter(|_| rng.gen_bool(0.15)).collect())
        .collect();
    c.bench_function("spacetime_d3_r6_batch16", |b| {
        b.iter(|| {
            for e in &events {
                std::hint::black_box(decoder.decode(e));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_decoders_d3,
    bench_decoders_scaling,
    bench_spacetime
);
criterion_main!(benches);
