//! Criterion microbenches: simulator kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::Executor;
use qsim::stabilizer::StabilizerSim;
use qsim::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gates");
    for &n in &[8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("h_all", n), &n, |b, &n| {
            b.iter(|| {
                let mut sv = StateVector::zero(n);
                for q in 0..n {
                    sv.apply_gate(Gate::H, &[q]);
                }
                std::hint::black_box(sv.norm_sqr())
            })
        });
        group.bench_with_input(BenchmarkId::new("cx_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut sv = StateVector::zero(n);
                sv.apply_gate(Gate::H, &[0]);
                for q in 0..n - 1 {
                    sv.apply_gate(Gate::CX, &[q, q + 1]);
                }
                std::hint::black_box(sv.norm_sqr())
            })
        });
    }
    group.finish();
}

fn bench_shot_sampling(c: &mut Criterion) {
    let mut qc = Circuit::new(10, 10);
    qc.h(0);
    for q in 0..9 {
        qc.cx(q, q + 1);
    }
    qc.measure_all();
    c.bench_function("ghz10_4096_shots", |b| {
        b.iter(|| std::hint::black_box(Executor::ideal().run(&qc, 4096, 1)))
    });
    let noisy = Executor::with_noise(qsim::profiles::ibm_brisbane_like());
    c.bench_function("ghz10_256_noisy_trajectories", |b| {
        b.iter(|| std::hint::black_box(noisy.run(&qc, 256, 1)))
    });
}

fn bench_stabilizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer");
    for &n in &[49usize, 97, 169] {
        group.bench_with_input(BenchmarkId::new("ghz_and_measure", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut sim = StabilizerSim::new(n);
                sim.h(0);
                for q in 0..n - 1 {
                    sim.cx(q, q + 1);
                }
                std::hint::black_box(sim.measure(n - 1, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_application,
    bench_shot_sampling,
    bench_stabilizer
);
criterion_main!(benches);
