//! Criterion microbenches: simulator kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::Executor;
use qsim::stabilizer::StabilizerSim;
use qsim::state::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random circuit mixing diagonal, permutation, butterfly
/// and controlled gates (the mix the kernel dispatch tiers were built for).
fn random_gates(n: usize, count: usize, seed: u64) -> Vec<(Gate, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates = Vec::with_capacity(count);
    for _ in 0..count {
        let q = rng.gen_range(0..n);
        let p = (q + rng.gen_range(1..n)) % n;
        let gate: (Gate, Vec<usize>) = match rng.gen_range(0..8) {
            0 => (Gate::H, vec![q]),
            1 => (Gate::T, vec![q]),
            2 => (Gate::RZ(rng.gen_range(-3.0..3.0)), vec![q]),
            3 => (Gate::U(0.3, 1.1, -0.4), vec![q]),
            4 => (Gate::X, vec![q]),
            5 => (Gate::CX, vec![q, p]),
            6 => (Gate::CZ, vec![q, p]),
            _ => (Gate::SWAP, vec![q, p]),
        };
        gates.push(gate);
    }
    gates
}

/// The headline bench: a 20-qubit random circuit through the specialized
/// kernel dispatch vs. the full-scan dense reference path. The ratio between
/// the two rows is the speedup CI tracks.
fn bench_random_circuit_20q(c: &mut Criterion) {
    let n = 20;
    let gates = random_gates(n, 40, 99);
    let mut group = c.benchmark_group("random_circuit_20q");
    group.bench_function("kernels", |b| {
        b.iter(|| {
            let mut sv = StateVector::zero(n);
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            std::hint::black_box(sv.norm_sqr())
        })
    });
    group.bench_function("dense_reference", |b| {
        b.iter(|| {
            let mut sv = StateVector::zero(n);
            for (g, qs) in &gates {
                sv.apply_matrix_reference(&g.matrix(), qs);
            }
            std::hint::black_box(sv.norm_sqr())
        })
    });
    group.finish();
}

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gates");
    for &n in &[8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("h_all", n), &n, |b, &n| {
            b.iter(|| {
                let mut sv = StateVector::zero(n);
                for q in 0..n {
                    sv.apply_gate(Gate::H, &[q]);
                }
                std::hint::black_box(sv.norm_sqr())
            })
        });
        group.bench_with_input(BenchmarkId::new("cx_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut sv = StateVector::zero(n);
                sv.apply_gate(Gate::H, &[0]);
                for q in 0..n - 1 {
                    sv.apply_gate(Gate::CX, &[q, q + 1]);
                }
                std::hint::black_box(sv.norm_sqr())
            })
        });
    }
    group.finish();
}

fn bench_shot_sampling(c: &mut Criterion) {
    let mut qc = Circuit::new(10, 10);
    qc.h(0);
    for q in 0..9 {
        qc.cx(q, q + 1);
    }
    qc.measure_all();
    c.bench_function("ghz10_4096_shots", |b| {
        b.iter(|| std::hint::black_box(Executor::ideal().try_run(&qc, 4096, 1).unwrap()))
    });
    let noisy = Executor::with_noise(qsim::profiles::ibm_brisbane_like());
    c.bench_function("ghz10_256_noisy_trajectories", |b| {
        b.iter(|| std::hint::black_box(noisy.try_run(&qc, 256, 1).unwrap()))
    });
}

fn bench_stabilizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer");
    for &n in &[49usize, 97, 169] {
        group.bench_with_input(BenchmarkId::new("ghz_and_measure", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut sim = StabilizerSim::new(n);
                sim.h(0);
                for q in 0..n - 1 {
                    sim.cx(q, q + 1);
                }
                std::hint::black_box(sim.measure(n - 1, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_random_circuit_20q,
    bench_gate_application,
    bench_shot_sampling,
    bench_stabilizer
);
criterion_main!(benches);
