//! **Figure 2** — "Evolution of qubits during QEC generation": physical
//! X errors over time on the surface-code lattice (a), measurement errors
//! on the syndrome readout (b), and the correction set returned by the
//! decoder (c), for a circuit preparing |1>.
//!
//! The lattice renders use `X` for injected physical errors, `M` for
//! stabilizers whose readout flipped, and `C` for the decoder's
//! corrections; the run ends with the residual-error verdict.

use qec::decoder::{Decoder, DecodingGraph, GreedyMatchingDecoder};
use qec::surface::SurfaceCode;
use qec::syndrome;
use qugen_bench::util::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DISTANCE: usize = 3;
const ROUNDS: usize = 3;
const P_DATA: f64 = 0.04;
const P_MEAS: f64 = 0.06;
const SEED: u64 = 0xF162;

fn main() {
    let code = SurfaceCode::new(DISTANCE);
    banner("Figure 2: qubit evolution during QEC (|1> memory)");
    println!("{code}, {ROUNDS} noisy rounds, p_data={P_DATA}, p_meas={P_MEAS}\n");

    // Find a seed whose history contains both error species (the paper's
    // figure shows data errors *and* a measurement error) and where the
    // decoder succeeds — the paper's figure depicts a corrected instance.
    let graph = DecodingGraph::spacetime_x(&code, ROUNDS + 1);
    let decoder = GreedyMatchingDecoder::new(graph.clone());
    let mut rng = StdRng::seed_from_u64(SEED);
    let history = loop {
        let h = syndrome::extract(&code, P_DATA, P_MEAS, ROUNDS, &mut rng);
        if h.num_data_errors() >= 1 && h.num_measurement_errors() >= 1 {
            let correction = decoder.decode(&h.detection_events());
            let mut residual = h.final_errors.clone();
            correction.apply(&mut residual);
            if !code.is_logical_x_flip(&residual) {
                break h;
            }
        }
    };

    banner("(a) physical errors over time");
    for (t, round) in history.rounds.iter().enumerate().take(ROUNDS) {
        let mut marks = vec![None; code.num_data()];
        for &q in &round.injected {
            marks[q] = Some('X');
        }
        println!(
            "round {t}: injected {:?}, true syndrome {}",
            round.injected,
            render_syndrome(&round.true_syndrome)
        );
        print!("{}", code.render(&marks));
        println!();
    }

    banner("(b) measurement errors on the syndrome readout");
    for (t, round) in history.rounds.iter().enumerate().take(ROUNDS) {
        println!(
            "round {t}: measured {} (flips on stabilizers {:?})",
            render_syndrome(&round.measured_syndrome),
            round.measurement_flips
        );
    }
    println!(
        "final (perfect) round: {}",
        render_syndrome(&history.rounds.last().unwrap().true_syndrome)
    );

    banner("(c) decoder output");
    let events = history.detection_events();
    println!(
        "detection events (stab, round): {:?}",
        events
            .iter()
            .map(|&e| (
                e % code.z_stabilizers().len(),
                e / code.z_stabilizers().len()
            ))
            .collect::<Vec<_>>()
    );
    let correction = decoder.decode(&events);
    println!("corrections on data qubits: {:?}", correction.qubit_flips);
    let mut marks = vec![None; code.num_data()];
    for &q in &correction.qubit_flips {
        marks[q] = Some('C');
    }
    print!("{}", code.render(&marks));

    banner("verdict");
    let mut residual = history.final_errors.clone();
    correction.apply(&mut residual);
    let syndrome_clear = code.z_syndrome(&residual).iter().all(|&b| !b);
    let logical_flip = code.is_logical_x_flip(&residual);
    println!("residual syndrome clear: {syndrome_clear}");
    println!("logical flip after correction: {logical_flip}");
    println!(
        "[{}] decoder returned the state to the codespace",
        if syndrome_clear { "ok" } else { "MISMATCH" }
    );
    println!(
        "[{}] logical state preserved",
        if !logical_flip { "ok" } else { "MISMATCH" }
    );
}

fn render_syndrome(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}
