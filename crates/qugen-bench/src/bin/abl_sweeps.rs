//! **Ablations** the design calls out (DESIGN.md):
//!
//! 1. RAG corpus staleness — the paper blames out-of-date documentation
//!    for RAG's weak results; sweeping staleness quantifies how much a
//!    fresh corpus would have helped.
//! 2. CoT plan quality — the paper notes errors from "incorrect CoT
//!    prompt generation"; sweeping the flavour separates plan quality
//!    from plan presence.
//! 3. FIM-rate provenance — the paper reports 0.1 as the optimal
//!    fill-in-the-middle rate; the dataset-effectiveness model peaks there.

use qeval::report::evaluate;
use qeval::suite::test_suite;
use qlm::cot::CotKind;
use qlm::finetune::DatasetDescriptor;
use qlm::model::{CodeLlm, GenConfig};
use qlm::rag::CorpusConfig;
use qugen_bench::util::{banner, bar, pct};

const SAMPLES_PER_TASK: usize = 12;
const SEED: u64 = 0xAB1;

fn main() {
    let tasks = test_suite();

    banner("ablation 1: RAG corpus staleness");
    println!("| staleness | pass rate | syntactic |");
    println!("|---|---|---|");
    let mut fresh_rate = 0.0;
    let mut stale_rate = 0.0;
    for &staleness in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let llm = CodeLlm::with_corpus(&CorpusConfig {
            staleness,
            include_guides: true,
        });
        let outcome = evaluate(&llm, &tasks, &GenConfig::with_rag(), SAMPLES_PER_TASK, SEED);
        println!(
            "| {staleness} | {} | {} |",
            pct(outcome.pass_rate()),
            pct(outcome.syntactic_rate())
        );
        if staleness == 0.0 {
            fresh_rate = outcome.pass_rate();
        }
        if staleness == 1.0 {
            stale_rate = outcome.pass_rate();
        }
    }
    check(
        "a fresh corpus beats a fully stale one",
        fresh_rate > stale_rate,
    );

    banner("ablation 2: CoT flavour (plan quality)");
    let llm = CodeLlm::new();
    let mut rates = Vec::new();
    for (label, cot) in [
        ("none", None),
        ("zero-shot", Some(CotKind::ZeroShot)),
        ("manual", Some(CotKind::Manual)),
        ("structured", Some(CotKind::Structured)),
    ] {
        let mut config = GenConfig::fine_tuned();
        config.cot = cot;
        config.label = "cot-ablation";
        let outcome = evaluate(&llm, &tasks, &config, SAMPLES_PER_TASK, SEED + 1);
        println!(
            "{label:>12} {} {}",
            bar(outcome.pass_rate(), 40),
            pct(outcome.pass_rate())
        );
        rates.push(outcome.pass_rate());
    }
    check(
        "structured > manual > none",
        rates[3] > rates[2] && rates[2] > rates[0],
    );

    banner("ablation 3: FIM rate (dataset effectiveness model)");
    println!("| fim rate | effectiveness |");
    println!("|---|---|");
    let mut best = (0.0, 0.0);
    for &fim in &[0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut d = DatasetDescriptor::paper_default();
        d.fim_rate = fim;
        let e = d.effectiveness();
        println!("| {fim} | {e:.4} |");
        if e > best.1 {
            best = (fim, e);
        }
    }
    check(
        "effectiveness peaks at the paper's 0.1",
        (best.0 - 0.1).abs() < 1e-9,
    );

    banner("ablation 5: routing overhead per device topology (paper §IV-B)");
    {
        use qec::route::route;
        use qec::topology::Topology;
        // A star-entangled circuit: maximally punishing for sparse devices.
        let n = 8;
        let mut qc = qcir::circuit::Circuit::new(n, n);
        qc.h(0);
        for q in 1..n {
            qc.cx(0, q);
        }
        qc.measure_all();
        println!("| device | swaps | swaps per 2q gate |");
        println!("|---|---|---|");
        let mut hex_overhead = 0.0;
        let mut grid_overhead = 0.0;
        for device in [
            Topology::full(n),
            Topology::grid(3, 3),
            Topology::line(n),
            Topology::heavy_hex(2, 2),
        ] {
            let routed = route(&qc, &device).expect("routes");
            println!(
                "| {} | {} | {:.2} |",
                device.name(),
                routed.swap_count,
                routed.overhead(&qc)
            );
            if device.name().starts_with("heavy-hex") {
                hex_overhead = routed.overhead(&qc);
            }
            if device.name().starts_with("grid") {
                grid_overhead = routed.overhead(&qc);
            }
        }
        check(
            "heavy-hex pays at least the grid's routing cost",
            hex_overhead >= grid_overhead,
        );
    }

    banner("ablation 6: failure-class taxonomy per technique (§V-C/§V-E)");
    {
        use qeval::taxonomy::{measure, render_markdown as render_taxonomy};
        let rows: Vec<_> = [
            GenConfig::base(),
            GenConfig::fine_tuned(),
            GenConfig::with_rag(),
            GenConfig::with_scot(),
        ]
        .iter()
        .map(|c| measure(&llm, &tasks, c, 8, SEED + 9))
        .collect();
        print!("{}", render_taxonomy(&rows));
        let drift = |t: &qeval::taxonomy::Taxonomy| {
            t.fraction(qeval::taxonomy::FailureClass::ImportVersion)
                + t.fraction(qeval::taxonomy::FailureClass::Api)
        };
        check(
            "RAG shrinks the drift classes",
            drift(&rows[2]) < drift(&rows[1]),
        );
        check(
            "SCoT shrinks the semantic class",
            rows[3].fraction(qeval::taxonomy::FailureClass::Semantic)
                < rows[1].fraction(qeval::taxonomy::FailureClass::Semantic),
        );
    }

    banner("ablation 4: dataset size");
    println!("| upsampled tokens | effectiveness |");
    println!("|---|---|");
    for &tokens in &[100_000u64, 1_000_000, 9_000_000, 100_000_000] {
        let mut d = DatasetDescriptor::paper_default();
        d.upsampled_tokens = tokens;
        println!("| {tokens} | {:.4} |", d.effectiveness());
    }
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
