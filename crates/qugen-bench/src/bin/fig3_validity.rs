//! **Figure 3** — "The percentage of results that were semantically and
//! syntactically valid for each technique."
//!
//! Sweeps the technique configurations over the custom 34-task suite
//! (47/24/29 basic/intermediate/advanced), grading every sample both
//! syntactically (parse + versioned-API check) and semantically (simulated
//! behaviour vs reference). Also includes the multi-pass (3-pass) row the
//! figure reports.
//!
//! Paper shape to reproduce: base < fine-tuned < +RAG (small delta)
//! << +CoT < +SCoT, with multi-pass landing a few points above fine-tuned.

use qagents::codegen::CodeGenAgent;
use qagents::multipass::run_multipass;
use qagents::semantic::SemanticAnalyzerAgent;
use qeval::report::{evaluate, render_csv, render_markdown, EvalOutcome};
use qeval::suite::test_suite;
use qlm::model::{CodeLlm, GenConfig};
use qugen_bench::util::{banner, bar, pct};

const SAMPLES_PER_TASK: usize = 24;
const SEED: u64 = 0xF163;

fn main() {
    let llm = CodeLlm::new();
    let tasks = test_suite();
    banner("Figure 3: validity per technique (custom suite)");
    println!(
        "{} tasks x {} samples per technique, pass@1\n",
        tasks.len(),
        SAMPLES_PER_TASK
    );

    let configs = [
        GenConfig::base(),
        GenConfig::fine_tuned(),
        GenConfig::with_rag(),
        GenConfig::with_cot(),
        GenConfig::with_scot(),
    ];
    let mut rows: Vec<EvalOutcome> = configs
        .iter()
        .map(|config| evaluate(&llm, &tasks, config, SAMPLES_PER_TASK, SEED))
        .collect();

    // Multi-pass row: fine-tuned model with a 3-pass repair budget.
    let codegen = CodeGenAgent::new(llm.clone(), GenConfig::fine_tuned());
    let analyzer = SemanticAnalyzerAgent::new();
    let mut passed = 0usize;
    let mut syntactic = 0usize;
    let mut per_task = Vec::new();
    let mut per_difficulty: std::collections::BTreeMap<_, (usize, usize)> = Default::default();
    for (t_idx, task) in tasks.iter().enumerate() {
        let mut c = 0usize;
        for s in 0..SAMPLES_PER_TASK {
            let seed = SEED
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((t_idx * 1000 + s) as u64);
            let result = run_multipass(&codegen, &analyzer, &task.spec, 3, seed);
            let entry = per_difficulty.entry(task.difficulty()).or_insert((0, 0));
            entry.1 += 1;
            if result.passed() {
                passed += 1;
                c += 1;
                entry.0 += 1;
            }
            if result.last().analysis.detail.syntactic_ok {
                syntactic += 1;
            }
        }
        per_task.push((SAMPLES_PER_TASK, c));
    }
    let total = tasks.len() * SAMPLES_PER_TASK;
    rows.push(EvalOutcome {
        label: "fine-tuned+multipass(3)".to_string(),
        samples: total,
        syntactic_ok: syntactic,
        passed,
        per_difficulty,
        per_task,
    });

    println!("{}", render_markdown(&rows));
    banner("bar view (pass rate)");
    for r in &rows {
        println!(
            "{:>26} {} {}",
            r.label,
            bar(r.pass_rate(), 40),
            pct(r.pass_rate())
        );
    }
    banner("csv");
    print!("{}", render_csv(&rows));

    // Paper-shape assertions (printed, not panicking, so the bench always
    // produces its artifact).
    banner("shape checks vs paper");
    let pass: Vec<f64> = rows.iter().map(|r| r.pass_rate()).collect();
    check("base < fine-tuned", pass[0] < pass[1]);
    check("fine-tuned < +rag", pass[1] < pass[2]);
    check("rag delta small (< 8 points)", (pass[2] - pass[1]) < 0.08);
    check("+rag < +cot", pass[2] < pass[3]);
    check("+cot < +scot", pass[3] < pass[4]);
    check(
        "cot gain >> rag gain",
        (pass[3] - pass[1]) > 2.0 * (pass[2] - pass[1]),
    );
    check("multipass above fine-tuned", pass[5] > pass[1]);
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
