//! **§V-D** — effect of multi-pass inference: accuracy as a function of
//! the pass budget.
//!
//! Paper: the fine-tuned model improves from 28% to 34% with triple
//! passes, after which "additional inference passes ... yielded limited
//! benefit" because the residual errors are import/deprecated-API misuse
//! the model cannot fix from the trace alone. The per-pass marginal gain
//! and the composition of surviving error classes are both reported here.

use qagents::codegen::CodeGenAgent;
use qagents::multipass::run_multipass;
use qagents::semantic::SemanticAnalyzerAgent;
use qeval::suite::test_suite;
use qlm::corrupt::Channel;
use qlm::model::{CodeLlm, GenConfig};
use qugen_bench::util::{banner, bar, pct};
use std::collections::BTreeMap;

const SAMPLES_PER_TASK: usize = 16;
const MAX_PASSES: usize = 6;
const SEED: u64 = 0x5D_5D;

fn main() {
    let llm = CodeLlm::new();
    let codegen = CodeGenAgent::new(llm, GenConfig::fine_tuned());
    let analyzer = SemanticAnalyzerAgent::new();
    let tasks = test_suite();
    banner("Section V-D: multi-pass inference");
    println!(
        "{} tasks x {SAMPLES_PER_TASK} samples, up to {MAX_PASSES} passes\n",
        tasks.len()
    );

    let mut cumulative = [0usize; MAX_PASSES + 1];
    let mut total = 0usize;
    let mut surviving_channels: BTreeMap<Channel, usize> = BTreeMap::new();
    let mut survivors = 0usize;
    for (t_idx, task) in tasks.iter().enumerate() {
        for s in 0..SAMPLES_PER_TASK {
            let seed = SEED
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((t_idx * 1000 + s) as u64);
            let result = run_multipass(&codegen, &analyzer, &task.spec, MAX_PASSES, seed);
            total += 1;
            if let Some(p) = result.first_passing() {
                for entry in cumulative.iter_mut().skip(p) {
                    *entry += 1;
                }
            } else {
                survivors += 1;
                for &ch in &result.last().generation.applied {
                    *surviving_channels.entry(ch).or_insert(0) += 1;
                }
                if !result.last().generation.structure_known {
                    *surviving_channels
                        .entry(Channel::WrongStructure)
                        .or_insert(0) += 1;
                }
            }
        }
    }

    println!("| pass budget | accuracy | marginal gain |");
    println!("|---|---|---|");
    let mut prev = 0.0;
    let mut rates = Vec::new();
    for (p, &cum) in cumulative.iter().enumerate().skip(1) {
        let rate = cum as f64 / total as f64;
        println!("| {p} | {} | {} |", pct(rate), pct(rate - prev));
        rates.push(rate);
        prev = rate;
    }
    banner("bar view");
    for (p, rate) in rates.iter().enumerate() {
        println!("pass {} {} {}", p + 1, bar(*rate, 40), pct(*rate));
    }

    banner("error classes surviving all passes (paper: import/deprecated dominate)");
    let mut classes: Vec<(Channel, usize)> = surviving_channels.into_iter().collect();
    classes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (ch, n) in &classes {
        println!(
            "  {:>18}: {:>5} ({} of unrepaired samples)",
            ch.to_string(),
            n,
            pct(*n as f64 / survivors.max(1) as f64)
        );
    }

    banner("shape checks vs paper");
    check("pass 3 improves over pass 1", rates[2] > rates[0]);
    check(
        "improvement by pass 3 is moderate (4-15 points)",
        (0.04..0.15).contains(&(rates[2] - rates[0])),
    );
    check(
        "marginal gain shrinks after pass 3",
        (rates[5] - rates[4]) < (rates[1] - rates[0]) + (rates[2] - rates[1]),
    );
    let api_survivors = classes
        .iter()
        .filter(|(ch, _)| {
            matches!(
                ch,
                Channel::StaleImport | Channel::DeprecatedApi | Channel::ImportOmission
            )
        })
        .map(|&(_, n)| n)
        .sum::<usize>();
    let other_survivors = classes
        .iter()
        .filter(|(ch, _)| {
            matches!(
                ch,
                Channel::SyntaxError | Channel::Truncation | Channel::MissingMeasure
            )
        })
        .map(|&(_, n)| n)
        .sum::<usize>();
    check(
        "surviving errors are dominated by import/deprecated-API misuse",
        api_survivors > other_survivors,
    );
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
