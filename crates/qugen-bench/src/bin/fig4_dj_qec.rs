//! **Figure 4** — "Results for QEC Experiments": the constant
//! Deutsch–Jozsa oracle under a quantum-noise environment, with and
//! without the framework's QEC agent.
//!
//! (a) the corrections suggested by the decoder (on the |1>-prep memory
//! workload of Figure 2), (b) results under the IBM-Brisbane-like noise
//! profile, (c) results re-simulated at the reduced effective error rate
//! implied by the decoder's measured lifetime extension — exactly the
//! paper's methodology ("we simulated our results for (c) using a lower
//! error probability than IBM Brisbane, corresponding to the new error
//! rate after QEC").
//!
//! Expected shape: the |000> probability rises in (c), every erroneous
//! outcome's probability falls.

use qagents::qec_agent::QecAgent;
use qec::memory::{decode_once, DecoderKind};
use qec::surface::SurfaceCode;
use qec::topology::Topology;
use qugen_bench::util::{banner, histogram, pct};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHOTS: u64 = 4096;
const SEED: u64 = 0xF164;

fn main() {
    banner("Figure 4: constant Deutsch-Jozsa under noise, with and without QEC");

    // (a) decoder corrections on a |1>-prep surface-code memory.
    banner("(a) corrections suggested by the decoder");
    let code = SurfaceCode::new(3);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut errors = vec![false; code.num_data()];
    for e in errors.iter_mut() {
        if rng.gen_bool(0.08) {
            *e = true;
        }
    }
    let injected: Vec<usize> = errors
        .iter()
        .enumerate()
        .filter_map(|(q, &e)| e.then_some(q))
        .collect();
    println!("injected X errors on data qubits: {injected:?}");
    let correction = decode_once(&code, DecoderKind::Lookup, &errors);
    println!(
        "decoder corrections:              {:?}",
        correction.qubit_flips
    );
    let mut marks = vec![None; code.num_data()];
    for &q in &injected {
        marks[q] = Some('X');
    }
    for &q in &correction.qubit_flips {
        marks[q] = Some(if marks[q] == Some('X') { '*' } else { 'C' });
    }
    print!("{}", code.render(&marks));
    println!("(X = error, C = correction, * = both)\n");

    // The QEC agent: synthesize a decoder for a surface-code-capable
    // device and quantify the noise reduction.
    let device = Topology::grid(7, 7);
    let agent = QecAgent::new(device, 0.02);
    let circuit = qalgo::dj::figure4_circuit();
    let noise = qsim::profiles::ibm_brisbane_like();
    let cmp = agent
        .compare(&circuit, &noise, SHOTS, SEED)
        .expect("decoder synthesis succeeds on a grid device");

    println!("synthesized decoder: {}", cmp.spec);
    println!(
        "effective noise reduction factor: {:.3}",
        cmp.spec.noise_reduction_factor()
    );

    banner("(b) results on the Brisbane-like profile (no QEC)");
    print!("{}", histogram(&cmp.noisy, 40));
    println!("  p(|000>) = {}", pct(cmp.noisy.probability(0)));
    println!("  TVD from ideal = {:.4}", cmp.noisy_tvd());

    banner("(c) results after applying the corrections (reduced error rate)");
    print!("{}", histogram(&cmp.corrected, 40));
    println!("  p(|000>) = {}", pct(cmp.corrected.probability(0)));
    println!("  TVD from ideal = {:.4}", cmp.corrected_tvd());

    banner("shape checks vs paper");
    check(
        "higher probability of expected result",
        cmp.corrected.probability(0) > cmp.noisy.probability(0),
    );
    let mut each_error_lower = true;
    for outcome in 1..8u64 {
        if cmp.corrected.probability(outcome) > cmp.noisy.probability(outcome) + 0.01 {
            each_error_lower = false;
        }
    }
    check("lower probability of error outcomes", each_error_lower);
    check(
        "TVD from ideal shrinks",
        cmp.corrected_tvd() < cmp.noisy_tvd(),
    );
    check(
        "decoder extends qubit lifetime (> 1x)",
        cmp.spec.estimated_lifetime_extension > 1.0,
    );
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
