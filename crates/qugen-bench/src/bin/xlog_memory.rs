//! **Supporting experiment** — logical error rate vs physical rate,
//! distance and decoder. This backs the paper's claim that applying the
//! surface code "extends the average qubit lifetime": the measured
//! lifetime-extension factor is what the QEC agent feeds into Figure 4(c).

use qec::memory::{code_capacity_experiment, phenomenological_experiment, DecoderKind};
use qugen_bench::util::banner;

const TRIALS: usize = 4000;

fn main() {
    banner("logical error rate: code capacity, d = 3, decoder comparison");
    println!("| p | lookup | greedy | union-find |");
    println!("|---|---|---|---|");
    for &p in &[0.005, 0.01, 0.02, 0.04, 0.08, 0.12] {
        let mut row = format!("| {p} |");
        for kind in DecoderKind::ALL {
            let r = code_capacity_experiment(3, p, kind, TRIALS, 42);
            row.push_str(&format!(" {:.4} |", r.p_logical));
        }
        println!("{row}");
    }

    banner("logical error rate vs distance (union-find)");
    println!("| p | d=3 | d=5 | d=7 |");
    println!("|---|---|---|---|");
    let mut below_threshold_ordering = true;
    for &p in &[0.005, 0.01, 0.02, 0.05, 0.10] {
        let mut row = format!("| {p} |");
        let mut rates = Vec::new();
        for &d in &[3usize, 5, 7] {
            let r = code_capacity_experiment(d, p, DecoderKind::UnionFind, TRIALS, 7);
            rates.push(r.p_logical);
            row.push_str(&format!(" {:.4} |", r.p_logical));
        }
        println!("{row}");
        if p <= 0.02 && rates[2] > rates[0] + 0.002 {
            below_threshold_ordering = false;
        }
    }

    banner("lifetime extension factor (the QEC agent's headline number)");
    for &(d, p) in &[(3usize, 0.01), (3, 0.02), (5, 0.02)] {
        let r = code_capacity_experiment(d, p, DecoderKind::UnionFind, TRIALS, 11);
        println!(
            "d={d}, p={p}: p_logical={:.5}, lifetime extension ~{:.1}x",
            r.p_logical,
            r.lifetime_extension()
        );
    }

    banner("phenomenological (noisy measurements), d=3, greedy space-time");
    println!("| p = q | rounds | p_logical |");
    println!("|---|---|---|");
    for &(p, rounds) in &[(0.002, 3usize), (0.005, 3), (0.01, 3), (0.005, 6)] {
        let r = phenomenological_experiment(3, p, p, rounds, TRIALS / 2, 23);
        println!("| {p} | {rounds} | {:.4} |", r.p_logical);
    }

    banner("shape checks");
    let low = code_capacity_experiment(3, 0.01, DecoderKind::Lookup, TRIALS, 5);
    check(
        "below threshold: logical < physical",
        low.p_logical < low.p_physical,
    );
    let high = code_capacity_experiment(3, 0.35, DecoderKind::Lookup, TRIALS, 5);
    check(
        "above threshold: code stops helping",
        high.p_logical > high.p_physical * 0.5,
    );
    check(
        "below threshold: larger distance suppresses more",
        below_threshold_ordering,
    );
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
