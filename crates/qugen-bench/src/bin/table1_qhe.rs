//! **Table I** — Qiskit HumanEval performance, plus the §V-C
//! syntactic-vs-semantic split.
//!
//! Paper rows (QHE score): Starcoder2-7B 17.9%, -QK 24.5%, -QKRAG 33.8%,
//! -QKCoT 41.4%, IBM Granite-20B-CODE-QK 46.5%. §V-C adds the split:
//! RAG 45.7% syntactic / 33.8% semantic; CoT 46.4% / 41.4% — i.e. CoT
//! converts syntactic validity into semantic validity.

use qeval::qhe::{granite_proxy_config, qhe_config, qhe_score, qhe_tasks};
use qlm::model::{CodeLlm, GenConfig};
use qugen_bench::util::{banner, bar, pct};

const SAMPLES_PER_TASK: usize = 24;
const SEED: u64 = 0x7AB1E1;

fn main() {
    let llm = CodeLlm::new();
    banner("Table I: QHE-like benchmark");
    println!(
        "{} tasks x {SAMPLES_PER_TASK} samples, pass@1\n",
        qhe_tasks().len()
    );

    let rows = [
        ("Starcoder2-QL (base)", qhe_config(GenConfig::base())),
        (
            "Starcoder2-QL-QK (fine-tuned)",
            qhe_config(GenConfig::fine_tuned()),
        ),
        ("Starcoder2-QL-QKRAG", qhe_config(GenConfig::with_rag())),
        ("Starcoder2-QL-QKCoT", qhe_config(GenConfig::with_cot())),
        ("Granite-20B-proxy-QK", granite_proxy_config()),
    ];

    println!("| model | QHE score | syntactic | semantic-gap |");
    println!("|---|---|---|---|");
    let mut scores = Vec::new();
    let mut splits = Vec::new();
    for (name, config) in &rows {
        let outcome = qhe_score(&llm, config, SAMPLES_PER_TASK, SEED);
        println!(
            "| {} | {} | {} | {} |",
            name,
            pct(outcome.pass_rate()),
            pct(outcome.syntactic_rate()),
            pct(outcome.syntactic_rate() - outcome.pass_rate()),
        );
        scores.push(outcome.pass_rate());
        splits.push((outcome.syntactic_rate(), outcome.pass_rate()));
    }

    banner("bar view (QHE score)");
    for ((name, _), score) in rows.iter().zip(&scores) {
        println!("{name:>30} {} {}", bar(*score, 40), pct(*score));
    }

    banner("§V-C: syntactic vs semantic accuracy");
    let (rag_syn, rag_sem) = splits[2];
    let (cot_syn, cot_sem) = splits[3];
    println!(
        "RAG: syntactic {} / semantic {}",
        pct(rag_syn),
        pct(rag_sem)
    );
    println!(
        "CoT: syntactic {} / semantic {}",
        pct(cot_syn),
        pct(cot_sem)
    );
    println!(
        "semantic share of syntactically-valid: RAG {} vs CoT {}",
        pct(rag_sem / rag_syn.max(1e-9)),
        pct(cot_sem / cot_syn.max(1e-9)),
    );

    banner("shape checks vs paper");
    check("base < QK", scores[0] < scores[1]);
    check("QK < QKRAG", scores[1] < scores[2]);
    check("QKRAG < QKCoT", scores[2] < scores[3]);
    check("QKCoT < Granite proxy", scores[3] < scores[4]);
    check(
        "CoT and RAG have similar syntactic accuracy (within 8 points)",
        (cot_syn - rag_syn).abs() < 0.08,
    );
    check(
        "CoT converts more syntactic validity into semantic validity",
        cot_sem / cot_syn.max(1e-9) > rag_sem / rag_syn.max(1e-9),
    );
}

fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "ok" } else { "MISMATCH" });
}
