//! Shared helpers for the experiment binaries.

use qsim::dist::Counts;
use std::fmt::Write as _;

/// Renders a horizontal ASCII bar of `width` cells for a fraction.
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Renders a counts table as an ASCII histogram (the Figure 4 panels).
pub fn histogram(counts: &Counts, width: usize) -> String {
    let mut out = String::new();
    let shots = counts.shots().max(1) as f64;
    for (outcome, count) in counts.iter() {
        let p = count as f64 / shots;
        let _ = writeln!(
            out,
            "  |{}> {:>7}  {:6.3}  {}",
            counts.bitstring(outcome),
            count,
            p,
            bar(p, width)
        );
    }
    out
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(2.0, 4), "████");
    }

    #[test]
    fn histogram_renders_rows() {
        let mut c = Counts::new(2);
        c.record(0);
        c.record(3);
        let h = histogram(&c, 10);
        assert!(h.contains("|00>"));
        assert!(h.contains("|11>"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.285), "28.5%");
    }
}
