//! # qugen-bench — the benchmark harness
//!
//! One binary per table/figure of the reproduced paper (see DESIGN.md's
//! experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig3_validity` | Figure 3 — technique sweep on the custom suite |
//! | `table1_qhe` | Table I + §V-C syntactic/semantic split |
//! | `sec5d_multipass` | §V-D multi-pass accuracy vs pass budget |
//! | `fig2_syndromes` | Figure 2 — syndrome evolution and decoder output |
//! | `fig4_dj_qec` | Figure 4 — Deutsch–Jozsa with/without QEC |
//! | `xlog_memory` | supporting: logical error rate vs p, d, decoder |
//! | `abl_sweeps` | supporting: staleness / CoT-quality / FIM ablations |
//!
//! Criterion microbenches live in `benches/`.

pub mod util;
