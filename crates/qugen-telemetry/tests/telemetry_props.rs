//! Property tests for the histogram accounting and the trace schema.
//!
//! The histogram invariant is the one the `metrics` snapshot consumers
//! rely on: bucket totals, the observation count, and the running sum
//! always agree with what was recorded — for any value distribution,
//! including 0 and `u64::MAX`. The trace property is the schema
//! contract: every emitted line round-trips through the `qugen-wire`
//! codec and [`TraceEvent`] byte-for-byte.

use proptest::prelude::*;
use qugen_telemetry::metrics::{self, bucket_index, Histogram, HISTOGRAM_BUCKETS};
use qugen_telemetry::trace::{self, TraceEvent};
use qugen_wire::Json;

proptest! {
    /// Quiescent histograms balance exactly: the bucket counts sum to
    /// the number of recorded observations, the sum is the (wrapping)
    /// total of the values, and every value's bit-length bucket is
    /// occupied.
    #[test]
    fn histogram_buckets_balance_recorded_observations(
        values in prop::collection::vec(0u64..=u64::MAX, 0..256)
    ) {
        metrics::set_enabled(true);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(
            snap.sum,
            values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
        );
        for &v in &values {
            prop_assert!(snap.buckets[bucket_index(v)] >= 1, "value {v} left its bucket empty");
        }
    }

    /// `bucket_index` is total, bounded, and monotone: larger values
    /// never land in a smaller bucket, and a bucket's range is exactly
    /// one bit length.
    #[test]
    fn bucket_index_is_bounded_and_monotone(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(hi) < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        if lo > 0 {
            let i = bucket_index(lo);
            prop_assert!(lo >= 1u64 << (i - 1), "value {lo} below bucket {i}'s floor");
        }
    }

    /// A [`TraceEvent`] built from arbitrary fields survives
    /// typed → JSON → bytes → JSON → typed unchanged, and the two byte
    /// renderings are identical (the canonical-encoding contract).
    #[test]
    fn trace_events_round_trip_through_the_codec(
        kind in 0u8..=1,
        pid in 0u32..=u32::MAX,
        ts_us in 0u64..=u64::MAX,
        dur_us in 0u64..=u64::MAX,
        shots in i64::MIN..=i64::MAX,
    ) {
        let is_span = kind == 1;
        let event = TraceEvent {
            is_span,
            layer: "executor".to_string(),
            name: "job".to_string(),
            pid,
            ts_us,
            // Events never carry a duration; spans always do.
            dur_us: is_span.then_some(dur_us),
            ints: vec![("shots".to_string(), shots as i128)],
            labels: vec![("backend".to_string(), "dense".to_string())],
        };
        let encoded = event.to_json().encode();
        let reparsed = Json::parse(&encoded).expect("canonical encoding parses");
        let decoded = TraceEvent::from_json(&reparsed).expect("schema accepts its own output");
        prop_assert_eq!(&decoded, &event);
        prop_assert_eq!(decoded.to_json().encode(), encoded);
    }
}

/// The live emitters honor the same contract as hand-built events: each
/// captured line parses, matches the schema, and re-encodes to the same
/// bytes.
#[test]
fn emitted_lines_round_trip_byte_for_byte() {
    let buffer = trace::install_capture();
    {
        let _span = trace::span("executor", "job")
            .label("backend", "mps")
            .int("shots", 4096)
            .int("chunks", 4);
    }
    trace::event("shard", "requeue", &[("range_id", 7), ("attempt", 1)]);
    trace::disable();
    let lines = buffer.lock().unwrap().clone();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let parsed = Json::parse(line).expect("trace line is valid JSON");
        let event = TraceEvent::from_json(&parsed).expect("trace line matches the schema");
        assert_eq!(
            event.to_json().encode(),
            *line,
            "round-trip changed the bytes"
        );
    }
}
