//! The process-wide metrics registry: named atomic counters, gauges and
//! log2 latency histograms.
//!
//! Metrics are *interned*: the first [`counter`]/[`gauge`]/[`histogram`]
//! call for a name leaks one allocation and returns a `&'static` handle;
//! every later call for the same name returns the same handle. Call sites
//! on hot paths cache the handle (e.g. in a `OnceLock`-initialized struct)
//! so steady-state recording never touches the registry lock — it is one
//! relaxed atomic load (the [`enabled`] gate) plus relaxed `fetch_add`s.
//!
//! Histograms use 64 preallocated atomic buckets keyed by the value's bit
//! length (`bucket i` holds values of `i` significant bits, i.e. the
//! `[2^(i-1), 2^i)` range; bucket 0 holds zero; the top bucket absorbs
//! everything past `2^62`). Recording is allocation-free by construction —
//! the property the executor's counting-allocator tests pin.

use qugen_wire::Json;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Histogram bucket count: bit lengths 0 (zero) through 63 (≥ 2^62).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// `QUGEN_TELEMETRY` gate: 0 = uninitialized, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// `true` when metric recording is active. One relaxed atomic load on the
/// steady-state path; the first call reads `QUGEN_TELEMETRY` (anything
/// but `0`/`off`/`false` — including unset — means on).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let off = std::env::var("QUGEN_TELEMETRY")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "0" || v == "off" || v == "false"
        })
        .unwrap_or(false);
    STATE.store(if off { 1 } else { 2 }, Ordering::Relaxed);
    !off
}

/// Overrides the `QUGEN_TELEMETRY` gate in-process (benches compare
/// instrumented vs baseline with this; tests force a known state).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one (a relaxed `fetch_add` when [`enabled`], nothing when not).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, pool occupancy).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram (typically of microsecond latencies).
///
/// The bucket array is preallocated and recording is three relaxed
/// `fetch_add`s — no allocation, no lock, safe on zero-alloc hot paths.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket `value` lands in: its bit length (0 for zero), clamped to
/// the top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// A fresh, unregistered histogram. Most callers want the interned
    /// [`histogram`] handle; standalone instances exist for tests and
    /// for call sites that aggregate before publishing.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of counts and buckets. Concurrent recording
    /// can make `count` and the bucket sum differ transiently by in-flight
    /// records; quiescent histograms always agree (property-tested).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A copied-out histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

/// One registered metric, as a snapshot value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(i64),
    /// A [`Histogram`] snapshot.
    Histogram(HistogramSnapshot),
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// The counter registered under `name`, interning it on first use.
///
/// # Panics
///
/// When `name` is already registered as a different metric type.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut registry = REGISTRY.lock().expect("metric registry poisoned");
    match registry.entry(name) {
        Entry::Occupied(e) => match e.get() {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is registered with a different type"),
        },
        Entry::Vacant(v) => {
            let c: &'static Counter = Box::leak(Box::new(Counter::new()));
            v.insert(Metric::Counter(c));
            c
        }
    }
}

/// The gauge registered under `name`, interning it on first use.
///
/// # Panics
///
/// When `name` is already registered as a different metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut registry = REGISTRY.lock().expect("metric registry poisoned");
    match registry.entry(name) {
        Entry::Occupied(e) => match e.get() {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is registered with a different type"),
        },
        Entry::Vacant(v) => {
            let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
            v.insert(Metric::Gauge(g));
            g
        }
    }
}

/// The histogram registered under `name`, interning it on first use.
///
/// # Panics
///
/// When `name` is already registered as a different metric type.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut registry = REGISTRY.lock().expect("metric registry poisoned");
    match registry.entry(name) {
        Entry::Occupied(e) => match e.get() {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is registered with a different type"),
        },
        Entry::Vacant(v) => {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
            v.insert(Metric::Histogram(h));
            h
        }
    }
}

/// Every registered metric with its current value, name-sorted.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let registry = REGISTRY.lock().expect("metric registry poisoned");
    registry
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            (*name, value)
        })
        .collect()
}

/// The full registry as an exact-integer JSON object: counters and gauges
/// as integers, histograms as `{"count", "sum", "buckets"}` (buckets
/// truncated after the last nonzero entry to keep snapshot lines small).
pub fn snapshot_json() -> Json {
    let map: BTreeMap<String, Json> = snapshot()
        .into_iter()
        .map(|(name, value)| {
            let json = match value {
                MetricValue::Counter(n) => Json::Int(n as i128),
                MetricValue::Gauge(v) => Json::Int(v as i128),
                MetricValue::Histogram(h) => {
                    let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                    qugen_wire::obj([
                        ("count", Json::Int(h.count as i128)),
                        ("sum", Json::Int(h.sum as i128)),
                        (
                            "buckets",
                            Json::Arr(
                                h.buckets[..last]
                                    .iter()
                                    .map(|&b| Json::Int(b as i128))
                                    .collect(),
                            ),
                        ),
                    ])
                }
            };
            (name.to_string(), json)
        })
        .collect();
    Json::Obj(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global [`enabled`] gate.
    fn state_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counters_gauges_and_histograms_intern_and_record() {
        let _guard = state_lock();
        set_enabled(true);
        let c = counter("test.metrics.counter");
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);

        let g = gauge("test.metrics.gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);

        let h = histogram("test.metrics.histogram");
        let count_before = h.count();
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(u64::MAX);
        assert_eq!(h.count(), count_before + 4);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert!(snap.buckets[bucket_index(1023)] >= 1);
    }

    #[test]
    fn bucket_index_is_bit_length_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = state_lock();
        set_enabled(true);
        let c = counter("test.metrics.disabled");
        let before = c.get();
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), before);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn snapshot_json_renders_exact_integers() {
        let _guard = state_lock();
        set_enabled(true);
        counter("test.metrics.snapshot").add(3);
        let json = snapshot_json();
        let rendered = json.encode();
        let parsed = Json::parse(&rendered).expect("snapshot is valid JSON");
        assert!(parsed.get("test.metrics.snapshot").is_some());
    }
}
