//! Trace spans and events as line-delimited exact-integer JSON.
//!
//! Every emitted line is one canonical [`Json`] object (the
//! [`qugen-wire`](qugen_wire) codec conventions: sorted keys, integers
//! never rendered as floats), so traces from the serve daemon, shard
//! coordinator and shard workers interleave into one stream a line-based
//! consumer can parse unambiguously. The schema is [`TraceEvent`]:
//!
//! ```json
//! {"dur_us":1342,"layer":"executor","name":"job","pid":4242,
//!  "shots":1024,"backend":"dense","ts_us":88211,"type":"span"}
//! ```
//!
//! Reserved keys are `type` (`"span"` or `"event"`), `layer`, `name`,
//! `pid`, `ts_us` (microseconds since this process first initialized
//! tracing) and — for spans — `dur_us`. All other keys are caller fields:
//! integers via [`Span::int`] / [`event`], strings via [`Span::label`].
//!
//! # Disabled-path cost contract
//!
//! When tracing is off (no `QUGEN_TRACE`, or `QUGEN_TRACE=0`), [`span`]
//! and [`event`] cost **one relaxed atomic load** and return immediately:
//! no clock read, no allocation, no lock, no syscall. Instrumentation can
//! therefore sit on every job and request path permanently; only the
//! cold first call pays the environment lookup. Enabled spans allocate
//! while building their JSON line, which is why spans wrap *jobs and
//! requests*, never per-shot work — the shot loop stays zero-alloc with
//! tracing on because it contains no span at all.

use qugen_wire::Json;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// `QUGEN_TRACE` gate: 0 = uninitialized, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

enum Sink {
    Stderr,
    File(std::fs::File),
    Capture(Arc<Mutex<Vec<String>>>),
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// The instant `ts_us` offsets are measured from (first trace init).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// `true` when tracing is active — **one relaxed atomic load** on the
/// steady-state path (the documented disabled-path cost). The first call
/// reads `QUGEN_TRACE`: unset, empty or `0` is off; `1` or `stderr`
/// emits to stderr; anything else is a file path opened for append.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let target = std::env::var("QUGEN_TRACE").unwrap_or_default();
    let target = target.trim();
    let sink = match target {
        "" | "0" => None,
        "1" | "stderr" => Some(Sink::Stderr),
        path => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => Some(Sink::File(file)),
            Err(e) => {
                eprintln!("qugen-telemetry: cannot open QUGEN_TRACE file `{path}`: {e}");
                None
            }
        },
    };
    let on = sink.is_some();
    epoch();
    *SINK.lock().expect("trace sink poisoned") = sink;
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Enables tracing into an in-memory buffer and returns it — the hook
/// tests use to assert on emitted lines without touching the process
/// environment. Replaces any previously active sink.
pub fn install_capture() -> Arc<Mutex<Vec<String>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    epoch();
    *SINK.lock().expect("trace sink poisoned") = Some(Sink::Capture(Arc::clone(&buffer)));
    STATE.store(2, Ordering::Relaxed);
    buffer
}

/// Disables tracing (tests restore a known state with this).
pub fn disable() {
    *SINK.lock().expect("trace sink poisoned") = None;
    STATE.store(1, Ordering::Relaxed);
}

fn emit(line: &str) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    match sink.as_mut() {
        Some(Sink::Stderr) => eprintln!("{line}"),
        Some(Sink::File(file)) => {
            // One write per line: O_APPEND keeps lines whole even when
            // several processes (shard workers) share the file.
            let _ = writeln!(file, "{line}");
        }
        Some(Sink::Capture(buffer)) => buffer
            .lock()
            .expect("capture buffer poisoned")
            .push(line.to_string()),
        None => {}
    }
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// An in-flight span: emits one `"type":"span"` line with its wall-clock
/// duration when dropped (or [`finish`](Span::finish)ed). Construction
/// via [`span`] is inert when tracing is disabled — see the module docs
/// for the cost contract.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    active: Option<SpanData>,
}

struct SpanData {
    start: Instant,
    start_us: u64,
    layer: &'static str,
    name: &'static str,
    ints: Vec<(&'static str, i128)>,
    labels: Vec<(&'static str, &'static str)>,
}

/// Starts a span over `layer` (e.g. `"executor"`, `"serve"`, `"shard"`)
/// named `name`. Costs one relaxed atomic load when tracing is disabled.
#[inline]
pub fn span(layer: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    Span {
        active: Some(SpanData {
            start: Instant::now(),
            start_us: now_us(),
            layer,
            name,
            ints: Vec::new(),
            labels: Vec::new(),
        }),
    }
}

impl Span {
    /// Attaches an integer field (no-op on an inert span).
    pub fn int(mut self, key: &'static str, value: i128) -> Self {
        if let Some(data) = &mut self.active {
            data.ints.push((key, value));
        }
        self
    }

    /// Attaches a string field (no-op on an inert span).
    pub fn label(mut self, key: &'static str, value: &'static str) -> Self {
        if let Some(data) = &mut self.active {
            data.labels.push((key, value));
        }
        self
    }

    /// Ends the span now (otherwise `Drop` does).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.active.take() else {
            return;
        };
        let mut map = BTreeMap::new();
        map.insert("type".to_string(), Json::Str("span".to_string()));
        map.insert("layer".to_string(), Json::Str(data.layer.to_string()));
        map.insert("name".to_string(), Json::Str(data.name.to_string()));
        map.insert("pid".to_string(), Json::Int(std::process::id() as i128));
        map.insert("ts_us".to_string(), Json::Int(data.start_us as i128));
        map.insert(
            "dur_us".to_string(),
            Json::Int(data.start.elapsed().as_micros() as i128),
        );
        for (key, value) in &data.ints {
            map.insert(key.to_string(), Json::Int(*value));
        }
        for (key, value) in &data.labels {
            map.insert(key.to_string(), Json::Str(value.to_string()));
        }
        emit(&Json::Obj(map).encode());
    }
}

/// Emits one point event (`"type":"event"`) with integer fields. Costs
/// one relaxed atomic load when tracing is disabled.
#[inline]
pub fn event(layer: &'static str, name: &'static str, ints: &[(&'static str, i128)]) {
    if !enabled() {
        return;
    }
    let mut map = BTreeMap::new();
    map.insert("type".to_string(), Json::Str("event".to_string()));
    map.insert("layer".to_string(), Json::Str(layer.to_string()));
    map.insert("name".to_string(), Json::Str(name.to_string()));
    map.insert("pid".to_string(), Json::Int(std::process::id() as i128));
    map.insert("ts_us".to_string(), Json::Int(now_us() as i128));
    for (key, value) in ints {
        map.insert(key.to_string(), Json::Int(*value));
    }
    emit(&Json::Obj(map).encode());
}

/// The parsed shape of one trace line — the schema contract between the
/// emitters above and any consumer of a `QUGEN_TRACE` stream. Round-trips
/// through the [`qugen-wire`](qugen_wire) codec byte-for-byte (tested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// `true` for spans (which carry `dur_us`), `false` for point events.
    pub is_span: bool,
    /// Subsystem (`"executor"`, `"plan"`, `"serve"`, `"shard"`).
    pub layer: String,
    /// Event name within the layer.
    pub name: String,
    /// Emitting process id.
    pub pid: u32,
    /// Microseconds since the emitting process initialized tracing.
    pub ts_us: u64,
    /// Span wall-clock duration in microseconds (`None` for events).
    pub dur_us: Option<u64>,
    /// Caller integer fields, key-sorted.
    pub ints: Vec<(String, i128)>,
    /// Caller string fields, key-sorted.
    pub labels: Vec<(String, String)>,
}

impl TraceEvent {
    /// Renders the canonical JSON object for this event.
    pub fn to_json(&self) -> Json {
        let mut map = BTreeMap::new();
        map.insert(
            "type".to_string(),
            Json::Str(if self.is_span { "span" } else { "event" }.to_string()),
        );
        map.insert("layer".to_string(), Json::Str(self.layer.clone()));
        map.insert("name".to_string(), Json::Str(self.name.clone()));
        map.insert("pid".to_string(), Json::Int(self.pid as i128));
        map.insert("ts_us".to_string(), Json::Int(self.ts_us as i128));
        if let Some(dur) = self.dur_us {
            map.insert("dur_us".to_string(), Json::Int(dur as i128));
        }
        for (key, value) in &self.ints {
            map.insert(key.clone(), Json::Int(*value));
        }
        for (key, value) in &self.labels {
            map.insert(key.clone(), Json::Str(value.clone()));
        }
        Json::Obj(map)
    }

    /// Parses one trace line's JSON back into the typed event.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped reserved field.
    pub fn from_json(value: &Json) -> Result<TraceEvent, String> {
        let Json::Obj(map) = value else {
            return Err("trace event is not a JSON object".to_string());
        };
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing string field `type`")?;
        let is_span = match kind {
            "span" => true,
            "event" => false,
            other => return Err(format!("unknown trace event type `{other}`")),
        };
        let layer = value
            .get("layer")
            .and_then(Json::as_str)
            .ok_or("missing string field `layer`")?
            .to_string();
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing string field `name`")?
            .to_string();
        let pid = value
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or("missing integer field `pid`")? as u32;
        let ts_us = value
            .get("ts_us")
            .and_then(Json::as_u64)
            .ok_or("missing integer field `ts_us`")?;
        let dur_us = match value.get("dur_us") {
            None => None,
            Some(j) => Some(
                j.as_u64()
                    .ok_or("`dur_us` must be a non-negative integer")?,
            ),
        };
        if is_span && dur_us.is_none() {
            return Err("span without `dur_us`".to_string());
        }
        let mut ints = Vec::new();
        let mut labels = Vec::new();
        for (key, field) in map {
            if matches!(
                key.as_str(),
                "type" | "layer" | "name" | "pid" | "ts_us" | "dur_us"
            ) {
                continue;
            }
            match field {
                Json::Int(i) => ints.push((key.clone(), *i)),
                Json::Str(s) => labels.push((key.clone(), s.clone())),
                other => return Err(format!("field `{key}` has unsupported type: {other:?}")),
            }
        }
        Ok(TraceEvent {
            is_span,
            layer,
            name,
            pid,
            ts_us,
            dur_us,
            ints,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that swap the global sink.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn spans_and_events_emit_parseable_lines() {
        let _guard = sink_lock();
        let buffer = install_capture();
        {
            let _span = span("test", "unit")
                .int("shots", 1024)
                .label("backend", "dense");
        }
        event("test", "tick", &[("n", 3)]);
        disable();
        let lines = buffer.lock().unwrap().clone();
        assert_eq!(lines.len(), 2);
        let parsed =
            TraceEvent::from_json(&Json::parse(&lines[0]).expect("span line is valid JSON"))
                .expect("span line matches the schema");
        assert!(parsed.is_span);
        assert_eq!(parsed.layer, "test");
        assert_eq!(parsed.name, "unit");
        assert_eq!(parsed.ints, vec![("shots".to_string(), 1024)]);
        assert_eq!(
            parsed.labels,
            vec![("backend".to_string(), "dense".to_string())]
        );
        let tick =
            TraceEvent::from_json(&Json::parse(&lines[1]).expect("event line is valid JSON"))
                .expect("event line matches the schema");
        assert!(!tick.is_span);
        assert_eq!(tick.dur_us, None);
        assert_eq!(tick.ints, vec![("n".to_string(), 3)]);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = sink_lock();
        disable();
        let s = span("test", "inert").int("k", 1).label("l", "v");
        assert!(s.active.is_none());
        s.finish();
        event("test", "inert", &[("k", 1)]);
    }
}
