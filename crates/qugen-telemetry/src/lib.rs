//! Observability for the qugen stack: a process-wide metrics registry and
//! a lightweight JSON trace-span layer, with no dependencies beyond
//! [`qugen-wire`](qugen_wire) (itself dependency-free — the workspace is
//! offline/vendored, so this crate is hand-rolled like the wire codec).
//!
//! # The two halves
//!
//! * [`metrics`] — named atomic [`Counter`](metrics::Counter)s,
//!   [`Gauge`](metrics::Gauge)s and fixed-bucket log2
//!   [`Histogram`](metrics::Histogram)s, interned in one process-wide
//!   registry. Recording is lock-free (relaxed atomics into preallocated
//!   bucket arrays) and allocation-free, so instrumentation is safe inside
//!   the executor's zero-alloc shot loop. A snapshot of every metric is
//!   available as an exact-integer [`Json`](qugen_wire::Json) object —
//!   this is what the serve daemon's `metrics` op returns.
//! * [`trace`] — spans and point events emitted as line-delimited
//!   exact-integer JSON (the [`qugen-wire`](qugen_wire) codec conventions:
//!   canonical key order, integers never rendered as floats) to stderr or
//!   a file when `QUGEN_TRACE` is set.
//!
//! # Cost contract
//!
//! Both halves are built to be left in production code:
//!
//! * **Disabled tracing costs one relaxed atomic load.** When `QUGEN_TRACE`
//!   is unset, [`trace::span`] and [`trace::event`] check one
//!   `AtomicU8` with `Ordering::Relaxed` and return inert values — no
//!   clock read, no allocation, no lock.
//! * **Disabled metrics cost one relaxed atomic load** per record call
//!   (`QUGEN_TELEMETRY=0`); enabled metrics add one relaxed `fetch_add`
//!   (three for a histogram) and never allocate or lock.
//!
//! # Environment
//!
//! | variable | effect |
//! |---|---|
//! | `QUGEN_TELEMETRY` | `0` / `off` / `false` disables metric recording (default: on) |
//! | `QUGEN_TRACE` | unset / `0`: tracing off; `1` / `stderr`: events to stderr; anything else: append to that file path |
//!
//! Both variables are read once, at first use; tests and benches override
//! them in-process via [`metrics::set_enabled`] and
//! [`trace::install_capture`].

pub mod metrics;
pub mod trace;

pub use metrics::{counter, gauge, histogram};
pub use trace::{event, span};
