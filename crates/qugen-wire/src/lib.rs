//! Shared wire layer for the qugen service binaries.
//!
//! `qugen-serve` (the simulation job daemon) and `qugen-shard` (the
//! multi-process evaluation coordinator) speak the same transport: one
//! JSON value per line, integers kept exact, serialization canonical.
//! This crate holds that common layer so the two protocols cannot drift —
//! a shard worker reply and a serve job reply are encoded by the same
//! code path and can be compared byte-for-byte by tests and smoke jobs.
//!
//! * [`codec`] — the hand-rolled JSON value type ([`Json`]), parser and
//!   canonical encoder. The repo takes no external dependencies (see
//!   `vendor/README.md`), so the wire layer carries its own small JSON
//!   implementation rather than pulling in serde.
//!
//! Protocol vocabularies stay with their services: `qugen_serve::proto`
//! owns the job-daemon request shapes, `qugen_shard::proto` owns the
//! coordinator/worker shard messages. Only the value layer is shared.

pub mod codec;

pub use codec::{obj, Json, JsonError};
