//! A minimal hand-rolled JSON codec for the wire protocols.
//!
//! The repo takes no external dependencies (see `vendor/README.md`), so the
//! services carry their own small JSON layer rather than pulling in serde.
//! Both `qugen-serve` (job daemon) and `qugen-shard` (eval coordinator)
//! encode every line through this module. Two properties matter more than
//! generality:
//!
//! * **Integers stay exact.** Numbers without a fraction or exponent parse
//!   into [`Json::Int`] (an `i128`), so full-range `u64` seeds and shot
//!   counts round-trip bit-exactly — an `f64` path would silently corrupt
//!   seeds above 2⁵³ and break the determinism contract.
//! * **Serialization is canonical.** Objects are [`BTreeMap`]s, so the
//!   same value always serializes to the same byte string — clients (and
//!   the CI smoke job) can compare service counts against library counts
//!   by comparing encoded lines.

use std::collections::BTreeMap;
use std::fmt;

/// Nesting depth bound for the parser: the services read untrusted lines,
/// and a few KB of `[[[[…` must return a typed error, not blow the stack.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent, kept exact.
    Int(i128),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, canonically ordered by key.
    Obj(BTreeMap<String, Json>),
}

/// Where and why a line failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable reason.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Parses one complete JSON value (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` (integers widen; may round past 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Field lookup on an object (`None` for other shapes or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|map| map.get(key))
    }

    /// Serializes canonically (sorted object keys, no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => {
                // Non-finite floats have no JSON form; the proto layer
                // encodes an infinite budget as the string "inf" instead.
                if f.is_finite() {
                    let mut text = f.to_string();
                    // `1.0f64.to_string()` is "1": keep the float marker so
                    // the value round-trips as a Float, not an Int.
                    if !text.contains(['.', 'e', 'E']) {
                        text.push_str(".0");
                    }
                    out.push_str(&text);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds a [`Json::Obj`] from key/value pairs (the proto layer's idiom).
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `]` in array"));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected `:` after object key"));
                    }
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(map));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `}` in object"));
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came in as &str) and the run
                // breaks only at ASCII boundaries, so the slice is valid.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly_at_u64_range() {
        let seed = u64::MAX - 1;
        let line = format!("{{\"seed\":{seed}}}");
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(value.encode(), line);
    }

    #[test]
    fn canonical_encoding_sorts_keys() {
        let value = Json::parse("{\"b\":1, \"a\": [true, null, \"x\"]}").unwrap();
        assert_eq!(value.encode(), "{\"a\":[true,null,\"x\"],\"b\":1}");
    }

    #[test]
    fn floats_keep_their_marker() {
        let value = Json::parse("{\"budget\":1.0}").unwrap();
        assert!(matches!(value.get("budget"), Some(Json::Float(_))));
        let enc = value.encode();
        assert!(enc.contains("1.0") || enc.contains("1e"), "{enc}");
        assert_eq!(Json::parse(&enc).unwrap(), value);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let value = Json::Str("a\"b\\c\nd\u{0001}".into());
        let enc = value.encode();
        assert_eq!(Json::parse(&enc).unwrap(), value);
        assert_eq!(
            Json::parse("\"\\u0041\\t\"").unwrap(),
            Json::Str("A\t".into())
        );
    }

    #[test]
    fn malformed_input_is_a_typed_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "nul",
            "{\"a\":1}garbage",
            "1e",
            "\"\\u12\"",
            "\u{7f}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Deep nesting hits the depth bound instead of the stack.
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(Json::parse("1E-2").unwrap(), Json::Float(0.01));
    }
}
