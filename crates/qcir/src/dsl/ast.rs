//! Abstract syntax tree for QasmLite.

use crate::diag::Span;
use std::fmt;

/// A parsed QasmLite program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterates over the import items.
    pub fn imports(&self) -> impl Iterator<Item = (&str, &str, Span)> {
        self.items.iter().filter_map(|item| match item {
            Item::Import {
                module,
                version,
                span,
            } => Some((module.as_str(), version.as_str(), *span)),
            _ => None,
        })
    }

    /// Iterates over register declarations as `(kind, name, size)`.
    pub fn registers(&self) -> impl Iterator<Item = (RegKind, &str, usize)> {
        self.items.iter().filter_map(|item| match item {
            Item::RegDecl {
                kind, name, size, ..
            } => Some((*kind, name.as_str(), *size)),
            _ => None,
        })
    }
}

/// Register kind: quantum or classical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegKind {
    /// `qreg`.
    Quantum,
    /// `creg`.
    Classical,
}

impl fmt::Display for RegKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegKind::Quantum => write!(f, "qreg"),
            RegKind::Classical => write!(f, "creg"),
        }
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `import <module> <version>;`
    Import {
        /// Dotted module path (e.g. `qasmlite.gates`).
        module: String,
        /// Raw version text (e.g. `2.1`); validated by the checker.
        version: String,
        /// Location.
        span: Span,
    },
    /// `qreg name[size];` or `creg name[size];`
    RegDecl {
        /// Quantum or classical.
        kind: RegKind,
        /// Register name.
        name: String,
        /// Number of (qu)bits.
        size: usize,
        /// Location.
        span: Span,
    },
    /// `gate name(params) operands { body }` — a subroutine/oracle.
    GateDef {
        /// Subroutine name.
        name: String,
        /// Parameter names (angles).
        params: Vec<String>,
        /// Operand (qubit) names.
        operands: Vec<String>,
        /// Body: gate applications over the operand names.
        body: Vec<GateApp>,
        /// Location.
        span: Span,
    },
    /// An executable statement.
    Stmt(Stmt),
}

/// An executable statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A gate (or subroutine) application.
    App(GateApp),
    /// `measure src -> dst;` (indexed or whole-register broadcast).
    Measure {
        /// Measured qubit operand.
        src: Operand,
        /// Destination classical operand.
        dst: Operand,
        /// Location.
        span: Span,
    },
    /// `reset target;`
    Reset {
        /// Target operand.
        target: Operand,
        /// Location.
        span: Span,
    },
    /// `barrier [targets];` — empty target list means all qubits.
    Barrier {
        /// Barrier operands (possibly empty).
        targets: Vec<Operand>,
        /// Location.
        span: Span,
    },
    /// `if (reg[index] == value) <gate application>`
    If {
        /// Classical register name.
        reg: String,
        /// Bit index within the register.
        index: usize,
        /// Compared value (0 or 1 in practice).
        value: u64,
        /// Conditionally-applied gate.
        app: GateApp,
        /// Location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::App(app) => app.span,
            Stmt::Measure { span, .. }
            | Stmt::Reset { span, .. }
            | Stmt::Barrier { span, .. }
            | Stmt::If { span, .. } => *span,
        }
    }
}

/// A gate or subroutine application: `name(params) operands;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GateApp {
    /// Gate or subroutine name as written.
    pub name: String,
    /// Angle-parameter expressions.
    pub params: Vec<Expr>,
    /// Qubit operands.
    pub operands: Vec<Operand>,
    /// Location.
    pub span: Span,
}

/// A register reference, optionally indexed: `q` or `q[3]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Operand {
    /// Register (or, inside a gate body, formal operand) name.
    pub reg: String,
    /// Index within the register; `None` means whole-register broadcast.
    pub index: Option<usize>,
    /// Location.
    pub span: Span,
}

impl Operand {
    /// An indexed operand.
    pub fn indexed(reg: impl Into<String>, index: usize, span: Span) -> Self {
        Operand {
            reg: reg.into(),
            index: Some(index),
            span,
        }
    }

    /// A whole-register operand.
    pub fn whole(reg: impl Into<String>, span: Span) -> Self {
        Operand {
            reg: reg.into(),
            index: None,
            span,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.reg, i),
            None => write!(f, "{}", self.reg),
        }
    }
}

/// An angle expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// The constant `pi`.
    Pi,
    /// An identifier (a gate-definition parameter).
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary arithmetic operators in angle expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Error evaluating an angle expression.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// The unresolved identifier, when that is the cause.
    pub unknown_ident: Option<String>,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unknown_ident {
            Some(name) => write!(f, "unknown parameter `{name}` in angle expression"),
            None => write!(f, "invalid angle expression"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Evaluates the expression with parameter bindings from `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when an identifier is not bound in `env`.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<f64>) -> Result<f64, EvalError> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Pi => Ok(std::f64::consts::PI),
            Expr::Ident(name) => env(name).ok_or_else(|| EvalError {
                unknown_ident: Some(name.clone()),
            }),
            Expr::Neg(inner) => Ok(-inner.eval(env)?),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                Ok(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                })
            }
        }
    }

    /// Evaluates with no parameter bindings (top-level context).
    pub fn eval_const(&self) -> Result<f64, EvalError> {
        self.eval(&|_| None)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Pi => write!(f, "pi"),
            Expr::Ident(name) => write!(f, "{name}"),
            Expr::Neg(inner) => write!(f, "-{inner}"),
            Expr::Bin { op, lhs, rhs } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_const() {
        let e = Expr::Bin {
            op: BinOp::Div,
            lhs: Box::new(Expr::Pi),
            rhs: Box::new(Expr::Num(2.0)),
        };
        let v = e.eval_const().unwrap();
        assert!((v - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn expr_eval_with_env() {
        let e = Expr::Neg(Box::new(Expr::Ident("theta".into())));
        let v = e.eval(&|name| (name == "theta").then_some(0.25)).unwrap();
        assert_eq!(v, -0.25);
        let err = e.eval_const().unwrap_err();
        assert_eq!(err.unknown_ident.as_deref(), Some("theta"));
    }

    #[test]
    fn operand_display() {
        let span = Span::default();
        assert_eq!(Operand::indexed("q", 3, span).to_string(), "q[3]");
        assert_eq!(Operand::whole("q", span).to_string(), "q");
    }

    #[test]
    fn program_accessors() {
        let program = Program {
            items: vec![
                Item::Import {
                    module: "qasmlite".into(),
                    version: "2.1".into(),
                    span: Span::default(),
                },
                Item::RegDecl {
                    kind: RegKind::Quantum,
                    name: "q".into(),
                    size: 3,
                    span: Span::default(),
                },
            ],
        };
        assert_eq!(program.imports().count(), 1);
        let regs: Vec<_> = program.registers().collect();
        assert_eq!(regs, vec![(RegKind::Quantum, "q", 3)]);
    }
}
