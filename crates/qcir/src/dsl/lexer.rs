//! Hand-written lexer for QasmLite.

use crate::diag::{DiagCode, Diagnostic, Span};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal; raw text kept so `import qasmlite 2.1` can recover
    /// the version string exactly.
    Number { value: f64, raw: String },
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `.`
    Dot,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number { raw, .. } => write!(f, "`{raw}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Dot => write!(f, "`.`"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its location.
    pub span: Span,
}

/// Tokenizes QasmLite source.
///
/// # Errors
///
/// Returns a [`Diagnostic`] with code [`DiagCode::LexError`] on the first
/// unrecognized character or malformed number.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, Diagnostic> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let n = bytes.len();

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            toks.push(SpannedTok {
                tok: $tok,
                span: Span::at(line, col),
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                // Line comment.
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            '+' => push!(Tok::Plus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '.' => push!(Tok::Dot, 1),
            '-' => {
                if i + 1 < n && bytes[i + 1] == b'>' {
                    push!(Tok::Arrow, 2);
                } else {
                    push!(Tok::Minus, 1);
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq, 2);
                } else {
                    return Err(Diagnostic::error(
                        DiagCode::LexError,
                        "stray `=` (did you mean `==`?)",
                        Span::at(line, col),
                    ));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < n && bytes[i] == b'.' && i + 1 < n && (bytes[i + 1] as char).is_ascii_digit()
                {
                    i += 1;
                    while i < n && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Scientific notation.
                if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < n && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < n && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let raw = &src[start..i];
                let value: f64 = raw.parse().map_err(|_| {
                    Diagnostic::error(
                        DiagCode::LexError,
                        format!("malformed number `{raw}`"),
                        Span::at(line, col),
                    )
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Number {
                        value,
                        raw: raw.to_string(),
                    },
                    span: Span::at(line, col),
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                toks.push(SpannedTok {
                    tok: Tok::Ident(text.to_string()),
                    span: Span::at(line, col),
                });
                col += (i - start) as u32;
            }
            other => {
                return Err(Diagnostic::error(
                    DiagCode::LexError,
                    format!("unrecognized character `{other}`"),
                    Span::at(line, col),
                ));
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_statement() {
        let toks = kinds("h q[0];");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("h".into()),
                Tok::Ident("q".into()),
                Tok::LBracket,
                Tok::Number {
                    value: 0.0,
                    raw: "0".into()
                },
                Tok::RBracket,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_eqeq() {
        let toks = kinds("measure q -> c; if (c[0] == 1)");
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::EqEq));
    }

    #[test]
    fn lexes_float_and_scientific() {
        let toks = kinds("rz(2.5) q[0]; rx(1e-3) q[0];");
        let nums: Vec<f64> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Number { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(nums.contains(&2.5));
        assert!(nums.contains(&1e-3));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("// a bell pair\nh q[0]; // comment\n");
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("h q[0];\ncx q[0], q[1];\n").unwrap();
        let cx = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("cx".into()))
            .unwrap();
        assert_eq!(cx.span.line, 2);
        assert_eq!(cx.span.col, 1);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("h q[0]; @").unwrap_err();
        assert_eq!(err.code, DiagCode::LexError);
        assert!(err.message.contains('@'));
    }

    #[test]
    fn stray_equals_is_an_error() {
        let err = lex("if (c = 1)").unwrap_err();
        assert_eq!(err.code, DiagCode::LexError);
    }

    #[test]
    fn version_raw_text_preserved() {
        let toks = lex("import qasmlite 2.1;").unwrap();
        let raw: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Number { raw, .. } => Some(raw.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(raw, vec!["2.1"]);
    }
}
