//! The QasmLite language: lexer, AST and parser.
//!
//! QasmLite is a small OpenQASM-flavoured language with one addition that
//! matters for this reproduction: **versioned imports**. A program begins
//! with `import qasmlite <version>;` and the semantic checker resolves every
//! gate name against that version's API surface, which is how
//! import/deprecation errors — the dominant LLM failure mode the paper
//! reports — arise mechanically here.
//!
//! ```text
//! import qasmlite 2.1;
//! qreg q[2];
//! creg c[2];
//! h q[0];
//! cx q[0], q[1];
//! measure q -> c;
//! ```
//!
//! Subroutines (`gate` definitions) model the "oracle" structure of
//! algorithm tasks:
//!
//! ```text
//! gate oracle a, b { cx a, b; }
//! oracle q[0], q[1];
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, GateApp, Item, Operand, Program, RegKind, Stmt};
pub use parser::parse;
