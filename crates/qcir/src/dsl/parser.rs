//! Recursive-descent parser for QasmLite.

use super::ast::{BinOp, Expr, GateApp, Item, Operand, Program, RegKind, Stmt};
use super::lexer::{lex, SpannedTok, Tok};
use crate::diag::{DiagCode, Diagnostic, Span};

/// Parses QasmLite source into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`Diagnostic`] encountered. The
/// multi-pass loop relies on parse errors being *specific* (token, location,
/// expectation) so the repair prompt carries enough signal.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .or_else(|| self.toks.last().map(|t| t.span))
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<SpannedTok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(DiagCode::ParseError, msg, self.span())
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Span, Diagnostic> {
        match self.peek() {
            Some(t) if t == tok => Ok(self.bump().expect("peeked").span),
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let t = self.bump().expect("peeked");
                match t.tok {
                    Tok::Ident(name) => Ok((name, t.span)),
                    _ => unreachable!(),
                }
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_usize(&mut self, what: &str) -> Result<(usize, Span), Diagnostic> {
        match self.peek() {
            Some(Tok::Number { value, .. }) => {
                let v = *value;
                let t = self.bump().expect("peeked");
                if v.fract() != 0.0 || v < 0.0 {
                    return Err(Diagnostic::error(
                        DiagCode::ParseError,
                        format!("expected a non-negative integer {what}, found `{v}`"),
                        t.span,
                    ));
                }
                Ok((v as usize, t.span))
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, Diagnostic> {
        match self.peek() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "import" => self.import(),
                "qreg" => self.reg_decl(RegKind::Quantum),
                "creg" => self.reg_decl(RegKind::Classical),
                "gate" => self.gate_def(),
                _ => Ok(Item::Stmt(self.stmt()?)),
            },
            Some(t) => Err(self.err(format!("expected a statement, found {t}"))),
            None => Err(self.err("expected a statement, found end of input")),
        }
    }

    fn import(&mut self) -> Result<Item, Diagnostic> {
        let (_, span) = self.expect_ident("`import`")?;
        // Dotted module path.
        let (first, _) = self.expect_ident("module name")?;
        let mut module = first;
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            let (part, _) = self.expect_ident("module path segment")?;
            module.push('.');
            module.push_str(&part);
        }
        // Version literal: a float like 2.1 lexes as a single number, but an
        // integer major version ("import qasmlite 2;") lexes as an integer.
        let version = match self.peek() {
            Some(Tok::Number { raw, .. }) => {
                let raw = raw.clone();
                self.bump();
                raw
            }
            Some(t) => return Err(self.err(format!("expected a version number, found {t}"))),
            None => return Err(self.err("expected a version number, found end of input")),
        };
        self.expect(&Tok::Semi, "`;` after import")?;
        Ok(Item::Import {
            module,
            version,
            span,
        })
    }

    fn reg_decl(&mut self, kind: RegKind) -> Result<Item, Diagnostic> {
        let (_, span) = self.expect_ident("register keyword")?;
        let (name, _) = self.expect_ident("register name")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let (size, _) = self.expect_usize("register size")?;
        self.expect(&Tok::RBracket, "`]`")?;
        self.expect(&Tok::Semi, "`;` after register declaration")?;
        Ok(Item::RegDecl {
            kind,
            name,
            size,
            span,
        })
    }

    fn gate_def(&mut self) -> Result<Item, Diagnostic> {
        let (_, span) = self.expect_ident("`gate`")?;
        let (name, _) = self.expect_ident("gate definition name")?;
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    let (p, _) = self.expect_ident("parameter name")?;
                    params.push(p);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "`)` after parameters")?;
        }
        let mut operands = Vec::new();
        loop {
            let (o, _) = self.expect_ident("operand name")?;
            operands.push(o);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::LBrace, "`{` opening the gate body")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unclosed gate body: expected `}`"));
            }
            body.push(self.gate_app()?);
        }
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(Item::GateDef {
            name,
            params,
            operands,
            body,
            span,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "measure" => self.measure(),
                "reset" => self.reset(),
                "barrier" => self.barrier(),
                "if" => self.if_stmt(),
                _ => Ok(Stmt::App(self.gate_app()?)),
            },
            Some(t) => Err(self.err(format!("expected a statement, found {t}"))),
            None => Err(self.err("expected a statement, found end of input")),
        }
    }

    fn measure(&mut self) -> Result<Stmt, Diagnostic> {
        let (_, span) = self.expect_ident("`measure`")?;
        let src = self.operand()?;
        self.expect(&Tok::Arrow, "`->` in measure statement")?;
        let dst = self.operand()?;
        self.expect(&Tok::Semi, "`;` after measure")?;
        Ok(Stmt::Measure { src, dst, span })
    }

    fn reset(&mut self) -> Result<Stmt, Diagnostic> {
        let (_, span) = self.expect_ident("`reset`")?;
        let target = self.operand()?;
        self.expect(&Tok::Semi, "`;` after reset")?;
        Ok(Stmt::Reset { target, span })
    }

    fn barrier(&mut self) -> Result<Stmt, Diagnostic> {
        let (_, span) = self.expect_ident("`barrier`")?;
        let mut targets = Vec::new();
        if self.peek() != Some(&Tok::Semi) {
            loop {
                targets.push(self.operand()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Semi, "`;` after barrier")?;
        Ok(Stmt::Barrier { targets, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let (_, span) = self.expect_ident("`if`")?;
        self.expect(&Tok::LParen, "`(` after `if`")?;
        let (reg, _) = self.expect_ident("classical register name")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let (index, _) = self.expect_usize("bit index")?;
        self.expect(&Tok::RBracket, "`]`")?;
        self.expect(&Tok::EqEq, "`==`")?;
        let (value, _) = self.expect_usize("comparison value")?;
        self.expect(&Tok::RParen, "`)` closing the condition")?;
        let app = self.gate_app()?;
        Ok(Stmt::If {
            reg,
            index,
            value: value as u64,
            app,
            span,
        })
    }

    fn gate_app(&mut self) -> Result<GateApp, Diagnostic> {
        let (name, span) = self.expect_ident("a gate name")?;
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    params.push(self.expr()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "`)` after gate parameters")?;
        }
        let mut operands = Vec::new();
        loop {
            operands.push(self.operand()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi, "`;` after gate application")?;
        Ok(GateApp {
            name,
            params,
            operands,
            span,
        })
    }

    fn operand(&mut self) -> Result<Operand, Diagnostic> {
        let (reg, span) = self.expect_ident("a register operand")?;
        if self.peek() == Some(&Tok::LBracket) {
            self.bump();
            let (index, _) = self.expect_usize("qubit index")?;
            self.expect(&Tok::RBracket, "`]`")?;
            Ok(Operand::indexed(reg, index, span))
        } else {
            Ok(Operand::whole(reg, span))
        }
    }

    // Expression grammar: term (+|- term)*; term: factor (*|/ factor)*;
    // factor: NUMBER | pi | IDENT | -factor | ( expr ).
    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek() {
            Some(Tok::Number { value, .. }) => {
                let v = *value;
                self.bump();
                Ok(Expr::Num(v))
            }
            Some(Tok::Ident(name)) if name == "pi" => {
                self.bump();
                Ok(Expr::Pi)
            }
            Some(Tok::Ident(_)) => {
                let (name, _) = self.expect_ident("parameter")?;
                Ok(Expr::Ident(name))
            }
            Some(Tok::Minus) => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)` closing the expression")?;
                Ok(e)
            }
            Some(t) => Err(self.err(format!("expected an angle expression, found {t}"))),
            None => Err(self.err("expected an angle expression, found end of input")),
        }
    }
}

// `peek2` is currently unused by the grammar but kept for forward-compat
// with lookahead-2 productions; silence the lint in a targeted way.
#[allow(dead_code)]
fn _peek2_is_api(p: &Parser) -> Option<&Tok> {
    p.peek2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bell_program() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;\n";
        let prog = parse(src).unwrap();
        assert_eq!(prog.items.len(), 6);
        assert_eq!(prog.imports().count(), 1);
        let (module, version, _) = prog.imports().next().unwrap();
        assert_eq!(module, "qasmlite");
        assert_eq!(version, "2.1");
    }

    #[test]
    fn parses_dotted_import() {
        let prog = parse("import qasmlite.gates 2.0;").unwrap();
        let (module, version, _) = prog.imports().next().unwrap();
        assert_eq!(module, "qasmlite.gates");
        assert_eq!(version, "2.0");
    }

    #[test]
    fn parses_parameterized_gates() {
        let prog = parse("qreg q[1]; rz(pi/2) q[0]; u(pi, 0.5, -pi/4) q[0];").unwrap();
        let apps: Vec<&GateApp> = prog
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Stmt(Stmt::App(app)) => Some(app),
                _ => None,
            })
            .collect();
        assert_eq!(apps.len(), 2);
        let angle = apps[0].params[0].eval_const().unwrap();
        assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(apps[1].params.len(), 3);
    }

    #[test]
    fn parses_gate_definition() {
        let src = "gate oracle a, b { cx a, b; x b; }\nqreg q[2];\noracle q[0], q[1];";
        let prog = parse(src).unwrap();
        let def = prog
            .items
            .iter()
            .find_map(|i| match i {
                Item::GateDef {
                    name,
                    body,
                    operands,
                    ..
                } => Some((name, body, operands)),
                _ => None,
            })
            .unwrap();
        assert_eq!(def.0, "oracle");
        assert_eq!(def.1.len(), 2);
        assert_eq!(def.2, &vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn parses_parameterized_gate_definition() {
        let src = "gate rot(theta) a { rz(theta) a; rx(theta/2) a; }";
        let prog = parse(src).unwrap();
        match &prog.items[0] {
            Item::GateDef { params, .. } => assert_eq!(params, &vec!["theta".to_string()]),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_conditional() {
        let src = "qreg q[1]; creg c[1]; if (c[0] == 1) x q[0];";
        let prog = parse(src).unwrap();
        let cond = prog
            .items
            .iter()
            .find_map(|i| match i {
                Item::Stmt(Stmt::If {
                    reg,
                    index,
                    value,
                    app,
                    ..
                }) => Some((reg.clone(), *index, *value, app.name.clone())),
                _ => None,
            })
            .unwrap();
        assert_eq!(cond, ("c".to_string(), 0, 1, "x".to_string()));
    }

    #[test]
    fn parses_whole_register_broadcast() {
        let prog = parse("qreg q[3]; h q; barrier q; measure q -> c;").unwrap();
        let h = prog
            .items
            .iter()
            .find_map(|i| match i {
                Item::Stmt(Stmt::App(app)) => Some(app.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(h.operands[0].index, None);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("qreg q[2]\nh q[0];").unwrap_err();
        assert_eq!(err.code, DiagCode::ParseError);
        assert!(err.message.contains("`;`"), "message: {}", err.message);
    }

    #[test]
    fn error_on_unclosed_gate_body() {
        let err = parse("gate f a { x a;").unwrap_err();
        assert_eq!(err.code, DiagCode::ParseError);
        assert!(err.message.contains("unclosed"), "{}", err.message);
    }

    #[test]
    fn error_on_garbage_operand() {
        let err = parse("qreg q[2]; cx q[0], ;").unwrap_err();
        assert_eq!(err.code, DiagCode::ParseError);
    }

    #[test]
    fn error_spans_point_at_offender() {
        let err = parse("qreg q[2];\ncx q[0] q[1];").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn parses_reset_and_barrier_forms() {
        let prog = parse("qreg q[2]; reset q[0]; barrier; barrier q[0], q[1];").unwrap();
        let stmts: Vec<&Stmt> = prog
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(matches!(stmts[0], Stmt::Reset { .. }));
        assert!(matches!(stmts[1], Stmt::Barrier { targets, .. } if targets.is_empty()));
        assert!(matches!(stmts[2], Stmt::Barrier { targets, .. } if targets.len() == 2));
    }
}
