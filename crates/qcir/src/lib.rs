//! # qcir — quantum circuit IR and the QasmLite language
//!
//! This crate is the "Qiskit substrate" of the qugen reproduction: it defines
//! the circuit intermediate representation that every other crate consumes,
//! plus **QasmLite**, the small Qiskit-flavoured textual language that the
//! simulated code LLM emits and the semantic-analyzer agent parses, checks
//! and repairs.
//!
//! The crate is organised as:
//!
//! * [`math`] — minimal complex-number and matrix helpers shared with `qsim`.
//! * [`gate`] — the gate set, with unitary matrices and inverses.
//! * [`circuit`] — the [`Circuit`] builder and its operations.
//! * [`dsl`] — lexer, AST and parser for QasmLite source text.
//! * [`api`] — a *versioned* API registry: which symbols exist, which are
//!   deprecated and which were removed in each library version. This powers
//!   the import/deprecation diagnostics that dominate the error traces in the
//!   reproduced paper.
//! * [`check`] — the semantic checker that turns a parsed program into either
//!   a [`Circuit`] or a structured list of [`Diagnostic`]s.
//! * [`fmt`] — the pretty-printer (round-trip tested against the parser).
//!
//! # Example
//!
//! ```
//! use qcir::circuit::Circuit;
//!
//! let mut bell = Circuit::new(2, 2);
//! bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
//! assert_eq!(bell.num_qubits(), 2);
//! assert_eq!(bell.depth(), 3);
//!
//! // The same circuit via QasmLite source:
//! let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;\n";
//! let program = qcir::dsl::parse(src).expect("parses");
//! let built = qcir::check::lower(&program).expect("checks");
//! assert_eq!(built.num_qubits(), 2);
//! ```

pub mod api;
pub mod check;
pub mod circuit;
pub mod diag;
pub mod draw;
pub mod dsl;
pub mod fmt;
pub mod gate;
pub mod math;
pub mod transpile;

pub use check::lower;
pub use circuit::{Circuit, Op};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use dsl::parse;
pub use gate::Gate;
pub use math::C64;
