//! The [`Circuit`] intermediate representation.
//!
//! A circuit is an ordered list of operations over `num_qubits` qubits and
//! `num_clbits` classical bits. The builder API mirrors Qiskit's
//! `QuantumCircuit` closely (`h`, `cx`, `measure`, …) so that reference
//! algorithms in `qalgo` read like their Qiskit counterparts.

use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// A single circuit operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Apply `gate` to the listed qubits (control(s) first, target last).
    Gate { gate: Gate, qubits: Vec<usize> },
    /// Measure a qubit into a classical bit (computational basis).
    Measure { qubit: usize, clbit: usize },
    /// Reset a qubit to |0>.
    Reset { qubit: usize },
    /// Scheduling barrier over the listed qubits (semantics: no-op).
    Barrier { qubits: Vec<usize> },
    /// Classically-controlled gate: applied iff `clbit` last measured `value`.
    CondGate {
        gate: Gate,
        qubits: Vec<usize>,
        clbit: usize,
        value: bool,
    },
}

impl Op {
    /// Qubits touched by this operation.
    pub fn qubits(&self) -> &[usize] {
        match self {
            Op::Gate { qubits, .. } | Op::Barrier { qubits } | Op::CondGate { qubits, .. } => {
                qubits
            }
            Op::Measure { qubit, .. } | Op::Reset { qubit } => std::slice::from_ref(qubit),
        }
    }

    /// `true` for measurement operations.
    pub fn is_measure(&self) -> bool {
        matches!(self, Op::Measure { .. })
    }
}

/// An error produced by fallible circuit construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit index was out of range.
    QubitOutOfRange { index: usize, num_qubits: usize },
    /// A classical bit index was out of range.
    ClbitOutOfRange { index: usize, num_clbits: usize },
    /// The same qubit appeared twice in one multi-qubit gate.
    DuplicateQubit { index: usize },
    /// The gate arity did not match the number of qubit operands.
    ArityMismatch { expected: usize, got: usize },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { index, num_qubits } => {
                write!(
                    f,
                    "qubit index {index} out of range for {num_qubits} qubits"
                )
            }
            CircuitError::ClbitOutOfRange { index, num_clbits } => {
                write!(
                    f,
                    "classical bit index {index} out of range for {num_clbits} bits"
                )
            }
            CircuitError::DuplicateQubit { index } => {
                write!(f, "qubit {index} used more than once in a single gate")
            }
            CircuitError::ArityMismatch { expected, got } => {
                write!(f, "gate expects {expected} qubits but {got} were given")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A quantum circuit: qubits, classical bits and an ordered operation list.
///
/// ```
/// use qcir::circuit::Circuit;
/// let mut qc = Circuit::new(3, 3);
/// qc.h(0).cx(0, 1).cx(1, 2);
/// qc.measure_all();
/// assert_eq!(qc.len(), 6);
/// assert_eq!(qc.count_gate("cx"), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit with the given register sizes.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Operation list, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates and appends an operation.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when indices are out of range, duplicated
    /// within one gate, or the operand count does not match the gate arity.
    pub fn try_push(&mut self, op: Op) -> Result<(), CircuitError> {
        match &op {
            Op::Gate { gate, qubits } | Op::CondGate { gate, qubits, .. } => {
                if qubits.len() != gate.num_qubits() {
                    return Err(CircuitError::ArityMismatch {
                        expected: gate.num_qubits(),
                        got: qubits.len(),
                    });
                }
                for (i, &q) in qubits.iter().enumerate() {
                    if q >= self.num_qubits {
                        return Err(CircuitError::QubitOutOfRange {
                            index: q,
                            num_qubits: self.num_qubits,
                        });
                    }
                    if qubits[..i].contains(&q) {
                        return Err(CircuitError::DuplicateQubit { index: q });
                    }
                }
                if let Op::CondGate { clbit, .. } = &op {
                    if *clbit >= self.num_clbits {
                        return Err(CircuitError::ClbitOutOfRange {
                            index: *clbit,
                            num_clbits: self.num_clbits,
                        });
                    }
                }
            }
            Op::Measure { qubit, clbit } => {
                if *qubit >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        index: *qubit,
                        num_qubits: self.num_qubits,
                    });
                }
                if *clbit >= self.num_clbits {
                    return Err(CircuitError::ClbitOutOfRange {
                        index: *clbit,
                        num_clbits: self.num_clbits,
                    });
                }
            }
            Op::Reset { qubit } => {
                if *qubit >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        index: *qubit,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            Op::Barrier { qubits } => {
                for &q in qubits {
                    if q >= self.num_qubits {
                        return Err(CircuitError::QubitOutOfRange {
                            index: q,
                            num_qubits: self.num_qubits,
                        });
                    }
                }
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Appends a gate, panicking on invalid operands.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions [`Circuit::try_push`] errors; the
    /// builder methods below are intended for statically-known-good circuits
    /// (reference algorithms), while generated code goes through `try_push`.
    pub fn push_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.try_push(Op::Gate {
            gate,
            qubits: qubits.to_vec(),
        })
        .expect("invalid gate operands");
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::H, &[q])
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::X, &[q])
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Y, &[q])
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Z, &[q])
    }

    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::S, &[q])
    }

    /// S-dagger on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Sdg, &[q])
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::T, &[q])
    }

    /// T-dagger on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Tdg, &[q])
    }

    /// X-rotation on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RX(theta), &[q])
    }

    /// Y-rotation on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RY(theta), &[q])
    }

    /// Z-rotation on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RZ(theta), &[q])
    }

    /// Phase gate on `q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::P(lambda), &[q])
    }

    /// General single-qubit unitary on `q`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::U(theta, phi, lambda), &[q])
    }

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CX, &[control, target])
    }

    /// Controlled-Y.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CY, &[control, target])
    }

    /// Controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CZ, &[control, target])
    }

    /// Controlled-H.
    pub fn ch(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CH, &[control, target])
    }

    /// Swap two qubits.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::SWAP, &[a, b])
    }

    /// Controlled phase.
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CP(lambda), &[control, target])
    }

    /// Controlled RZ.
    pub fn crz(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CRZ(theta), &[control, target])
    }

    /// Toffoli gate.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CCX, &[c0, c1, target])
    }

    /// Fredkin gate.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::CSWAP, &[control, a, b])
    }

    /// Measures `qubit` into `clbit`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Self {
        self.try_push(Op::Measure { qubit, clbit })
            .expect("invalid measure operands");
        self
    }

    /// Measures qubit `i` into classical bit `i` for all qubits.
    ///
    /// # Panics
    ///
    /// Panics when `num_clbits < num_qubits`.
    pub fn measure_all(&mut self) -> &mut Self {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all needs at least as many classical bits as qubits"
        );
        for q in 0..self.num_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Resets `qubit` to |0>.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        self.try_push(Op::Reset { qubit }).expect("invalid reset");
        self
    }

    /// Barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qubits: Vec<usize> = (0..self.num_qubits).collect();
        self.try_push(Op::Barrier { qubits }).expect("barrier");
        self
    }

    /// Classically-conditioned gate: applies `gate` when `clbit == value`.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn cond_gate(
        &mut self,
        gate: Gate,
        qubits: &[usize],
        clbit: usize,
        value: bool,
    ) -> &mut Self {
        self.try_push(Op::CondGate {
            gate,
            qubits: qubits.to_vec(),
            clbit,
            value,
        })
        .expect("invalid conditional gate");
        self
    }

    /// Appends all operations of `other` (registers must be compatible).
    ///
    /// # Panics
    ///
    /// Panics when `other` uses more qubits or clbits than `self` has.
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.num_qubits <= self.num_qubits);
        assert!(other.num_clbits <= self.num_clbits);
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Returns the inverse of the unitary portion of this circuit.
    ///
    /// Measurements, resets and conditionals are skipped (they have no
    /// inverse); barriers are preserved in reversed position.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.num_qubits, self.num_clbits);
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate { gate, qubits } => {
                    inv.ops.push(Op::Gate {
                        gate: gate.inverse(),
                        qubits: qubits.clone(),
                    });
                }
                Op::Barrier { qubits } => inv.ops.push(Op::Barrier {
                    qubits: qubits.clone(),
                }),
                _ => {}
            }
        }
        inv
    }

    /// Circuit depth: longest chain of operations per qubit/clbit timeline.
    /// Barriers synchronise but do not add depth.
    pub fn depth(&self) -> usize {
        let mut qdepth = vec![0usize; self.num_qubits];
        let mut cdepth = vec![0usize; self.num_clbits];
        for op in &self.ops {
            match op {
                Op::Barrier { qubits } => {
                    let level = qubits.iter().map(|&q| qdepth[q]).max().unwrap_or(0);
                    for &q in qubits {
                        qdepth[q] = level;
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let level = qdepth[*qubit].max(cdepth[*clbit]) + 1;
                    qdepth[*qubit] = level;
                    cdepth[*clbit] = level;
                }
                Op::Reset { qubit } => {
                    qdepth[*qubit] += 1;
                }
                Op::Gate { qubits, .. } => {
                    let level = qubits.iter().map(|&q| qdepth[q]).max().unwrap_or(0) + 1;
                    for &q in qubits {
                        qdepth[q] = level;
                    }
                }
                Op::CondGate { qubits, clbit, .. } => {
                    let level = qubits
                        .iter()
                        .map(|&q| qdepth[q])
                        .max()
                        .unwrap_or(0)
                        .max(cdepth[*clbit])
                        + 1;
                    for &q in qubits {
                        qdepth[q] = level;
                    }
                    cdepth[*clbit] = level;
                }
            }
        }
        qdepth.into_iter().chain(cdepth).max().unwrap_or(0)
    }

    /// Per-gate-name operation counts (measure/reset/barrier excluded).
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for op in &self.ops {
            if let Op::Gate { gate, .. } | Op::CondGate { gate, .. } = op {
                *counts.entry(gate.name()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Count of a specific gate by canonical name.
    pub fn count_gate(&self, name: &str) -> usize {
        self.gate_counts().get(name).copied().unwrap_or(0)
    }

    /// Number of measurement operations.
    pub fn num_measurements(&self) -> usize {
        self.ops.iter().filter(|op| op.is_measure()).count()
    }

    /// `true` when every operation is Clifford (plus measure/reset/barrier),
    /// so the circuit is stabilizer-simulable.
    pub fn is_clifford(&self) -> bool {
        self.ops.iter().all(|op| match op {
            Op::Gate { gate, .. } | Op::CondGate { gate, .. } => gate.is_clifford(),
            _ => true,
        })
    }

    /// `true` when the circuit contains no measurement into classical bits,
    /// i.e. it is a pure unitary (barriers/resets excluded too).
    pub fn is_unitary_only(&self) -> bool {
        self.ops
            .iter()
            .all(|op| matches!(op, Op::Gate { .. } | Op::Barrier { .. }))
    }
}

impl Extend<Op> for Circuit {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        for op in iter {
            self.try_push(op).expect("invalid op in extend");
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::fmt::to_qasmlite(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        assert_eq!(qc.len(), 4);
        assert_eq!(qc.num_measurements(), 2);
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut qc = Circuit::new(2, 1);
        let err = qc
            .try_push(Op::Gate {
                gate: Gate::H,
                qubits: vec![5],
            })
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                index: 5,
                num_qubits: 2
            }
        );
    }

    #[test]
    fn try_push_rejects_duplicate_qubits() {
        let mut qc = Circuit::new(2, 0);
        let err = qc
            .try_push(Op::Gate {
                gate: Gate::CX,
                qubits: vec![1, 1],
            })
            .unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { index: 1 });
    }

    #[test]
    fn try_push_rejects_arity_mismatch() {
        let mut qc = Circuit::new(3, 0);
        let err = qc
            .try_push(Op::Gate {
                gate: Gate::CX,
                qubits: vec![0, 1, 2],
            })
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::ArityMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn try_push_rejects_bad_clbit() {
        let mut qc = Circuit::new(1, 1);
        let err = qc.try_push(Op::Measure { qubit: 0, clbit: 3 }).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ClbitOutOfRange {
                index: 3,
                num_clbits: 1
            }
        );
    }

    #[test]
    fn depth_counts_parallel_gates_once() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1); // parallel layer
        assert_eq!(qc.depth(), 1);
        qc.cx(0, 1);
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn depth_of_bell_with_measures() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = Circuit::new(1, 0);
        qc.h(0).s(0).t(0);
        let inv = qc.inverse();
        let names: Vec<&str> = inv
            .ops()
            .iter()
            .map(|op| match op {
                Op::Gate { gate, .. } => gate.name(),
                _ => "?",
            })
            .collect();
        assert_eq!(names, vec!["tdg", "sdg", "h"]);
    }

    #[test]
    fn gate_counts_and_clifford() {
        let mut qc = Circuit::new(3, 0);
        qc.h(0).cx(0, 1).cx(1, 2).t(2);
        assert_eq!(qc.count_gate("cx"), 2);
        assert_eq!(qc.count_gate("h"), 1);
        assert!(!qc.is_clifford());
        let mut cliff = Circuit::new(2, 0);
        cliff.h(0).cx(0, 1).s(1);
        assert!(cliff.is_clifford());
    }

    #[test]
    fn compose_appends() {
        let mut a = Circuit::new(2, 2);
        a.h(0);
        let mut b = Circuit::new(2, 2);
        b.cx(0, 1);
        a.compose(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "measure_all")]
    fn measure_all_requires_clbits() {
        let mut qc = Circuit::new(3, 1);
        qc.measure_all();
    }
}
