//! ASCII circuit rendering.
//!
//! Produces a fixed-width textual diagram of a circuit, one row per qubit
//! (plus a classical row when measurements exist). Used by the examples
//! and agent transcripts to show generated programs visually.
//!
//! ```
//! use qcir::circuit::Circuit;
//! let mut bell = Circuit::new(2, 2);
//! bell.h(0).cx(0, 1).measure_all();
//! let art = qcir::draw::draw(&bell);
//! assert!(art.contains("H"));
//! assert!(art.contains("●"));
//! ```

use crate::circuit::{Circuit, Op};
use crate::gate::Gate;

/// One rendered column: the glyph per qubit row.
struct Column {
    cells: Vec<String>,
}

/// Renders the circuit as ASCII art.
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    let mut columns: Vec<Column> = Vec::new();
    // Per-qubit index of the last column that touched it (for packing).
    let mut frontier = vec![0usize; n];

    let place = |columns: &mut Vec<Column>,
                 frontier: &mut Vec<usize>,
                 qubits: &[usize],
                 glyphs: Vec<(usize, String)>| {
        let lo = *qubits.iter().min().expect("non-empty");
        let hi = *qubits.iter().max().expect("non-empty");
        // The occupied span is the full vertical range (connectors).
        let col_idx = (lo..=hi).map(|q| frontier[q]).max().unwrap_or(0);
        while columns.len() <= col_idx {
            columns.push(Column {
                cells: vec![String::new(); n],
            });
        }
        let col = &mut columns[col_idx];
        // Vertical connector through the span.
        for q in lo..=hi {
            if col.cells[q].is_empty() {
                col.cells[q] = "│".to_string();
            }
        }
        for (q, g) in glyphs {
            col.cells[q] = g;
        }
        for f in frontier.iter_mut().take(hi + 1).skip(lo) {
            *f = col_idx + 1;
        }
    };

    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } | Op::CondGate { gate, qubits, .. } => {
                let glyphs = gate_glyphs(gate, qubits);
                let mut rendered: Vec<(usize, String)> = glyphs;
                if let Op::CondGate { clbit, value, .. } = op {
                    // Annotate the first glyph with the condition.
                    if let Some(first) = rendered.first_mut() {
                        first.1 = format!("{}?c{}={}", first.1, clbit, u8::from(*value));
                    }
                }
                place(&mut columns, &mut frontier, qubits, rendered);
            }
            Op::Measure { qubit, clbit } => {
                place(
                    &mut columns,
                    &mut frontier,
                    &[*qubit],
                    vec![(*qubit, format!("M→c{clbit}"))],
                );
            }
            Op::Reset { qubit } => {
                place(
                    &mut columns,
                    &mut frontier,
                    &[*qubit],
                    vec![(*qubit, "|0⟩".to_string())],
                );
            }
            Op::Barrier { qubits } => {
                if qubits.is_empty() {
                    continue;
                }
                let glyphs = qubits.iter().map(|&q| (q, "░".to_string())).collect();
                place(&mut columns, &mut frontier, qubits, glyphs);
            }
        }
    }

    // Column widths.
    let widths: Vec<usize> = columns
        .iter()
        .map(|c| {
            c.cells
                .iter()
                .map(|s| s.chars().count())
                .max()
                .unwrap_or(1)
                .max(1)
        })
        .collect();
    let mut out = String::new();
    for q in 0..n {
        out.push_str(&format!("q{q:<2}: "));
        for (col, width) in columns.iter().zip(&widths) {
            let cell = &col.cells[q];
            if cell.is_empty() {
                // Plain wire.
                out.push_str(&"─".repeat(width + 2));
            } else {
                let pad = width - cell.chars().count();
                let left = pad / 2;
                let right = pad - left;
                out.push('─');
                out.push_str(&"─".repeat(left));
                out.push_str(cell);
                out.push_str(&"─".repeat(right));
                out.push('─');
            }
        }
        out.push('\n');
    }
    out
}

/// Glyphs for a gate: controls get `●`, targets get their symbol.
fn gate_glyphs(gate: &Gate, qubits: &[usize]) -> Vec<(usize, String)> {
    use Gate::*;
    match gate {
        CX => vec![(qubits[0], "●".into()), (qubits[1], "⊕".into())],
        CY => vec![(qubits[0], "●".into()), (qubits[1], "Y".into())],
        CZ => vec![(qubits[0], "●".into()), (qubits[1], "●".into())],
        CH => vec![(qubits[0], "●".into()), (qubits[1], "H".into())],
        CCX => vec![
            (qubits[0], "●".into()),
            (qubits[1], "●".into()),
            (qubits[2], "⊕".into()),
        ],
        CSWAP => vec![
            (qubits[0], "●".into()),
            (qubits[1], "✕".into()),
            (qubits[2], "✕".into()),
        ],
        SWAP => vec![(qubits[0], "✕".into()), (qubits[1], "✕".into())],
        CRX(a) | CRY(a) | CRZ(a) | CP(a) => {
            let name = gate.name().to_uppercase();
            vec![
                (qubits[0], "●".into()),
                (qubits[1], format!("{}({a:.2})", &name[1..])),
            ]
        }
        RX(a) | RY(a) | RZ(a) | P(a) => {
            vec![(qubits[0], format!("{}({a:.2})", gate.name().to_uppercase()))]
        }
        U(t, p, l) => vec![(qubits[0], format!("U({t:.2},{p:.2},{l:.2})"))],
        g => vec![(qubits[0], g.name().to_uppercase())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_diagram_has_expected_glyphs() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let art = draw(&qc);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('H'), "{art}");
        assert!(art.contains('●'), "{art}");
        assert!(art.contains('⊕'), "{art}");
        assert!(art.contains("M→c0"), "{art}");
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1);
        let art = draw(&qc);
        // Both H's land in the same column: each row has exactly one H and
        // the rows are the same length.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
        let col0 = lines[0].chars().position(|c| c == 'H');
        let col1 = lines[1].chars().position(|c| c == 'H');
        assert_eq!(col0, col1, "{art}");
    }

    #[test]
    fn ccx_draws_two_controls() {
        let mut qc = Circuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let art = draw(&qc);
        assert_eq!(art.matches('●').count(), 2);
        assert_eq!(art.matches('⊕').count(), 1);
    }

    #[test]
    fn connector_spans_gap_qubits() {
        let mut qc = Circuit::new(3, 0);
        qc.cx(0, 2);
        let art = draw(&qc);
        let mid = art.lines().nth(1).expect("3 rows");
        assert!(mid.contains('│'), "{art}");
    }

    #[test]
    fn conditional_annotation() {
        let mut qc = Circuit::new(1, 1);
        qc.measure(0, 0);
        qc.cond_gate(crate::gate::Gate::X, &[0], 0, true);
        let art = draw(&qc);
        assert!(art.contains("X?c0=1"), "{art}");
    }

    #[test]
    fn rotation_angles_are_rendered() {
        let mut qc = Circuit::new(1, 0);
        qc.rz(0.5, 0);
        let art = draw(&qc);
        assert!(art.contains("RZ(0.50)"), "{art}");
    }

    #[test]
    fn empty_circuit_is_empty_art() {
        let qc = Circuit::new(0, 0);
        assert!(draw(&qc).is_empty());
        let wire_only = Circuit::new(2, 0);
        let art = draw(&wire_only);
        assert_eq!(art.lines().count(), 2);
    }
}
