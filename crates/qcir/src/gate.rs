//! The QasmLite gate set.
//!
//! Each [`Gate`] knows its arity, parameters, canonical (current-version)
//! name, inverse and unitary matrix. The set mirrors the Qiskit standard
//! library closely enough that the corruption channels in `qlm` can emit the
//! same class of mistakes an LLM makes against Qiskit (deprecated aliases,
//! wrong parameter counts, bad arity).

use crate::math::{Matrix, C64, FRAC_1_SQRT_2};
use std::fmt;

/// A quantum gate with bound parameters.
///
/// ```
/// use qcir::gate::Gate;
/// assert_eq!(Gate::H.num_qubits(), 1);
/// assert_eq!(Gate::CX.num_qubits(), 2);
/// assert_eq!(Gate::RZ(0.5).inverse(), Gate::RZ(-0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit no-op; kept because noise attaches to it).
    Id,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// S-dagger.
    Sdg,
    /// T = sqrt(S).
    T,
    /// T-dagger.
    Tdg,
    /// sqrt(X).
    SX,
    /// X-rotation by the given angle.
    RX(f64),
    /// Y-rotation by the given angle.
    RY(f64),
    /// Z-rotation by the given angle.
    RZ(f64),
    /// Phase rotation `diag(1, e^{i lambda})`.
    P(f64),
    /// General single-qubit unitary `U(theta, phi, lambda)`.
    U(f64, f64, f64),
    /// Controlled-X.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled-H.
    CH,
    /// Swap.
    SWAP,
    /// Controlled RX.
    CRX(f64),
    /// Controlled RY.
    CRY(f64),
    /// Controlled RZ.
    CRZ(f64),
    /// Controlled phase.
    CP(f64),
    /// Toffoli (CCX).
    CCX,
    /// Controlled swap (Fredkin).
    CSWAP,
}

impl Gate {
    /// Number of qubits this gate acts on.
    pub fn num_qubits(&self) -> usize {
        use Gate::*;
        match self {
            Id | H | X | Y | Z | S | Sdg | T | Tdg | SX | RX(_) | RY(_) | RZ(_) | P(_) | U(..) => 1,
            CX | CY | CZ | CH | SWAP | CRX(_) | CRY(_) | CRZ(_) | CP(_) => 2,
            CCX | CSWAP => 3,
        }
    }

    /// Number of angle parameters the gate carries.
    pub fn num_params(&self) -> usize {
        use Gate::*;
        match self {
            RX(_) | RY(_) | RZ(_) | P(_) | CRX(_) | CRY(_) | CRZ(_) | CP(_) => 1,
            U(..) => 3,
            _ => 0,
        }
    }

    /// The gate's parameters in declaration order.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match *self {
            RX(a) | RY(a) | RZ(a) | P(a) | CRX(a) | CRY(a) | CRZ(a) | CP(a) => vec![a],
            U(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// Canonical (current library version) lowercase name.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            Id => "id",
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SX => "sx",
            RX(_) => "rx",
            RY(_) => "ry",
            RZ(_) => "rz",
            P(_) => "p",
            U(..) => "u",
            CX => "cx",
            CY => "cy",
            CZ => "cz",
            CH => "ch",
            SWAP => "swap",
            CRX(_) => "crx",
            CRY(_) => "cry",
            CRZ(_) => "crz",
            CP(_) => "cp",
            CCX => "ccx",
            CSWAP => "cswap",
        }
    }

    /// Constructs a gate from a canonical name and parameter list.
    ///
    /// Returns `None` for unknown names or wrong parameter counts; callers in
    /// the checker convert that into a diagnostic rather than a panic.
    pub fn from_name(name: &str, params: &[f64]) -> Option<Gate> {
        use Gate::*;
        let gate = match (name, params.len()) {
            ("id", 0) => Id,
            ("h", 0) => H,
            ("x", 0) => X,
            ("y", 0) => Y,
            ("z", 0) => Z,
            ("s", 0) => S,
            ("sdg", 0) => Sdg,
            ("t", 0) => T,
            ("tdg", 0) => Tdg,
            ("sx", 0) => SX,
            ("rx", 1) => RX(params[0]),
            ("ry", 1) => RY(params[0]),
            ("rz", 1) => RZ(params[0]),
            ("p", 1) => P(params[0]),
            ("u", 3) => U(params[0], params[1], params[2]),
            ("cx", 0) => CX,
            ("cy", 0) => CY,
            ("cz", 0) => CZ,
            ("ch", 0) => CH,
            ("swap", 0) => SWAP,
            ("crx", 1) => CRX(params[0]),
            ("cry", 1) => CRY(params[0]),
            ("crz", 1) => CRZ(params[0]),
            ("cp", 1) => CP(params[0]),
            ("ccx", 0) => CCX,
            ("cswap", 0) => CSWAP,
            _ => return None,
        };
        Some(gate)
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match *self {
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            // SX^dagger equals U(pi/2, pi/2, -pi/2) up to global phase.
            SX => U(
                std::f64::consts::FRAC_PI_2,
                std::f64::consts::FRAC_PI_2,
                -std::f64::consts::FRAC_PI_2,
            ),
            RX(a) => RX(-a),
            RY(a) => RY(-a),
            RZ(a) => RZ(-a),
            P(a) => P(-a),
            U(t, p, l) => U(-t, -l, -p),
            CRX(a) => CRX(-a),
            CRY(a) => CRY(-a),
            CRZ(a) => CRZ(-a),
            CP(a) => CP(-a),
            g => g, // self-inverse: Id, H, X, Y, Z, CX, CY, CZ, CH, SWAP, CCX, CSWAP
        }
    }

    /// `true` when the gate is in the Clifford group (stabilizer-simulable).
    pub fn is_clifford(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            Id | H | X | Y | Z | S | Sdg | SX | CX | CY | CZ | SWAP
        )
    }

    /// The gate's unitary as a dense matrix over its own qubits.
    ///
    /// Qubit 0 of the gate is the **most significant** bit of the matrix
    /// index (big-endian), matching the convention used by the executor.
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::I;
        let h = C64::real(FRAC_1_SQRT_2);
        match *self {
            Id => Matrix::identity(2),
            H => Matrix::from_rows(2, &[h, h, h, -h]),
            X => Matrix::from_rows(2, &[z, o, o, z]),
            Y => Matrix::from_rows(2, &[z, -i, i, z]),
            Z => Matrix::from_rows(2, &[o, z, z, -o]),
            S => Matrix::from_rows(2, &[o, z, z, i]),
            Sdg => Matrix::from_rows(2, &[o, z, z, -i]),
            T => Matrix::from_rows(2, &[o, z, z, C64::cis(std::f64::consts::FRAC_PI_4)]),
            Tdg => Matrix::from_rows(2, &[o, z, z, C64::cis(-std::f64::consts::FRAC_PI_4)]),
            SX => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                Matrix::from_rows(2, &[a, b, b, a])
            }
            RX(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                Matrix::from_rows(2, &[c, s, s, c])
            }
            RY(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                Matrix::from_rows(2, &[c, -s, s, c])
            }
            RZ(t) => Matrix::from_rows(2, &[C64::cis(-t / 2.0), z, z, C64::cis(t / 2.0)]),
            P(l) => Matrix::from_rows(2, &[o, z, z, C64::cis(l)]),
            U(t, p, l) => {
                let ct = C64::real((t / 2.0).cos());
                let st = (t / 2.0).sin();
                Matrix::from_rows(
                    2,
                    &[
                        ct,
                        C64::cis(l) * (-st),
                        C64::cis(p) * st,
                        C64::cis(p + l) * ct,
                    ],
                )
            }
            CX | CY | CZ | CH | CRX(_) | CRY(_) | CRZ(_) | CP(_) => {
                let target = match *self {
                    CX => X,
                    CY => Y,
                    CZ => Z,
                    CH => H,
                    CRX(a) => RX(a),
                    CRY(a) => RY(a),
                    CRZ(a) => RZ(a),
                    CP(a) => P(a),
                    _ => unreachable!(),
                };
                controlled(&target.matrix())
            }
            SWAP => {
                let mut m = Matrix::zeros(4);
                m[(0, 0)] = o;
                m[(1, 2)] = o;
                m[(2, 1)] = o;
                m[(3, 3)] = o;
                m
            }
            CCX => {
                let mut m = Matrix::identity(8);
                m[(6, 6)] = z;
                m[(7, 7)] = z;
                m[(6, 7)] = o;
                m[(7, 6)] = o;
                m
            }
            CSWAP => {
                let mut m = Matrix::identity(8);
                m[(5, 5)] = z;
                m[(6, 6)] = z;
                m[(5, 6)] = o;
                m[(6, 5)] = o;
                m
            }
        }
    }
}

/// Structural classification of a gate's unitary, used by simulators to
/// dispatch to specialized kernels instead of dense matrix multiplication.
///
/// The variants mirror how the amplitudes actually move: diagonal gates are
/// pure phase multiplies, `FlipX`-shaped gates are index permutations, and
/// only genuinely dense 2x2 blocks need a butterfly update. Operand roles
/// follow the gate's own operand order: for controlled variants operand 0 is
/// the control, and for [`GateKind::ControlledSwap`] operands 1 and 2 are
/// exchanged.
///
/// ```
/// use qcir::gate::{Gate, GateKind};
/// assert!(matches!(Gate::CX.kind(), GateKind::ControlledFlipX));
/// assert!(matches!(Gate::Z.kind(), GateKind::Diagonal1 { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateKind {
    /// The identity: nothing to do.
    Identity,
    /// `diag(d0, d1)` on one qubit (Z, S, T, P, RZ and their inverses).
    Diagonal1 {
        /// Phase on the |0> component.
        d0: C64,
        /// Phase on the |1> component.
        d1: C64,
    },
    /// Pauli-X: swaps the |0> and |1> amplitudes of one qubit.
    FlipX,
    /// A dense single-qubit unitary, row-major `[m00, m01, m10, m11]`.
    Dense1 {
        /// Row-major 2x2 matrix entries.
        m: [C64; 4],
    },
    /// `diag(d0, d1)` on operand 1, applied when operand 0 is set
    /// (CZ, CP, CRZ).
    ControlledDiagonal1 {
        /// Phase on the target's |0> component within the control subspace.
        d0: C64,
        /// Phase on the target's |1> component within the control subspace.
        d1: C64,
    },
    /// CX: flips operand 1 when operand 0 is set.
    ControlledFlipX,
    /// A dense single-qubit unitary on operand 1 when operand 0 is set
    /// (CY, CH, CRX, CRY).
    ControlledDense1 {
        /// Row-major 2x2 matrix entries of the target unitary.
        m: [C64; 4],
    },
    /// Exchanges the amplitudes of operands 0 and 1.
    Swap,
    /// Toffoli: flips operand 2 when operands 0 and 1 are both set.
    DoublyControlledFlipX,
    /// Fredkin: exchanges operands 1 and 2 when operand 0 is set.
    ControlledSwap,
    /// No exploitable structure; simulators should fall back to the dense
    /// [`Gate::matrix`] path. Unused by the built-in gate set but kept so
    /// downstream matches stay total when gates are added.
    General,
}

/// Test-only instrumentation counting [`Gate::kind`] calls (debug builds
/// only; compiled out of release binaries so the hot path pays nothing).
///
/// The compiled-plan layer in `qsim` promises that warm cached-plan runs
/// perform **zero** `kind()` calls — classification happens once at plan
/// compile time, never per gate application. These counters let an
/// integration test pin that promise: [`kind_stats::reset`] before the warm
/// run, [`kind_stats::calls`] after, assert zero. The counter is a single
/// relaxed atomic shared by all threads, so tests that read it must run in
/// their own test binary (no concurrent `kind()` callers).
#[cfg(debug_assertions)]
pub mod kind_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CALLS: AtomicU64 = AtomicU64::new(0);

    /// Number of [`super::Gate::kind`] calls since the last [`reset`].
    pub fn calls() -> u64 {
        CALLS.load(Ordering::Relaxed)
    }

    /// Zeroes the call counter.
    pub fn reset() {
        CALLS.store(0, Ordering::Relaxed);
    }

    pub(super) fn record() {
        CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

impl Gate {
    /// Classifies the gate's unitary structure for kernel dispatch.
    ///
    /// Allocation-free (returns matrix entries inline), so simulators can
    /// call it per gate application. The returned entries agree exactly with
    /// [`Gate::matrix`].
    pub fn kind(&self) -> GateKind {
        use Gate::*;
        #[cfg(debug_assertions)]
        kind_stats::record();
        let o = C64::ONE;
        let i = C64::I;
        let h = C64::real(FRAC_1_SQRT_2);
        match *self {
            Id => GateKind::Identity,
            X => GateKind::FlipX,
            Z => GateKind::Diagonal1 { d0: o, d1: -o },
            S => GateKind::Diagonal1 { d0: o, d1: i },
            Sdg => GateKind::Diagonal1 { d0: o, d1: -i },
            T => GateKind::Diagonal1 {
                d0: o,
                d1: C64::cis(std::f64::consts::FRAC_PI_4),
            },
            Tdg => GateKind::Diagonal1 {
                d0: o,
                d1: C64::cis(-std::f64::consts::FRAC_PI_4),
            },
            P(l) => GateKind::Diagonal1 {
                d0: o,
                d1: C64::cis(l),
            },
            RZ(t) => GateKind::Diagonal1 {
                d0: C64::cis(-t / 2.0),
                d1: C64::cis(t / 2.0),
            },
            H => GateKind::Dense1 { m: [h, h, h, -h] },
            Y => GateKind::Dense1 {
                m: [C64::ZERO, -i, i, C64::ZERO],
            },
            SX => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                GateKind::Dense1 { m: [a, b, b, a] }
            }
            RX(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                GateKind::Dense1 { m: [c, s, s, c] }
            }
            RY(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                GateKind::Dense1 { m: [c, -s, s, c] }
            }
            U(t, p, l) => {
                let ct = C64::real((t / 2.0).cos());
                let st = (t / 2.0).sin();
                GateKind::Dense1 {
                    m: [
                        ct,
                        C64::cis(l) * (-st),
                        C64::cis(p) * st,
                        C64::cis(p + l) * ct,
                    ],
                }
            }
            CX => GateKind::ControlledFlipX,
            CZ => GateKind::ControlledDiagonal1 { d0: o, d1: -o },
            CP(l) => GateKind::ControlledDiagonal1 {
                d0: o,
                d1: C64::cis(l),
            },
            CRZ(t) => GateKind::ControlledDiagonal1 {
                d0: C64::cis(-t / 2.0),
                d1: C64::cis(t / 2.0),
            },
            CY | CH | CRX(_) | CRY(_) => {
                let target = match *self {
                    CY => Y,
                    CH => H,
                    CRX(a) => RX(a),
                    CRY(a) => RY(a),
                    _ => unreachable!(),
                };
                match target.kind() {
                    GateKind::Dense1 { m } => GateKind::ControlledDense1 { m },
                    _ => unreachable!("controlled targets above are all dense"),
                }
            }
            SWAP => GateKind::Swap,
            CCX => GateKind::DoublyControlledFlipX,
            CSWAP => GateKind::ControlledSwap,
        }
    }
}

/// Embeds a single-qubit unitary as a controlled two-qubit unitary, control
/// on the first (most significant) qubit.
fn controlled(u: &Matrix) -> Matrix {
    assert_eq!(u.dim(), 2);
    let mut m = Matrix::identity(4);
    for r in 0..2 {
        for c in 0..2 {
            m[(2 + r, 2 + c)] = u.get(r, c);
        }
    }
    m[(2, 3)] = u.get(0, 1);
    m[(3, 2)] = u.get(1, 0);
    m[(2, 2)] = u.get(0, 0);
    m[(3, 3)] = u.get(1, 1);
    m
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(", "))
        }
    }
}

/// Iterates over every parameterless gate (used by property tests and the
/// corruption channels to pick substitutes).
pub fn all_parameterless() -> Vec<Gate> {
    use Gate::*;
    vec![
        Id, H, X, Y, Z, S, Sdg, T, Tdg, SX, CX, CY, CZ, CH, SWAP, CCX, CSWAP,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gate_matrix_is_unitary() {
        let mut gates = all_parameterless();
        gates.extend([
            Gate::RX(0.3),
            Gate::RY(1.1),
            Gate::RZ(-0.7),
            Gate::P(2.2),
            Gate::U(0.4, 1.3, -0.9),
            Gate::CRX(0.3),
            Gate::CRY(0.5),
            Gate::CRZ(-1.3),
            Gate::CP(0.8),
        ]);
        for g in gates {
            let m = g.matrix();
            assert!(m.is_unitary(1e-10), "{g} is not unitary");
            assert_eq!(m.dim(), 1 << g.num_qubits());
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::SX,
            Gate::RX(0.37),
            Gate::RZ(-1.2),
            Gate::U(0.4, 1.3, -0.9),
            Gate::CX,
            Gate::CRZ(0.6),
            Gate::CCX,
            Gate::CSWAP,
        ];
        for g in gates {
            let m = g.matrix().matmul(&g.inverse().matrix());
            let id = Matrix::identity(m.dim());
            assert!(
                m.approx_eq_up_to_phase(&id, 1e-9),
                "{g} * inverse != identity"
            );
        }
    }

    #[test]
    fn name_round_trips() {
        for g in all_parameterless() {
            let back = Gate::from_name(g.name(), &[]).expect("known name");
            assert_eq!(back, g);
        }
        let rz = Gate::RZ(0.25);
        assert_eq!(Gate::from_name("rz", &[0.25]), Some(rz));
        assert_eq!(Gate::from_name("rz", &[]), None);
        assert_eq!(Gate::from_name("nope", &[]), None);
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H.is_clifford());
        assert!(Gate::CX.is_clifford());
        assert!(Gate::S.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(!Gate::CCX.is_clifford());
        assert!(!Gate::RZ(0.1).is_clifford());
    }

    #[test]
    fn ccx_flips_target_only_when_both_controls_set() {
        let m = Gate::CCX.matrix();
        // |110> -> |111>
        assert!(m.get(7, 6).approx_eq(C64::ONE, 1e-12));
        // |100> unchanged
        assert!(m.get(4, 4).approx_eq(C64::ONE, 1e-12));
    }

    /// Rebuilds the dense unitary a [`GateKind`] describes, for checking the
    /// classification against [`Gate::matrix`].
    fn kind_matrix(gate: Gate) -> Matrix {
        let o = C64::ONE;
        let z = C64::ZERO;
        let embed_controlled = |m: [C64; 4]| {
            let mut u = Matrix::identity(4);
            u[(2, 2)] = m[0];
            u[(2, 3)] = m[1];
            u[(3, 2)] = m[2];
            u[(3, 3)] = m[3];
            u
        };
        match gate.kind() {
            GateKind::Identity => Matrix::identity(2),
            GateKind::Diagonal1 { d0, d1 } => Matrix::from_rows(2, &[d0, z, z, d1]),
            GateKind::FlipX => Matrix::from_rows(2, &[z, o, o, z]),
            GateKind::Dense1 { m } => Matrix::from_rows(2, &m),
            GateKind::ControlledDiagonal1 { d0, d1 } => embed_controlled([d0, z, z, d1]),
            GateKind::ControlledFlipX => embed_controlled([z, o, o, z]),
            GateKind::ControlledDense1 { m } => embed_controlled(m),
            GateKind::Swap
            | GateKind::DoublyControlledFlipX
            | GateKind::ControlledSwap
            | GateKind::General => gate.matrix(),
        }
    }

    #[test]
    fn kind_agrees_with_matrix_for_every_gate() {
        let mut gates = all_parameterless();
        gates.extend([
            Gate::RX(0.3),
            Gate::RY(1.1),
            Gate::RZ(-0.7),
            Gate::P(2.2),
            Gate::U(0.4, 1.3, -0.9),
            Gate::CRX(0.3),
            Gate::CRY(0.5),
            Gate::CRZ(-1.3),
            Gate::CP(0.8),
        ]);
        for g in gates {
            assert!(
                kind_matrix(g).approx_eq(&g.matrix(), 0.0),
                "{g} kind disagrees with matrix"
            );
        }
    }

    #[test]
    fn kind_structural_buckets() {
        assert_eq!(Gate::Id.kind(), GateKind::Identity);
        assert!(matches!(Gate::T.kind(), GateKind::Diagonal1 { .. }));
        assert!(matches!(Gate::RZ(0.5).kind(), GateKind::Diagonal1 { .. }));
        assert_eq!(Gate::X.kind(), GateKind::FlipX);
        assert!(matches!(Gate::H.kind(), GateKind::Dense1 { .. }));
        assert!(matches!(
            Gate::CZ.kind(),
            GateKind::ControlledDiagonal1 { .. }
        ));
        assert_eq!(Gate::CX.kind(), GateKind::ControlledFlipX);
        assert!(matches!(Gate::CH.kind(), GateKind::ControlledDense1 { .. }));
        assert_eq!(Gate::SWAP.kind(), GateKind::Swap);
        assert_eq!(Gate::CCX.kind(), GateKind::DoublyControlledFlipX);
        assert_eq!(Gate::CSWAP.kind(), GateKind::ControlledSwap);
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::RZ(0.5).to_string(), "rz(0.5)");
    }
}
