//! Pretty-printer: [`Circuit`] → QasmLite source.
//!
//! The printer always emits current-version (`2.1`) source with canonical
//! gate names and flat registers `q`/`c`, so `parse ∘ lower ∘ to_qasmlite`
//! is the identity on lowered circuits (round-trip tested here and in the
//! property suite).

use crate::circuit::{Circuit, Op};
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders a circuit as QasmLite source text.
pub fn to_qasmlite(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("import qasmlite 2.1;\n");
    if circuit.num_qubits() > 0 {
        let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    }
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } => {
                let _ = writeln!(out, "{};", render_app(gate, qubits));
            }
            Op::Measure { qubit, clbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{clbit}];");
            }
            Op::Reset { qubit } => {
                let _ = writeln!(out, "reset q[{qubit}];");
            }
            Op::Barrier { qubits } => {
                if qubits.len() == circuit.num_qubits() {
                    out.push_str("barrier;\n");
                } else {
                    let list: Vec<String> = qubits.iter().map(|q| format!("q[{q}]")).collect();
                    let _ = writeln!(out, "barrier {};", list.join(", "));
                }
            }
            Op::CondGate {
                gate,
                qubits,
                clbit,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "if (c[{clbit}] == {}) {};",
                    u8::from(*value),
                    render_app(gate, qubits)
                );
            }
        }
    }
    out
}

fn render_app(gate: &Gate, qubits: &[usize]) -> String {
    let operands: Vec<String> = qubits.iter().map(|q| format!("q[{q}]")).collect();
    let params = gate.params();
    if params.is_empty() {
        format!("{} {}", gate.name(), operands.join(", "))
    } else {
        let rendered: Vec<String> = params.iter().map(|p| format_angle(*p)).collect();
        format!(
            "{}({}) {}",
            gate.name(),
            rendered.join(", "),
            operands.join(", ")
        )
    }
}

/// Formats an angle with enough digits to round-trip `f64` exactly.
fn format_angle(v: f64) -> String {
    // `{:?}` on f64 produces the shortest representation that round-trips.
    let s = format!("{v:?}");
    // QasmLite numbers cannot start with a bare `-`? They can: unary minus
    // exists in the grammar, so this is fine as-is.
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::lower;
    use crate::circuit::Circuit;
    use crate::dsl::parse;

    fn round_trip(circuit: &Circuit) -> Circuit {
        let src = to_qasmlite(circuit);
        let program =
            parse(&src).unwrap_or_else(|e| panic!("printer output must parse: {e}\n{src}"));
        lower(&program).unwrap_or_else(|e| panic!("printer output must check: {e:?}\n{src}"))
    }

    #[test]
    fn bell_round_trips() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        assert_eq!(round_trip(&qc), qc);
    }

    #[test]
    fn parameterized_gates_round_trip() {
        let mut qc = Circuit::new(2, 2);
        qc.rz(std::f64::consts::PI / 3.0, 0)
            .u(0.1, -2.5, 1e-7, 1)
            .cp(0.75, 0, 1)
            .measure_all();
        assert_eq!(round_trip(&qc), qc);
    }

    #[test]
    fn conditionals_and_resets_round_trip() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).measure(0, 0);
        qc.cond_gate(crate::gate::Gate::X, &[1], 0, true);
        qc.reset(0);
        qc.measure(1, 1);
        assert_eq!(round_trip(&qc), qc);
    }

    #[test]
    fn barrier_forms_round_trip() {
        let mut qc = Circuit::new(3, 3);
        qc.h(0).barrier_all();
        qc.try_push(crate::circuit::Op::Barrier { qubits: vec![0, 2] })
            .unwrap();
        qc.measure_all();
        assert_eq!(round_trip(&qc), qc);
    }

    #[test]
    fn printer_emits_current_import() {
        let mut qc = Circuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let src = to_qasmlite(&qc);
        assert!(src.starts_with("import qasmlite 2.1;"));
    }

    #[test]
    fn negative_angles_round_trip() {
        let mut qc = Circuit::new(1, 1);
        qc.rx(-0.5, 0).measure(0, 0);
        assert_eq!(round_trip(&qc), qc);
    }
}
