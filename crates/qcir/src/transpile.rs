//! Transpilation: decompose to the `{CX, U}` basis and optimize.
//!
//! The QEC agent's device-targeting path (and the router in `qec::route`)
//! needs circuits whose multi-qubit content is CX-only. This module
//! provides:
//!
//! * [`decompose_to_basis`] — rewrite every gate into CX plus single-qubit
//!   gates (controlled gates via the ABC decomposition, Toffoli via the
//!   standard 6-CX network, SWAP via 3 CX);
//! * [`merge_single_qubit_runs`] — fuse runs of adjacent single-qubit
//!   gates into one `U(theta, phi, lambda)` by matrix composition + ZYZ
//!   extraction (also drops identity runs);
//! * [`cancel_inverse_pairs`] — remove adjacent gate/inverse pairs;
//! * [`transpile`] — the full pipeline, unitary-equivalence-preserving up
//!   to global phase (property-tested).

use crate::circuit::{Circuit, Op};
use crate::gate::Gate;
use crate::math::Matrix;
#[cfg(test)]
use crate::math::C64;

/// Extracted ZYZ angles: `m = e^{i alpha} Rz(phi) Ry(theta) Rz(lambda)`,
/// equivalently `m = e^{i(alpha - (phi+lambda)/2)} U(theta, phi, lambda)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zyz {
    /// Ry angle.
    pub theta: f64,
    /// Leading Rz angle.
    pub phi: f64,
    /// Trailing Rz angle.
    pub lambda: f64,
    /// Global phase.
    pub alpha: f64,
}

/// Extracts ZYZ angles from a single-qubit unitary.
///
/// # Panics
///
/// Panics when `m` is not 2x2.
pub fn zyz_decompose(m: &Matrix) -> Zyz {
    assert_eq!(m.dim(), 2, "zyz needs a single-qubit unitary");
    let m00 = m.get(0, 0);
    let m01 = m.get(0, 1);
    let m10 = m.get(1, 0);
    let m11 = m.get(1, 1);
    let c = m00.abs().clamp(0.0, 1.0);
    let s = m10.abs().clamp(0.0, 1.0);
    // atan2 avoids the acos precision cliff near theta = 0 and pi.
    let theta = 2.0 * s.atan2(c);
    if s < 1e-9 {
        // Diagonal (up to phase): theta = 0, fold everything into lambda.
        let alpha = m00.im.atan2(m00.re);
        let lambda = m11.im.atan2(m11.re) - alpha;
        return Zyz {
            theta: 0.0,
            phi: 0.0,
            lambda,
            alpha: alpha + lambda / 2.0,
        };
    }
    if c < 1e-9 {
        // Anti-diagonal: theta = pi.
        let alpha = m10.im.atan2(m10.re);
        let phi_minus: f64 = {
            let z = -m01;
            z.im.atan2(z.re) - alpha
        };
        // With theta = pi: m10 = e^{i(alpha + (phi - lambda)/2)} * 1 ... fold
        // the freedom into phi, set lambda = 0.
        return Zyz {
            theta: std::f64::consts::PI,
            phi: -phi_minus,
            lambda: 0.0,
            // alpha_global = (arg(m10) + arg(-m01)) / 2.
            alpha: alpha + phi_minus / 2.0,
        };
    }
    // General: m00 = e^{i(alpha - phi/2 - lambda/2)} cos(theta/2)
    //          m10 = e^{i(alpha + phi/2 - lambda/2)} sin(theta/2)
    //          m01 = -e^{i(alpha - phi/2 + lambda/2)} sin(theta/2)
    let a00 = m00.im.atan2(m00.re);
    let a10 = m10.im.atan2(m10.re);
    let a01 = {
        let z = -m01;
        z.im.atan2(z.re)
    };
    let phi = a10 - a00;
    let lambda = a01 - a00;
    let alpha = a00 + phi / 2.0 + lambda / 2.0;
    Zyz {
        theta,
        phi,
        lambda,
        alpha,
    }
}

impl Zyz {
    /// The equivalent `U` gate (global phase dropped).
    pub fn to_u_gate(&self) -> Gate {
        Gate::U(self.theta, self.phi, self.lambda)
    }

    /// `true` when the unitary is the identity up to global phase.
    pub fn is_identity(&self, tol: f64) -> bool {
        let theta_trivial = self.theta.abs() < tol;
        let rot = (self.phi + self.lambda).rem_euclid(2.0 * std::f64::consts::PI);
        theta_trivial && (rot < tol || (2.0 * std::f64::consts::PI - rot) < tol)
    }
}

/// Rewrites every operation into the `{CX, single-qubit}` basis.
///
/// Measurements, resets, barriers and conditionals pass through
/// (conditional gates are decomposed only when single-qubit or CX already;
/// multi-qubit conditional gates other than CX are left intact, as the
/// trajectory executor handles them directly).
pub fn decompose_to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } => emit_decomposed(&mut out, *gate, qubits),
            other => out.try_push(other.clone()).expect("same register sizes"),
        }
    }
    out
}

fn emit_decomposed(out: &mut Circuit, gate: Gate, qubits: &[usize]) {
    use Gate::*;
    match gate {
        // Single-qubit gates pass through (merged later).
        g if g.num_qubits() == 1 => {
            out.push_gate(g, qubits);
        }
        CX => {
            out.push_gate(CX, qubits);
        }
        CZ => {
            out.h(qubits[1]).cx(qubits[0], qubits[1]).h(qubits[1]);
        }
        SWAP => {
            out.cx(qubits[0], qubits[1])
                .cx(qubits[1], qubits[0])
                .cx(qubits[0], qubits[1]);
        }
        CY | CH | CRX(_) | CRY(_) | CRZ(_) | CP(_) => {
            let target_u = match gate {
                CY => Y,
                CH => H,
                CRX(a) => RX(a),
                CRY(a) => RY(a),
                CRZ(a) => RZ(a),
                CP(a) => P(a),
                _ => unreachable!(),
            };
            emit_controlled_1q(out, qubits[0], qubits[1], &target_u.matrix());
        }
        CCX => {
            let (a, b, c) = (qubits[0], qubits[1], qubits[2]);
            out.h(c);
            out.cx(b, c).tdg(c).cx(a, c).t(c).cx(b, c).tdg(c).cx(a, c);
            out.t(b).t(c).h(c);
            out.cx(a, b).t(a).tdg(b).cx(a, b);
        }
        CSWAP => {
            let (c, a, b) = (qubits[0], qubits[1], qubits[2]);
            out.cx(b, a);
            emit_decomposed(out, CCX, &[c, a, b]);
            out.cx(b, a);
        }
        other => unreachable!("unhandled gate {other}"),
    }
}

/// ABC decomposition of a controlled single-qubit unitary:
/// `CU = (P(alpha) on control) . (A on t) . CX . (B on t) . CX . (C on t)`
/// with `A = Rz(phi) Ry(theta/2)`, `B = Ry(-theta/2) Rz(-(lambda+phi)/2)`,
/// `C = Rz((lambda-phi)/2)`.
fn emit_controlled_1q(out: &mut Circuit, control: usize, target: usize, u: &Matrix) {
    let z = zyz_decompose(u);
    let (theta, phi, lambda, alpha) = (z.theta, z.phi, z.lambda, z.alpha);
    // Circuit order = rightmost matrix factor first.
    out.rz((lambda - phi) / 2.0, target); // C
    out.cx(control, target);
    out.rz(-(lambda + phi) / 2.0, target); // B part 1
    out.ry(-theta / 2.0, target); // B part 2
    out.cx(control, target);
    out.ry(theta / 2.0, target); // A part 1
    out.rz(phi, target); // A part 2
    if alpha.abs() > 1e-12 {
        out.p(alpha, control);
    }
}

/// Fuses runs of adjacent single-qubit gates per qubit into one `U` gate
/// (dropping identity runs). Barriers, measurements, resets, conditionals
/// and multi-qubit gates flush the pending run.
pub fn merge_single_qubit_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut pending: Vec<Option<Matrix>> = vec![None; n];
    let mut out = Circuit::new(n, circuit.num_clbits());

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Matrix>>, q: usize| {
        if let Some(m) = pending[q].take() {
            let z = zyz_decompose(&m);
            if !z.is_identity(1e-10) {
                out.push_gate(z.to_u_gate(), &[q]);
            }
        }
    };

    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } if gate.num_qubits() == 1 => {
                let q = qubits[0];
                let m = gate.matrix();
                pending[q] = Some(match pending[q].take() {
                    Some(acc) => m.matmul(&acc),
                    None => m,
                });
            }
            Op::Gate { qubits, .. } | Op::CondGate { qubits, .. } => {
                for &q in qubits {
                    flush(&mut out, &mut pending, q);
                }
                out.try_push(op.clone()).expect("same registers");
            }
            Op::Measure { .. } | Op::Reset { .. } => {
                // Flush every pending run, not just the measured qubit:
                // this keeps measure-at-end circuits measure-at-end (no
                // gate may appear after another qubit's measurement just
                // because its fusion window stayed open longer).
                for q in 0..n {
                    flush(&mut out, &mut pending, q);
                }
                out.try_push(op.clone()).expect("same registers");
            }
            Op::Barrier { qubits } => {
                for &q in qubits {
                    flush(&mut out, &mut pending, q);
                }
                out.try_push(op.clone()).expect("same registers");
            }
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Removes adjacent gate/inverse pairs (same qubits, nothing touching
/// those qubits in between), to a fixpoint.
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Op> = circuit.ops().to_vec();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < ops.len() {
            let Op::Gate { gate, qubits } = ops[i].clone() else {
                i += 1;
                continue;
            };
            // Find the next op touching any of this gate's qubits.
            let mut j = i + 1;
            let mut partner: Option<usize> = None;
            while j < ops.len() {
                let touches = ops[j].qubits().iter().any(|q| qubits.contains(q));
                let is_barrier = matches!(ops[j], Op::Barrier { .. });
                if touches && !is_barrier {
                    partner = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(j) = partner {
                if let Op::Gate {
                    gate: g2,
                    qubits: q2,
                } = &ops[j]
                {
                    if *q2 == qubits && gates_inverse(&gate, g2) {
                        ops.remove(j);
                        ops.remove(i);
                        removed = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
        if !removed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for op in ops {
        out.try_push(op).expect("same registers");
    }
    out
}

fn gates_inverse(a: &Gate, b: &Gate) -> bool {
    let inv = a.inverse();
    if inv == *b {
        return true;
    }
    // Parameterized gates: compare matrices (handles U-form inverses).
    if a.num_qubits() == b.num_qubits() && a.num_qubits() == 1 {
        let prod = b.matrix().matmul(&a.matrix());
        return prod.approx_eq_up_to_phase(&Matrix::identity(2), 1e-10);
    }
    false
}

/// The full pipeline: decompose, cancel, merge (then cancel once more —
/// merging can expose new CX pairs).
pub fn transpile(circuit: &Circuit) -> Circuit {
    let decomposed = decompose_to_basis(circuit);
    let cancelled = cancel_inverse_pairs(&decomposed);
    let merged = merge_single_qubit_runs(&cancelled);
    cancel_inverse_pairs(&merged)
}

/// `true` when the circuit only uses the `{CX, 1q}` basis in its unitary
/// portion.
pub fn is_in_basis(circuit: &Circuit) -> bool {
    circuit.ops().iter().all(|op| match op {
        Op::Gate { gate, .. } => gate.num_qubits() == 1 || *gate == Gate::CX,
        Op::CondGate { gate, .. } => gate.num_qubits() == 1 || *gate == Gate::CX,
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::all_parameterless;

    fn unitary_equiv(a: &Circuit, b: &Circuit) -> bool {
        // Strip non-gate ops for comparison.
        let strip = |c: &Circuit| {
            let mut out = Circuit::new(c.num_qubits(), 0);
            for op in c.ops() {
                if let Op::Gate { gate, qubits } = op {
                    out.push_gate(*gate, qubits);
                }
            }
            out
        };
        let ua = circuit_unitary_local(&strip(a));
        let ub = circuit_unitary_local(&strip(b));
        ua.approx_eq_up_to_phase(&ub, 1e-7)
    }

    // Local unitary builder (can't depend on qsim from qcir).
    fn circuit_unitary_local(c: &Circuit) -> Matrix {
        let n = c.num_qubits();
        let dim = 1usize << n;
        let mut u = Matrix::identity(dim);
        for op in c.ops() {
            if let Op::Gate { gate, qubits } = op {
                let g = embed(&gate.matrix(), qubits, n);
                u = g.matmul(&u);
            }
        }
        u
    }

    // Embeds a k-qubit gate matrix (big-endian over `qubits`) into n qubits
    // (little-endian basis indexing).
    fn embed(m: &Matrix, qubits: &[usize], n: usize) -> Matrix {
        let dim = 1usize << n;
        let k = qubits.len();
        let mut out = Matrix::zeros(dim);
        for col in 0..dim {
            for row_bits in 0..(1usize << k) {
                // Column restricted: gather the gate-row/col indices.
                let mut col_bits = 0usize;
                for (j, &q) in qubits.iter().enumerate() {
                    if (col >> q) & 1 == 1 {
                        col_bits |= 1 << (k - 1 - j);
                    }
                }
                let amp = m.get(row_bits, col_bits);
                if amp == C64::ZERO {
                    continue;
                }
                let mut row = col;
                for (j, &q) in qubits.iter().enumerate() {
                    let bit = (row_bits >> (k - 1 - j)) & 1;
                    if bit == 1 {
                        row |= 1 << q;
                    } else {
                        row &= !(1 << q);
                    }
                }
                out[(row, col)] += amp;
            }
        }
        out
    }

    #[test]
    fn zyz_round_trips_every_gate() {
        let mut gates: Vec<Gate> = all_parameterless()
            .into_iter()
            .filter(|g| g.num_qubits() == 1)
            .collect();
        gates.extend([
            Gate::RX(0.7),
            Gate::RY(-1.3),
            Gate::RZ(2.2),
            Gate::P(0.4),
            Gate::U(1.1, -0.6, 2.5),
        ]);
        for g in gates {
            let z = zyz_decompose(&g.matrix());
            let rebuilt = z.to_u_gate().matrix();
            assert!(
                rebuilt.approx_eq_up_to_phase(&g.matrix(), 1e-9),
                "{g}: zyz {z:?}"
            );
        }
    }

    #[test]
    fn decompose_preserves_unitary_for_every_gate() {
        let cases: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::CZ, vec![0, 1]),
            (Gate::CY, vec![0, 1]),
            (Gate::CH, vec![0, 1]),
            (Gate::SWAP, vec![0, 1]),
            (Gate::CRX(0.8), vec![0, 1]),
            (Gate::CRY(-1.1), vec![0, 1]),
            (Gate::CRZ(2.3), vec![0, 1]),
            (Gate::CP(0.9), vec![0, 1]),
            (Gate::CCX, vec![0, 1, 2]),
            (Gate::CSWAP, vec![0, 1, 2]),
            // Reversed operand orders exercise the embedding.
            (Gate::CZ, vec![1, 0]),
            (Gate::CCX, vec![2, 0, 1]),
        ];
        for (gate, qubits) in cases {
            let n = qubits.iter().max().unwrap() + 1;
            let mut original = Circuit::new(n, 0);
            original.push_gate(gate, &qubits);
            let decomposed = decompose_to_basis(&original);
            assert!(is_in_basis(&decomposed), "{gate} not in basis");
            assert!(
                unitary_equiv(&original, &decomposed),
                "{gate} on {qubits:?} not equivalent"
            );
        }
    }

    #[test]
    fn merge_fuses_runs() {
        let mut qc = Circuit::new(1, 0);
        qc.h(0).t(0).s(0).h(0).rz(0.3, 0);
        let merged = merge_single_qubit_runs(&qc);
        assert_eq!(merged.len(), 1, "five gates fuse into one U");
        assert!(unitary_equiv(&qc, &merged));
    }

    #[test]
    fn merge_drops_identity_runs() {
        let mut qc = Circuit::new(1, 0);
        qc.h(0).h(0);
        let merged = merge_single_qubit_runs(&qc);
        assert!(merged.is_empty(), "H H is the identity");
        let mut qc2 = Circuit::new(1, 0);
        qc2.s(0).sdg(0).x(0).x(0);
        assert!(merge_single_qubit_runs(&qc2).is_empty());
    }

    #[test]
    fn merge_respects_blocking_ops() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).h(0).measure(0, 0);
        let merged = merge_single_qubit_runs(&qc);
        // The two H's must not merge across the CX.
        assert_eq!(merged.count_gate("u"), 2);
        assert_eq!(merged.count_gate("cx"), 1);
    }

    #[test]
    fn cancel_removes_cx_pairs() {
        let mut qc = Circuit::new(2, 0);
        qc.cx(0, 1).cx(0, 1).h(0);
        let cancelled = cancel_inverse_pairs(&qc);
        assert_eq!(cancelled.count_gate("cx"), 0);
        assert_eq!(cancelled.count_gate("h"), 1);
    }

    #[test]
    fn cancel_respects_interleaving() {
        let mut qc = Circuit::new(2, 0);
        qc.cx(0, 1).x(1).cx(0, 1);
        let cancelled = cancel_inverse_pairs(&qc);
        // X on the target blocks cancellation.
        assert_eq!(cancelled.count_gate("cx"), 2);
    }

    #[test]
    fn cancel_handles_parameterized_inverses() {
        let mut qc = Circuit::new(1, 0);
        qc.rz(0.7, 0).rz(-0.7, 0).t(0).tdg(0);
        let cancelled = cancel_inverse_pairs(&qc);
        assert!(cancelled.is_empty(), "{:?}", cancelled.ops());
    }

    #[test]
    fn transpile_preserves_grover() {
        // A full algorithm with CCX, CZ and H: the end-to-end check.
        let mut qc = Circuit::new(3, 0);
        for q in 0..3 {
            qc.h(q);
        }
        qc.x(0).h(2).ccx(0, 1, 2).h(2).x(0);
        qc.cz(0, 1);
        let transpiled = transpile(&qc);
        assert!(is_in_basis(&transpiled));
        assert!(unitary_equiv(&qc, &transpiled));
    }

    #[test]
    fn transpile_keeps_measurements() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cz(0, 1).measure_all();
        let t = transpile(&qc);
        assert_eq!(t.num_measurements(), 2);
        assert!(is_in_basis(&t));
    }

    #[test]
    fn transpile_reduces_gate_count_on_redundant_circuits() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(0).swap(0, 1).swap(0, 1).t(1).tdg(1);
        let t = transpile(&qc);
        assert!(t.is_empty(), "fully redundant circuit: {:?}", t.ops());
    }
}
