//! Minimal complex arithmetic and small dense matrices.
//!
//! The simulator crates need nothing more than `f64` complex numbers and
//! row-major `2^k x 2^k` matrices for `k <= 3`, so we implement exactly that
//! instead of pulling in an external linear-algebra dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use qcir::math::C64;
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns `true` when both components are within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

/// A dense, row-major, square complex matrix.
///
/// Used for gate unitaries (dimension 2, 4 or 8) and for unitary-equivalence
/// checks in the grader.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a `dim x dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        Matrix {
            dim,
            data: vec![C64::ZERO; dim * dim],
        }
    }

    /// Creates the `dim x dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim * dim`.
    pub fn from_rows(dim: usize, data: &[C64]) -> Self {
        assert_eq!(data.len(), dim * dim, "matrix data length mismatch");
        Matrix {
            dim,
            data: data.to_vec(),
        }
    }

    /// Matrix dimension (number of rows = columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row-major element access without bounds checks beyond slice indexing.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.data[row * self.dim + col]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.dim, rhs.dim, "matmul dimension mismatch");
        let n = self.dim;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Matrix {
        let n = self.dim;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self.get(i, j).conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let n = self.dim;
        let m = rhs.dim;
        let mut out = Matrix::zeros(n * m);
        for i in 0..n {
            for j in 0..n {
                let a = self.get(i, j);
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..m {
                    for l in 0..m {
                        out[(i * m + k, j * m + l)] = a * rhs.get(k, l);
                    }
                }
            }
        }
        out
    }

    /// Returns `true` when `self` is unitary within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = self.dagger().matmul(self);
        let id = Matrix::identity(self.dim);
        prod.approx_eq(&id, tol)
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Approximate equality up to a global phase: finds the phase aligning
    /// the largest element and compares.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix, tol: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        // Find the element of `other` with the largest modulus to fix phase.
        let mut best = 0;
        let mut best_abs = 0.0;
        for (idx, z) in other.data.iter().enumerate() {
            let a = z.abs();
            if a > best_abs {
                best_abs = a;
                best = idx;
            }
        }
        if best_abs <= tol {
            // `other` is (numerically) zero; compare directly.
            return self.approx_eq(other, tol);
        }
        let a = self.data[best];
        let b = other.data[best];
        if a.abs() <= tol {
            return false;
        }
        // phase = a / b, normalised to unit modulus so only a global phase
        // (never a magnitude rescale) is factored out.
        let phase = a * b.conj() / (b.abs() * a.abs());
        let scaled: Vec<C64> = other.data.iter().map(|z| *z * phase).collect();
        self.data
            .iter()
            .zip(&scaled)
            .all(|(x, y)| x.approx_eq(*y, tol))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &C64 {
        &self.data[row * self.dim + col]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut C64 {
        &mut self.data[row * self.dim + col]
    }
}

/// `1/sqrt(2)`, used throughout gate definitions.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic_basics() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = C64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_is_unitary() {
        assert!(Matrix::identity(4).is_unitary(1e-12));
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let h = Matrix::from_rows(
            2,
            &[
                C64::real(FRAC_1_SQRT_2),
                C64::real(FRAC_1_SQRT_2),
                C64::real(FRAC_1_SQRT_2),
                C64::real(-FRAC_1_SQRT_2),
            ],
        );
        let id = Matrix::identity(2);
        assert!(h.matmul(&id).approx_eq(&h, 1e-12));
        assert!(id.matmul(&h).approx_eq(&h, 1e-12));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Matrix::from_rows(
            2,
            &[
                C64::real(FRAC_1_SQRT_2),
                C64::real(FRAC_1_SQRT_2),
                C64::real(FRAC_1_SQRT_2),
                C64::real(-FRAC_1_SQRT_2),
            ],
        );
        assert!(h.matmul(&h).approx_eq(&Matrix::identity(2), 1e-12));
        assert!(h.is_unitary(1e-12));
    }

    #[test]
    fn kron_dimensions() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(4);
        assert_eq!(a.kron(&b).dim(), 8);
    }

    fn pauli_x() -> Matrix {
        Matrix::from_rows(2, &[C64::ZERO, C64::ONE, C64::ONE, C64::ZERO])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_rows(2, &[C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE])
    }

    #[test]
    fn complex_division_and_assign_ops() {
        let a = C64::new(3.0, 4.0);
        assert!((a / 2.0).approx_eq(C64::new(1.5, 2.0), 1e-12));
        assert!((a * 0.5).approx_eq(C64::new(1.5, 2.0), 1e-12));
        let mut b = C64::ONE;
        b += C64::I;
        b *= C64::I;
        assert!(b.approx_eq(C64::new(-1.0, 1.0), 1e-12));
        assert_eq!(C64::from(2.5), C64::new(2.5, 0.0));
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_a_homomorphism() {
        let a = 0.9;
        let b = -2.3;
        assert!((C64::cis(a) * C64::cis(b)).approx_eq(C64::cis(a + b), 1e-12));
        assert!(C64::cis(a).conj().approx_eq(C64::cis(-a), 1e-12));
    }

    #[test]
    fn pauli_algebra_via_matmul() {
        // XY = iZ and YX = -iZ: matmul is order-sensitive and complex-correct.
        let xy = pauli_x().matmul(&pauli_y());
        let yx = pauli_y().matmul(&pauli_x());
        let mut iz = pauli_z();
        for i in 0..2 {
            for j in 0..2 {
                iz[(i, j)] *= C64::I;
            }
        }
        assert!(xy.approx_eq(&iz, 1e-12));
        let mut neg_iz = iz.clone();
        for i in 0..2 {
            for j in 0..2 {
                neg_iz[(i, j)] = -neg_iz[(i, j)];
            }
        }
        assert!(yx.approx_eq(&neg_iz, 1e-12));
    }

    #[test]
    fn dagger_is_an_involution_and_antihomomorphism() {
        let y = pauli_y();
        assert!(y.dagger().dagger().approx_eq(&y, 1e-12));
        // (AB)^† = B^† A^†
        let a = pauli_x();
        let ab = a.matmul(&y);
        assert!(ab
            .dagger()
            .approx_eq(&y.dagger().matmul(&a.dagger()), 1e-12));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = Matrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_entry_layout() {
        // Z ⊗ X places +X in the top-left block and -X in the bottom-right.
        let zx = pauli_z().kron(&pauli_x());
        assert_eq!(zx.dim(), 4);
        assert_eq!(zx.get(0, 1), C64::ONE);
        assert_eq!(zx.get(1, 0), C64::ONE);
        assert_eq!(zx.get(2, 3), -C64::ONE);
        assert_eq!(zx.get(3, 2), -C64::ONE);
        assert_eq!(zx.get(0, 0), C64::ZERO);
    }

    #[test]
    fn non_unitary_matrices_are_rejected() {
        let mut scaled = Matrix::identity(2);
        scaled[(0, 0)] = C64::real(2.0);
        assert!(!scaled.is_unitary(1e-9));
        let mut shear = Matrix::identity(2);
        shear[(0, 1)] = C64::ONE;
        assert!(!shear.is_unitary(1e-9));
        assert!(!Matrix::zeros(2).is_unitary(1e-9));
    }

    #[test]
    fn phase_comparison_rejects_per_element_phases() {
        // A relative (non-global) phase must not compare equal.
        let id = Matrix::identity(2);
        let mut relative = Matrix::identity(2);
        relative[(1, 1)] = C64::cis(0.7);
        assert!(!id.approx_eq_up_to_phase(&relative, 1e-9));
        // Different dimensions never compare equal.
        assert!(!id.approx_eq_up_to_phase(&Matrix::identity(4), 1e-9));
        // Zero matrices compare equal (degenerate phase).
        assert!(Matrix::zeros(2).approx_eq_up_to_phase(&Matrix::zeros(2), 1e-9));
    }

    #[test]
    fn phase_comparison_rejects_magnitude_rescale() {
        // 2I equals I up to a scalar, but not up to a *phase*: only
        // unit-modulus factors may be divided out.
        let id = Matrix::identity(2);
        let mut doubled = Matrix::identity(2);
        doubled[(0, 0)] = C64::real(2.0);
        doubled[(1, 1)] = C64::real(2.0);
        assert!(!doubled.approx_eq_up_to_phase(&id, 1e-9));
        assert!(!id.approx_eq_up_to_phase(&doubled, 1e-9));
    }

    #[test]
    #[should_panic(expected = "matrix data length mismatch")]
    fn from_rows_checks_length() {
        Matrix::from_rows(2, &[C64::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dimensions() {
        Matrix::identity(2).matmul(&Matrix::identity(4));
    }

    #[test]
    fn phase_insensitive_comparison() {
        let id = Matrix::identity(2);
        let mut phased = Matrix::zeros(2);
        let phase = C64::cis(0.7);
        phased[(0, 0)] = phase;
        phased[(1, 1)] = phase;
        assert!(!id.approx_eq(&phased, 1e-9));
        assert!(id.approx_eq_up_to_phase(&phased, 1e-9));
    }
}
