//! Structured diagnostics.
//!
//! Diagnostics are the currency of the multi-pass repair loop: the semantic
//! analyzer agent renders them into an *error trace* that is appended to the
//! regeneration prompt, and the simulated LLM's repair behaviour keys off
//! the [`DiagCode`], exactly as a real model keys off a Python traceback.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note.
    Note,
    /// Suspicious but not fatal (e.g. deprecated API still resolvable).
    Warning,
    /// The program cannot be lowered to a circuit.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable diagnostic classes.
///
/// These map one-to-one onto the error classes the paper observes in LLM
/// generated Qiskit code (§IV-A, §V-D): import misuse and deprecated API
/// dominate; syntax and semantic-structure errors follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagCode {
    /// Source failed to tokenize.
    LexError,
    /// Source failed to parse.
    ParseError,
    /// `import` names a library or version that does not exist.
    UnknownImport,
    /// A required import is missing for a used symbol.
    MissingImport,
    /// Symbol resolved, but is deprecated in the imported version.
    DeprecatedSymbol,
    /// Symbol was removed in the imported version.
    RemovedSymbol,
    /// Gate name unknown in any version.
    UnknownGate,
    /// Wrong number of parameters for a gate.
    ParamCountMismatch,
    /// Wrong number of qubit operands for a gate.
    ArityMismatch,
    /// Qubit index outside its register.
    QubitOutOfRange,
    /// Classical bit index outside its register.
    ClbitOutOfRange,
    /// Register referenced but never declared.
    UndeclaredRegister,
    /// Register declared twice.
    DuplicateRegister,
    /// The same qubit used twice in one gate.
    DuplicateQubit,
    /// Measurement register-size mismatch (`measure q -> c` with |q| != |c|).
    MeasureSizeMismatch,
    /// Program has no measurements but the task requires sampling.
    NoMeasurement,
    /// A called subroutine (oracle/gate definition) is undefined.
    UndefinedSubroutine,
    /// Subroutine called with wrong operand count.
    SubroutineArityMismatch,
}

impl DiagCode {
    /// `true` for codes that indicate *syntactic/library* failure (the code
    /// cannot run at all), as opposed to running-but-wrong semantics.
    pub fn is_syntactic(&self) -> bool {
        !matches!(self, DiagCode::NoMeasurement)
    }

    /// Short stable identifier used in rendered traces.
    pub fn ident(&self) -> &'static str {
        use DiagCode::*;
        match self {
            LexError => "E0001",
            ParseError => "E0002",
            UnknownImport => "E0100",
            MissingImport => "E0101",
            DeprecatedSymbol => "E0102",
            RemovedSymbol => "E0103",
            UnknownGate => "E0104",
            ParamCountMismatch => "E0200",
            ArityMismatch => "E0201",
            QubitOutOfRange => "E0202",
            ClbitOutOfRange => "E0203",
            UndeclaredRegister => "E0204",
            DuplicateRegister => "E0205",
            DuplicateQubit => "E0206",
            MeasureSizeMismatch => "E0207",
            NoMeasurement => "E0300",
            UndefinedSubroutine => "E0208",
            SubroutineArityMismatch => "E0209",
        }
    }
}

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// 1-based line; 0 when unknown.
    pub line: u32,
    /// 1-based column; 0 when unknown.
    pub col: u32,
}

impl Span {
    /// A span pointing at the given line/column.
    pub fn at(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One diagnostic: code, severity, message and location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Machine-readable class.
    pub code: DiagCode,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Source location, when known.
    pub span: Span,
    /// Optional fix-it hint the repair loop can exploit.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: DiagCode, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            hint: None,
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: DiagCode, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
            hint: None,
        }
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity,
            self.code.ident(),
            self.span,
            self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

/// Renders a batch of diagnostics as the "error trace" text the multi-pass
/// prompt template embeds.
pub fn render_trace(diags: &[Diagnostic]) -> String {
    let mut out = String::from("Traceback (most recent failure):\n");
    for d in diags {
        out.push_str("  ");
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_span() {
        let d = Diagnostic::error(DiagCode::UnknownGate, "unknown gate `cnot`", Span::at(4, 1))
            .with_hint("use `cx` instead");
        let s = d.to_string();
        assert!(s.contains("E0104"));
        assert!(s.contains("4:1"));
        assert!(s.contains("hint"));
    }

    #[test]
    fn trace_lists_every_diagnostic() {
        let diags = vec![
            Diagnostic::error(DiagCode::ParseError, "unexpected token", Span::at(1, 1)),
            Diagnostic::warning(
                DiagCode::DeprecatedSymbol,
                "`cnot` is deprecated",
                Span::at(2, 1),
            ),
        ];
        let trace = render_trace(&diags);
        assert_eq!(trace.lines().count(), 3);
        assert!(trace.contains("E0002"));
        assert!(trace.contains("E0102"));
    }

    #[test]
    fn syntactic_classification() {
        assert!(DiagCode::ParseError.is_syntactic());
        assert!(DiagCode::DeprecatedSymbol.is_syntactic());
        assert!(!DiagCode::NoMeasurement.is_syntactic());
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
