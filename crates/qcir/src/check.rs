//! Semantic checker and lowering: `Program` → `Circuit` + diagnostics.
//!
//! This module is the analysis core of the Semantic Analyzer agent. It
//! resolves imports against the versioned [`ApiRegistry`], expands gate
//! definitions (oracles), validates operand/parameter shapes, and either
//! lowers to a runnable [`Circuit`] or reports structured diagnostics whose
//! rendered form becomes the multi-pass repair prompt.

use crate::api::{adapt_legacy_params, ApiRegistry, Resolution, Version};
use crate::circuit::{Circuit, Op};
use crate::diag::{DiagCode, Diagnostic, Severity, Span};
use crate::dsl::ast::{GateApp, Item, Operand, Program, RegKind, Stmt};
use crate::gate::Gate;
use std::collections::BTreeMap;

/// Result of checking a program: diagnostics plus the lowered circuit when
/// no error-severity diagnostic was produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The lowered circuit; `None` when errors were found.
    pub circuit: Option<Circuit>,
    /// All diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckOutcome {
    /// `true` when no error-severity diagnostics were produced.
    pub fn is_ok(&self) -> bool {
        self.circuit.is_some()
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity diagnostics only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }
}

/// Checks and lowers a program with the standard API registry.
///
/// # Errors
///
/// Returns the full diagnostic list when any error-severity diagnostic is
/// produced.
pub fn lower(program: &Program) -> Result<Circuit, Vec<Diagnostic>> {
    let outcome = check(program, &ApiRegistry::standard());
    match outcome.circuit {
        Some(c) => Ok(c),
        None => Err(outcome.diagnostics),
    }
}

/// Checks a program against `registry`, collecting every diagnostic rather
/// than stopping at the first (multi-pass repair benefits from seeing all
/// errors at once — the paper notes the model fixes "a small, singular
/// error" per pass, so we cap nothing here and let the agent choose).
pub fn check(program: &Program, registry: &ApiRegistry) -> CheckOutcome {
    Checker::new(registry).run(program)
}

#[derive(Debug, Clone)]
struct RegInfo {
    offset: usize,
    size: usize,
    kind: RegKind,
}

#[derive(Debug, Clone)]
struct SubDef {
    params: Vec<String>,
    operands: Vec<String>,
    body: Vec<GateApp>,
}

struct Checker<'a> {
    registry: &'a ApiRegistry,
    diags: Vec<Diagnostic>,
    qregs: BTreeMap<String, RegInfo>,
    cregs: BTreeMap<String, RegInfo>,
    subs: BTreeMap<String, SubDef>,
    version: Option<Version>,
    num_qubits: usize,
    num_clbits: usize,
}

impl<'a> Checker<'a> {
    fn new(registry: &'a ApiRegistry) -> Self {
        Checker {
            registry,
            diags: Vec::new(),
            qregs: BTreeMap::new(),
            cregs: BTreeMap::new(),
            subs: BTreeMap::new(),
            version: None,
            num_qubits: 0,
            num_clbits: 0,
        }
    }

    fn error(&mut self, code: DiagCode, msg: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::error(code, msg, span));
    }

    fn warn(&mut self, code: DiagCode, msg: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::warning(code, msg, span));
    }

    fn run(mut self, program: &Program) -> CheckOutcome {
        // Pass 1: imports.
        for (module, version_text, span) in program.imports() {
            if !self.registry.has_module(module) {
                self.error(
                    DiagCode::UnknownImport,
                    format!("no library module named `{module}`"),
                    span,
                );
                continue;
            }
            match version_text.parse::<Version>() {
                Ok(v) if self.registry.is_released(v) => {
                    // Multiple imports: the *lowest* version wins, modelling a
                    // project pinned to its oldest dependency constraint.
                    self.version = Some(match self.version {
                        Some(existing) => existing.min(v),
                        None => v,
                    });
                }
                Ok(v) => {
                    self.error(
                        DiagCode::UnknownImport,
                        format!("`{module}` has no released version {v}"),
                        span,
                    );
                }
                Err(_) => {
                    self.error(
                        DiagCode::UnknownImport,
                        format!("invalid version `{version_text}` in import of `{module}`"),
                        span,
                    );
                }
            }
        }
        let uses_gates = program
            .items
            .iter()
            .any(|i| matches!(i, Item::Stmt(_)) || matches!(i, Item::GateDef { .. }));
        if self.version.is_none() && uses_gates {
            self.diags.push(
                Diagnostic::error(
                    DiagCode::MissingImport,
                    "program uses gates but never imports `qasmlite`",
                    Span::at(1, 1),
                )
                .with_hint("add `import qasmlite 2.1;` at the top"),
            );
        }

        // Pass 2: registers and gate definitions, in order.
        for item in &program.items {
            match item {
                Item::RegDecl {
                    kind,
                    name,
                    size,
                    span,
                } => self.declare_register(*kind, name, *size, *span),
                Item::GateDef {
                    name,
                    params,
                    operands,
                    body,
                    span,
                } => self.declare_subroutine(name, params, operands, body, *span),
                _ => {}
            }
        }

        // Pass 3: statements.
        let mut circuit = Circuit::new(self.num_qubits, self.num_clbits);
        for item in &program.items {
            if let Item::Stmt(stmt) = item {
                self.lower_stmt(stmt, &mut circuit);
            }
        }

        if circuit.num_measurements() == 0 && !circuit.is_empty() {
            self.warn(
                DiagCode::NoMeasurement,
                "circuit contains no measurement; sampled results will be empty",
                Span::at(1, 1),
            );
        }

        let has_errors = self.diags.iter().any(|d| d.severity == Severity::Error);
        CheckOutcome {
            circuit: (!has_errors).then_some(circuit),
            diagnostics: self.diags,
        }
    }

    fn declare_register(&mut self, kind: RegKind, name: &str, size: usize, span: Span) {
        match kind {
            RegKind::Quantum => {
                if self.qregs.contains_key(name) {
                    self.error(
                        DiagCode::DuplicateRegister,
                        format!("quantum register `{name}` declared twice"),
                        span,
                    );
                    return;
                }
                let offset = self.num_qubits;
                self.qregs
                    .insert(name.to_string(), RegInfo { offset, size, kind });
                self.num_qubits += size;
            }
            RegKind::Classical => {
                if self.cregs.contains_key(name) {
                    self.error(
                        DiagCode::DuplicateRegister,
                        format!("classical register `{name}` declared twice"),
                        span,
                    );
                    return;
                }
                let offset = self.num_clbits;
                self.cregs
                    .insert(name.to_string(), RegInfo { offset, size, kind });
                self.num_clbits += size;
            }
        }
    }

    fn declare_subroutine(
        &mut self,
        name: &str,
        params: &[String],
        operands: &[String],
        body: &[GateApp],
        span: Span,
    ) {
        if self.subs.contains_key(name) {
            self.error(
                DiagCode::DuplicateRegister,
                format!("gate `{name}` defined twice"),
                span,
            );
            return;
        }
        // Validate body references: every operand must be a formal name,
        // every expression identifier a formal parameter. Gate names resolve
        // lazily at call sites (so version applies uniformly).
        for app in body {
            for operand in &app.operands {
                if operand.index.is_some() || !operands.contains(&operand.reg) {
                    self.error(
                        DiagCode::UndeclaredRegister,
                        format!(
                            "gate body of `{name}` references `{operand}` which is not a declared operand"
                        ),
                        operand.span,
                    );
                }
            }
            for expr in &app.params {
                if let Err(e) =
                    expr.eval(&|ident| params.contains(&ident.to_string()).then_some(0.0))
                {
                    self.error(
                        DiagCode::ParamCountMismatch,
                        format!("in gate `{name}`: {e}"),
                        app.span,
                    );
                }
            }
        }
        self.subs.insert(
            name.to_string(),
            SubDef {
                params: params.to_vec(),
                operands: operands.to_vec(),
                body: body.to_vec(),
            },
        );
    }

    /// Resolves a qubit operand to flat indices (broadcast → all indices).
    fn resolve_qubits(&mut self, operand: &Operand) -> Option<Vec<usize>> {
        let Some(info) = self.qregs.get(&operand.reg).cloned() else {
            self.error(
                DiagCode::UndeclaredRegister,
                format!("quantum register `{}` is not declared", operand.reg),
                operand.span,
            );
            return None;
        };
        debug_assert_eq!(info.kind, RegKind::Quantum);
        match operand.index {
            Some(i) if i < info.size => Some(vec![info.offset + i]),
            Some(i) => {
                self.error(
                    DiagCode::QubitOutOfRange,
                    format!(
                        "index {i} out of range for register `{}` of size {}",
                        operand.reg, info.size
                    ),
                    operand.span,
                );
                None
            }
            None => Some((info.offset..info.offset + info.size).collect()),
        }
    }

    fn resolve_clbits(&mut self, operand: &Operand) -> Option<Vec<usize>> {
        let Some(info) = self.cregs.get(&operand.reg).cloned() else {
            self.error(
                DiagCode::UndeclaredRegister,
                format!("classical register `{}` is not declared", operand.reg),
                operand.span,
            );
            return None;
        };
        match operand.index {
            Some(i) if i < info.size => Some(vec![info.offset + i]),
            Some(i) => {
                self.error(
                    DiagCode::ClbitOutOfRange,
                    format!(
                        "index {i} out of range for register `{}` of size {}",
                        operand.reg, info.size
                    ),
                    operand.span,
                );
                None
            }
            None => Some((info.offset..info.offset + info.size).collect()),
        }
    }

    /// Resolves a gate name through the registry at the imported version,
    /// returning the canonical name and adapted parameters.
    fn resolve_gate_name(
        &mut self,
        name: &str,
        params: &[f64],
        span: Span,
    ) -> Option<(String, Vec<f64>)> {
        let version = self.version.unwrap_or(crate::api::CURRENT);
        match self.registry.resolve(name, version) {
            Resolution::Ok => Some((name.to_string(), params.to_vec())),
            Resolution::Deprecated { replacement } => {
                let hint = replacement
                    .map(|r| format!("use `{r}` instead"))
                    .unwrap_or_else(|| "consult the migration guide".to_string());
                self.diags.push(
                    Diagnostic::warning(
                        DiagCode::DeprecatedSymbol,
                        format!("`{name}` is deprecated since qasmlite 2.0"),
                        span,
                    )
                    .with_hint(hint),
                );
                match adapt_legacy_params(name, params) {
                    Some((canon, adapted)) => Some((canon.to_string(), adapted)),
                    None => {
                        self.error(
                            DiagCode::ParamCountMismatch,
                            format!("wrong number of parameters for `{name}`"),
                            span,
                        );
                        None
                    }
                }
            }
            Resolution::Removed { replacement } => {
                let hint = replacement
                    .map(|r| format!("use `{r}` instead"))
                    .unwrap_or_else(|| "consult the migration guide".to_string());
                self.diags.push(
                    Diagnostic::error(
                        DiagCode::RemovedSymbol,
                        format!("`{name}` was removed in qasmlite 2.1"),
                        span,
                    )
                    .with_hint(hint),
                );
                None
            }
            Resolution::NotYetIntroduced { introduced } => {
                self.diags.push(
                    Diagnostic::error(
                        DiagCode::MissingImport,
                        format!(
                            "`{name}` requires qasmlite >= {introduced} but version {version} is imported"
                        ),
                        span,
                    )
                    .with_hint(format!("import qasmlite {introduced} or newer")),
                );
                None
            }
            Resolution::Unknown => {
                self.error(
                    DiagCode::UnknownGate,
                    format!("unknown gate `{name}`"),
                    span,
                );
                None
            }
        }
    }

    fn eval_params(&mut self, app: &GateApp) -> Option<Vec<f64>> {
        let mut out = Vec::with_capacity(app.params.len());
        for expr in &app.params {
            match expr.eval_const() {
                Ok(v) => out.push(v),
                Err(e) => {
                    self.error(DiagCode::ParamCountMismatch, e.to_string(), app.span);
                    return None;
                }
            }
        }
        Some(out)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, circuit: &mut Circuit) {
        match stmt {
            Stmt::App(app) => self.lower_app(app, circuit, None),
            Stmt::Measure { src, dst, span } => {
                let (Some(qubits), Some(clbits)) =
                    (self.resolve_qubits(src), self.resolve_clbits(dst))
                else {
                    return;
                };
                if qubits.len() != clbits.len() {
                    self.error(
                        DiagCode::MeasureSizeMismatch,
                        format!(
                            "measure maps {} qubit(s) onto {} classical bit(s)",
                            qubits.len(),
                            clbits.len()
                        ),
                        *span,
                    );
                    return;
                }
                for (q, c) in qubits.into_iter().zip(clbits) {
                    circuit
                        .try_push(Op::Measure { qubit: q, clbit: c })
                        .expect("resolved indices are in range");
                }
            }
            Stmt::Reset { target, span } => {
                let Some(qubits) = self.resolve_qubits(target) else {
                    return;
                };
                let _ = span;
                for q in qubits {
                    circuit
                        .try_push(Op::Reset { qubit: q })
                        .expect("resolved index in range");
                }
            }
            Stmt::Barrier { targets, .. } => {
                let qubits: Vec<usize> = if targets.is_empty() {
                    (0..circuit.num_qubits()).collect()
                } else {
                    let mut all = Vec::new();
                    for t in targets {
                        if let Some(qs) = self.resolve_qubits(t) {
                            all.extend(qs);
                        }
                    }
                    all
                };
                circuit
                    .try_push(Op::Barrier { qubits })
                    .expect("resolved indices in range");
            }
            Stmt::If {
                reg,
                index,
                value,
                app,
                span,
            } => {
                let operand = Operand::indexed(reg.clone(), *index, *span);
                let Some(clbits) = self.resolve_clbits(&operand) else {
                    return;
                };
                if *value > 1 {
                    self.error(
                        DiagCode::ParseError,
                        format!("condition value must be 0 or 1, found {value}"),
                        *span,
                    );
                    return;
                }
                self.lower_app(app, circuit, Some((clbits[0], *value == 1)));
            }
        }
    }

    fn lower_app(
        &mut self,
        app: &GateApp,
        circuit: &mut Circuit,
        condition: Option<(usize, bool)>,
    ) {
        // Subroutine call?
        if let Some(def) = self.subs.get(&app.name).cloned() {
            self.lower_subroutine_call(app, &def, circuit, condition);
            return;
        }
        let Some(params) = self.eval_params(app) else {
            return;
        };
        let Some((canon, params)) = self.resolve_gate_name(&app.name, &params, app.span) else {
            return;
        };
        let Some(gate) = Gate::from_name(&canon, &params) else {
            // Name exists in the registry but the parameter count is wrong.
            self.error(
                DiagCode::ParamCountMismatch,
                format!(
                    "`{}` takes {} parameter(s), {} given",
                    canon,
                    Gate::from_name(&canon, &vec![0.0; expected_params(&canon)])
                        .map(|g| g.num_params())
                        .unwrap_or(0),
                    params.len()
                ),
                app.span,
            );
            return;
        };

        // Resolve operands with broadcast semantics.
        let mut resolved: Vec<Vec<usize>> = Vec::new();
        for operand in &app.operands {
            match self.resolve_qubits(operand) {
                Some(qs) => resolved.push(qs),
                None => return,
            }
        }
        let arity = gate.num_qubits();
        if app.operands.len() != arity {
            // Single whole-register operand on a 1-qubit gate broadcasts.
            if !(arity == 1 && app.operands.len() == 1) {
                self.error(
                    DiagCode::ArityMismatch,
                    format!(
                        "`{}` expects {} operand(s), {} given",
                        canon,
                        arity,
                        app.operands.len()
                    ),
                    app.span,
                );
                return;
            }
        }
        // Broadcast: all operand groups must have equal length.
        let width = resolved.iter().map(Vec::len).max().unwrap_or(1);
        if resolved.iter().any(|g| g.len() != width && g.len() != 1) {
            self.error(
                DiagCode::ArityMismatch,
                "mismatched register sizes in broadcast gate application".to_string(),
                app.span,
            );
            return;
        }
        for k in 0..width {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|g| if g.len() == 1 { g[0] } else { g[k] })
                .collect();
            let op = match condition {
                Some((clbit, value)) => Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                },
                None => Op::Gate { gate, qubits },
            };
            if let Err(e) = circuit.try_push(op) {
                self.error(
                    match e {
                        crate::circuit::CircuitError::DuplicateQubit { .. } => {
                            DiagCode::DuplicateQubit
                        }
                        crate::circuit::CircuitError::ArityMismatch { .. } => {
                            DiagCode::ArityMismatch
                        }
                        crate::circuit::CircuitError::QubitOutOfRange { .. } => {
                            DiagCode::QubitOutOfRange
                        }
                        crate::circuit::CircuitError::ClbitOutOfRange { .. } => {
                            DiagCode::ClbitOutOfRange
                        }
                    },
                    e.to_string(),
                    app.span,
                );
                return;
            }
        }
    }

    fn lower_subroutine_call(
        &mut self,
        app: &GateApp,
        def: &SubDef,
        circuit: &mut Circuit,
        condition: Option<(usize, bool)>,
    ) {
        if app.operands.len() != def.operands.len() {
            self.error(
                DiagCode::SubroutineArityMismatch,
                format!(
                    "gate `{}` expects {} operand(s), {} given",
                    app.name,
                    def.operands.len(),
                    app.operands.len()
                ),
                app.span,
            );
            return;
        }
        if app.params.len() != def.params.len() {
            self.error(
                DiagCode::ParamCountMismatch,
                format!(
                    "gate `{}` expects {} parameter(s), {} given",
                    app.name,
                    def.params.len(),
                    app.params.len()
                ),
                app.span,
            );
            return;
        }
        let Some(arg_values) = self.eval_params(app) else {
            return;
        };
        // Resolve actual operands to single flat qubit indices.
        let mut binding: BTreeMap<&str, usize> = BTreeMap::new();
        for (formal, actual) in def.operands.iter().zip(&app.operands) {
            let Some(qs) = self.resolve_qubits(actual) else {
                return;
            };
            if qs.len() != 1 {
                self.error(
                    DiagCode::SubroutineArityMismatch,
                    format!(
                        "gate `{}` operand `{}` must be a single qubit, not a whole register",
                        app.name, actual
                    ),
                    actual.span,
                );
                return;
            }
            binding.insert(formal.as_str(), qs[0]);
        }
        let param_env: BTreeMap<&str, f64> = def
            .params
            .iter()
            .map(String::as_str)
            .zip(arg_values.iter().copied())
            .collect();

        for body_app in &def.body {
            let mut params = Vec::with_capacity(body_app.params.len());
            let mut failed = false;
            for expr in &body_app.params {
                match expr.eval(&|name| param_env.get(name).copied()) {
                    Ok(v) => params.push(v),
                    Err(e) => {
                        self.error(DiagCode::ParamCountMismatch, e.to_string(), body_app.span);
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                continue;
            }
            let Some((canon, params)) =
                self.resolve_gate_name(&body_app.name, &params, body_app.span)
            else {
                continue;
            };
            let Some(gate) = Gate::from_name(&canon, &params) else {
                self.error(
                    DiagCode::ParamCountMismatch,
                    format!("wrong number of parameters for `{canon}`"),
                    body_app.span,
                );
                continue;
            };
            let qubits: Option<Vec<usize>> = body_app
                .operands
                .iter()
                .map(|o| binding.get(o.reg.as_str()).copied())
                .collect();
            let Some(qubits) = qubits else {
                // Already diagnosed at definition time.
                continue;
            };
            if qubits.len() != gate.num_qubits() {
                self.error(
                    DiagCode::ArityMismatch,
                    format!(
                        "in gate `{}`: `{}` expects {} operand(s), {} given",
                        app.name,
                        canon,
                        gate.num_qubits(),
                        qubits.len()
                    ),
                    body_app.span,
                );
                continue;
            }
            let op = match condition {
                Some((clbit, value)) => Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                },
                None => Op::Gate { gate, qubits },
            };
            if let Err(e) = circuit.try_push(op) {
                self.error(DiagCode::DuplicateQubit, e.to_string(), body_app.span);
            }
        }
    }
}

/// Expected parameter count by canonical name (for error messages).
fn expected_params(name: &str) -> usize {
    match name {
        "rx" | "ry" | "rz" | "p" | "crx" | "cry" | "crz" | "cp" => 1,
        "u" => 3,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse;

    fn check_src(src: &str) -> CheckOutcome {
        let program = parse(src).expect("test source must parse");
        check(&program, &ApiRegistry::standard())
    }

    #[test]
    fn lowers_bell_circuit() {
        let out = check_src(
            "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;\n",
        );
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        let c = out.circuit.unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_measurements(), 2);
    }

    #[test]
    fn missing_import_is_an_error() {
        let out = check_src("qreg q[1];\nh q[0];\n");
        assert!(!out.is_ok());
        assert!(out.errors().any(|d| d.code == DiagCode::MissingImport));
    }

    #[test]
    fn unknown_module_is_an_error() {
        let out = check_src("import qiskit 1.0;\nqreg q[1];\nh q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::UnknownImport));
    }

    #[test]
    fn unreleased_version_is_an_error() {
        let out = check_src("import qasmlite 3.0;\nqreg q[1];\nh q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::UnknownImport));
    }

    #[test]
    fn removed_symbol_is_an_error_with_hint() {
        let out = check_src("import qasmlite 2.1;\nqreg q[2];\ncnot q[0], q[1];\n");
        let diag = out
            .errors()
            .find(|d| d.code == DiagCode::RemovedSymbol)
            .expect("removed-symbol diagnostic");
        assert!(diag.hint.as_deref().unwrap().contains("cx"));
    }

    #[test]
    fn deprecated_symbol_is_a_warning_and_still_lowers() {
        let out = check_src("import qasmlite 2.0;\nqreg q[2];\ncnot q[0], q[1];\n");
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        assert!(out.warnings().any(|d| d.code == DiagCode::DeprecatedSymbol));
        let c = out.circuit.unwrap();
        assert_eq!(c.count_gate("cx"), 1);
    }

    #[test]
    fn modern_gate_on_old_import_is_missing() {
        let out = check_src("import qasmlite 1.0;\nqreg q[2];\ncx q[0], q[1];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::MissingImport));
    }

    #[test]
    fn qubit_out_of_range() {
        let out = check_src("import qasmlite 2.1;\nqreg q[2];\nh q[5];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::QubitOutOfRange));
    }

    #[test]
    fn undeclared_register() {
        let out = check_src("import qasmlite 2.1;\nh r[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::UndeclaredRegister));
    }

    #[test]
    fn measure_size_mismatch() {
        let out =
            check_src("import qasmlite 2.1;\nqreg q[3];\ncreg c[2];\nh q[0];\nmeasure q -> c;\n");
        assert!(out
            .errors()
            .any(|d| d.code == DiagCode::MeasureSizeMismatch));
    }

    #[test]
    fn broadcast_single_qubit_gate() {
        let out =
            check_src("import qasmlite 2.1;\nqreg q[3];\ncreg c[3];\nh q;\nmeasure q -> c;\n");
        assert!(out.is_ok());
        assert_eq!(out.circuit.unwrap().count_gate("h"), 3);
    }

    #[test]
    fn broadcast_two_qubit_gate_zips() {
        let out = check_src(
            "import qasmlite 2.1;\nqreg a[2];\nqreg b[2];\ncreg c[2];\ncx a, b;\nmeasure b -> c;\n",
        );
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        assert_eq!(out.circuit.unwrap().count_gate("cx"), 2);
    }

    #[test]
    fn subroutine_expansion() {
        let src = "import qasmlite 2.1;\ngate bellpair a, b { h a; cx a, b; }\nqreg q[2];\ncreg c[2];\nbellpair q[0], q[1];\nmeasure q -> c;\n";
        let out = check_src(src);
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        let c = out.circuit.unwrap();
        assert_eq!(c.count_gate("h"), 1);
        assert_eq!(c.count_gate("cx"), 1);
    }

    #[test]
    fn parameterized_subroutine() {
        let src = "import qasmlite 2.1;\ngate rot(theta) a { rz(theta) a; rz(theta/2) a; }\nqreg q[1];\ncreg c[1];\nrot(pi) q[0];\nmeasure q[0] -> c[0];\n";
        let out = check_src(src);
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        assert_eq!(out.circuit.unwrap().count_gate("rz"), 2);
    }

    #[test]
    fn subroutine_arity_mismatch() {
        let src = "import qasmlite 2.1;\ngate f a, b { cx a, b; }\nqreg q[2];\nf q[0];\n";
        let out = check_src(src);
        assert!(out
            .errors()
            .any(|d| d.code == DiagCode::SubroutineArityMismatch));
    }

    #[test]
    fn undefined_gate_name() {
        let out = check_src("import qasmlite 2.1;\nqreg q[1];\nfoo q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::UnknownGate));
    }

    #[test]
    fn param_count_mismatch() {
        let out = check_src("import qasmlite 2.1;\nqreg q[1];\nrz q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::ParamCountMismatch));
    }

    #[test]
    fn arity_mismatch_on_cx() {
        let out = check_src("import qasmlite 2.1;\nqreg q[3];\ncx q[0], q[1], q[2];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::ArityMismatch));
    }

    #[test]
    fn duplicate_qubit_in_gate() {
        let out = check_src("import qasmlite 2.1;\nqreg q[2];\ncx q[0], q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::DuplicateQubit));
    }

    #[test]
    fn no_measurement_warns_but_lowers() {
        let out = check_src("import qasmlite 2.1;\nqreg q[1];\nh q[0];\n");
        assert!(out.is_ok());
        assert!(out.warnings().any(|d| d.code == DiagCode::NoMeasurement));
    }

    #[test]
    fn conditional_lowers_to_cond_gate() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nif (c[0] == 1) x q[1];\n";
        let out = check_src(src);
        assert!(out.is_ok(), "diags: {:?}", out.diagnostics);
        let c = out.circuit.unwrap();
        assert!(c.ops().iter().any(|op| matches!(op, Op::CondGate { .. })));
    }

    #[test]
    fn multiple_imports_pin_lowest_version() {
        // qasmlite 2.1 plus a stale gates import at 1.0 pins resolution to 1.0,
        // so `cx` is not yet available.
        let out = check_src(
            "import qasmlite 2.1;\nimport qasmlite.gates 1.0;\nqreg q[2];\ncx q[0], q[1];\n",
        );
        assert!(out.errors().any(|d| d.code == DiagCode::MissingImport));
    }

    #[test]
    fn duplicate_register_diagnosed() {
        let out = check_src("import qasmlite 2.1;\nqreg q[1];\nqreg q[2];\nh q[0];\n");
        assert!(out.errors().any(|d| d.code == DiagCode::DuplicateRegister));
    }

    #[test]
    fn collects_multiple_errors() {
        let out = check_src("import qasmlite 2.1;\nqreg q[1];\nfoo q[0];\nbar q[0];\nh q[9];\n");
        assert!(out.errors().count() >= 3);
    }
}
