//! Versioned API registry for the QasmLite "library".
//!
//! The reproduced paper finds that the dominant failure mode of LLM-written
//! Qiskit code is *library drift*: imports of the wrong version, use of
//! deprecated or removed symbols, and APIs the model's training data
//! predates. To reproduce that failure surface we version QasmLite itself:
//! the registry records, for every symbol, when it was introduced,
//! deprecated and removed, and what replaced it. The semantic checker
//! resolves every gate name against the *imported* version and produces the
//! same class of diagnostics a Python `DeprecationWarning`/`AttributeError`
//! would.
//!
//! Release history modelled here:
//!
//! | version | change |
//! |---|---|
//! | 1.0 | initial: `cnot`, `toffoli`, `u1`, `u2`, `u3`, `iden`, core gates |
//! | 1.1 | adds `swap`, `ch`, `cswap` |
//! | 2.0 | adds `cx`, `ccx`, `p`, `u`, `sx`, `id`; deprecates the 1.x names |
//! | 2.1 | **removes** the deprecated 1.x names (current release) |

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A library version `major.minor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Major component.
    pub major: u16,
    /// Minor component.
    pub minor: u16,
}

impl Version {
    /// Creates a version.
    pub const fn new(major: u16, minor: u16) -> Self {
        Version { major, minor }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Error parsing a version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError(pub String);

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid version string `{}`", self.0)
    }
}

impl std::error::Error for ParseVersionError {}

impl FromStr for Version {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (maj, min) = s
            .split_once('.')
            .ok_or_else(|| ParseVersionError(s.into()))?;
        let major = maj.parse().map_err(|_| ParseVersionError(s.into()))?;
        let minor = min.parse().map_err(|_| ParseVersionError(s.into()))?;
        Ok(Version { major, minor })
    }
}

/// The current QasmLite release.
pub const CURRENT: Version = Version::new(2, 1);

/// All released versions, oldest first.
pub const RELEASES: [Version; 4] = [
    Version::new(1, 0),
    Version::new(1, 1),
    Version::new(2, 0),
    Version::new(2, 1),
];

/// Lifecycle record for one symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolInfo {
    /// Version that introduced the symbol.
    pub introduced: Version,
    /// Version that deprecated it, if any.
    pub deprecated: Option<Version>,
    /// Version that removed it, if any.
    pub removed: Option<Version>,
    /// Canonical replacement name, for deprecated/removed symbols.
    pub replacement: Option<&'static str>,
}

/// Resolution outcome for a symbol against a specific imported version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Symbol available and current.
    Ok,
    /// Symbol available but deprecated; replacement name attached.
    Deprecated { replacement: Option<&'static str> },
    /// Symbol removed in this version; replacement name attached.
    Removed { replacement: Option<&'static str> },
    /// Symbol appears in a *newer* version than imported.
    NotYetIntroduced { introduced: Version },
    /// Symbol has never existed.
    Unknown,
}

/// The registry of library modules and symbol lifecycles.
#[derive(Debug, Clone)]
pub struct ApiRegistry {
    modules: Vec<&'static str>,
    symbols: BTreeMap<&'static str, SymbolInfo>,
    /// Maps legacy names to (canonical name, parameter adapter id).
    aliases: BTreeMap<&'static str, &'static str>,
}

impl Default for ApiRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl ApiRegistry {
    /// Builds the standard registry with the release history above.
    pub fn standard() -> Self {
        let v10 = Version::new(1, 0);
        let v11 = Version::new(1, 1);
        let v20 = Version::new(2, 0);
        let v21 = Version::new(2, 1);
        let mut symbols = BTreeMap::new();
        let mut put = |name: &'static str, info: SymbolInfo| {
            symbols.insert(name, info);
        };
        let stable_v10 = SymbolInfo {
            introduced: v10,
            deprecated: None,
            removed: None,
            replacement: None,
        };
        // Core gates present since 1.0 and never touched.
        for name in [
            "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "cy", "cz", "crx", "cry",
            "crz", "cp",
        ] {
            put(name, stable_v10.clone());
        }
        // 1.1 additions.
        for name in ["swap", "ch", "cswap"] {
            put(
                name,
                SymbolInfo {
                    introduced: v11,
                    ..stable_v10.clone()
                },
            );
        }
        // 2.0 additions (canonical modern names).
        for name in ["cx", "ccx", "p", "u", "sx", "id"] {
            put(
                name,
                SymbolInfo {
                    introduced: v20,
                    deprecated: None,
                    removed: None,
                    replacement: None,
                },
            );
        }
        // Legacy names: deprecated in 2.0, removed in 2.1.
        let legacy = [
            ("cnot", "cx"),
            ("toffoli", "ccx"),
            ("u1", "p"),
            ("u2", "u"),
            ("u3", "u"),
            ("iden", "id"),
        ];
        let mut aliases = BTreeMap::new();
        for (old, new) in legacy {
            put(
                old,
                SymbolInfo {
                    introduced: v10,
                    deprecated: Some(v20),
                    removed: Some(v21),
                    replacement: Some(new),
                },
            );
            aliases.insert(old, new);
        }
        ApiRegistry {
            modules: vec!["qasmlite", "qasmlite.gates", "qasmlite.runtime"],
            symbols,
            aliases,
        }
    }

    /// `true` when `module` is an importable library module.
    pub fn has_module(&self, module: &str) -> bool {
        self.modules.contains(&module)
    }

    /// `true` when `version` is a released QasmLite version.
    pub fn is_released(&self, version: Version) -> bool {
        RELEASES.contains(&version)
    }

    /// Resolves `name` against an imported `version`.
    pub fn resolve(&self, name: &str, version: Version) -> Resolution {
        let Some(info) = self.symbols.get(name) else {
            return Resolution::Unknown;
        };
        if version < info.introduced {
            return Resolution::NotYetIntroduced {
                introduced: info.introduced,
            };
        }
        if let Some(removed) = info.removed {
            if version >= removed {
                return Resolution::Removed {
                    replacement: info.replacement,
                };
            }
        }
        if let Some(deprecated) = info.deprecated {
            if version >= deprecated {
                return Resolution::Deprecated {
                    replacement: info.replacement,
                };
            }
        }
        Resolution::Ok
    }

    /// Canonical modern name for a (possibly legacy) gate name.
    pub fn canonical_name<'a>(&self, name: &'a str) -> &'a str
    where
        'static: 'a,
    {
        self.aliases.get(name).copied().unwrap_or(name)
    }

    /// Lifecycle info for a symbol, if it has ever existed.
    pub fn symbol(&self, name: &str) -> Option<&SymbolInfo> {
        self.symbols.get(name)
    }

    /// All symbols valid (non-removed) at `version` — the "documentation"
    /// surface the RAG corpus is generated from.
    pub fn symbols_at(&self, version: Version) -> Vec<&'static str> {
        self.symbols
            .iter()
            .filter(|(_, info)| {
                version >= info.introduced && info.removed.is_none_or(|r| version < r)
            })
            .map(|(name, _)| *name)
            .collect()
    }

    /// All legacy → canonical alias pairs.
    pub fn aliases(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.aliases.iter().map(|(a, b)| (*a, *b))
    }
}

/// Adapts legacy gate invocations to modern parameter forms.
///
/// Returns the canonical name plus the adapted parameter vector, or `None`
/// when the legacy parameter count is wrong.
pub fn adapt_legacy_params(name: &str, params: &[f64]) -> Option<(&'static str, Vec<f64>)> {
    match (name, params.len()) {
        ("cnot", 0) => Some(("cx", vec![])),
        ("toffoli", 0) => Some(("ccx", vec![])),
        ("iden", 0) => Some(("id", vec![])),
        ("u1", 1) => Some(("p", vec![params[0]])),
        // u2(phi, lambda) = U(pi/2, phi, lambda)
        ("u2", 2) => Some(("u", vec![std::f64::consts::FRAC_PI_2, params[0], params[1]])),
        ("u3", 3) => Some(("u", params.to_vec())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_parse_and_order() {
        let v: Version = "2.1".parse().unwrap();
        assert_eq!(v, Version::new(2, 1));
        assert!(Version::new(1, 1) < Version::new(2, 0));
        assert!("x.y".parse::<Version>().is_err());
        assert!("2".parse::<Version>().is_err());
    }

    #[test]
    fn modern_names_absent_in_v1() {
        let reg = ApiRegistry::standard();
        assert_eq!(
            reg.resolve("cx", Version::new(1, 0)),
            Resolution::NotYetIntroduced {
                introduced: Version::new(2, 0)
            }
        );
        assert_eq!(reg.resolve("cx", CURRENT), Resolution::Ok);
    }

    #[test]
    fn legacy_names_deprecate_then_disappear() {
        let reg = ApiRegistry::standard();
        assert_eq!(reg.resolve("cnot", Version::new(1, 0)), Resolution::Ok);
        assert_eq!(
            reg.resolve("cnot", Version::new(2, 0)),
            Resolution::Deprecated {
                replacement: Some("cx")
            }
        );
        assert_eq!(
            reg.resolve("cnot", CURRENT),
            Resolution::Removed {
                replacement: Some("cx")
            }
        );
    }

    #[test]
    fn unknown_symbols_are_unknown_everywhere() {
        let reg = ApiRegistry::standard();
        assert_eq!(reg.resolve("frobnicate", CURRENT), Resolution::Unknown);
    }

    #[test]
    fn module_and_release_checks() {
        let reg = ApiRegistry::standard();
        assert!(reg.has_module("qasmlite"));
        assert!(reg.has_module("qasmlite.gates"));
        assert!(!reg.has_module("qiskit"));
        assert!(reg.is_released(Version::new(1, 1)));
        assert!(!reg.is_released(Version::new(3, 0)));
    }

    #[test]
    fn symbols_at_excludes_removed() {
        let reg = ApiRegistry::standard();
        let now = reg.symbols_at(CURRENT);
        assert!(now.contains(&"cx"));
        assert!(!now.contains(&"cnot"));
        let old = reg.symbols_at(Version::new(1, 0));
        assert!(old.contains(&"cnot"));
        assert!(!old.contains(&"cx"));
    }

    #[test]
    fn legacy_param_adaptation() {
        assert_eq!(adapt_legacy_params("cnot", &[]), Some(("cx", vec![])));
        let (name, params) = adapt_legacy_params("u2", &[0.1, 0.2]).unwrap();
        assert_eq!(name, "u");
        assert_eq!(params.len(), 3);
        assert!(adapt_legacy_params("u2", &[0.1]).is_none());
    }

    #[test]
    fn canonical_name_maps_aliases() {
        let reg = ApiRegistry::standard();
        assert_eq!(reg.canonical_name("cnot"), "cx");
        assert_eq!(reg.canonical_name("h"), "h");
    }
}
