//! Error-class taxonomy reports.
//!
//! The paper's analysis sections (§V-C/§V-D/§V-E) argue from the
//! *composition* of errors — imports and deprecated API dominating, CoT
//! shifting failures from semantic to none, multi-pass leaving only
//! knowledge-bound classes. This module measures that composition for any
//! configuration, so those arguments can be made from data rather than
//! anecdote.

use crate::grade::grade_source;
use crate::suite::Task;
use qcir::diag::{DiagCode, Severity};
use qlm::model::{CodeLlm, GenConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Coarse failure classes (the paper's vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureClass {
    /// Import or library-version errors.
    ImportVersion,
    /// Deprecated/removed/unknown API symbols.
    Api,
    /// Lexical/grammatical failures.
    Syntax,
    /// Register/index/shape errors.
    Shape,
    /// Program runs but behaves wrongly.
    Semantic,
    /// No failure.
    None,
}

impl FailureClass {
    /// Classifies a graded sample by its dominant failure.
    pub fn of(detail: &crate::grade::GradeDetail) -> FailureClass {
        if detail.passed() {
            return FailureClass::None;
        }
        if detail.syntactic_ok {
            return FailureClass::Semantic;
        }
        // Dominant = first error-severity diagnostic class in a fixed
        // priority order (imports outrank API outrank syntax, matching how
        // a Python run would fail first).
        let codes: Vec<DiagCode> = detail
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect();
        let has = |pred: fn(&DiagCode) -> bool| codes.iter().any(pred);
        if has(|c| matches!(c, DiagCode::UnknownImport | DiagCode::MissingImport)) {
            FailureClass::ImportVersion
        } else if has(|c| {
            matches!(
                c,
                DiagCode::DeprecatedSymbol | DiagCode::RemovedSymbol | DiagCode::UnknownGate
            )
        }) {
            FailureClass::Api
        } else if has(|c| matches!(c, DiagCode::LexError | DiagCode::ParseError)) {
            FailureClass::Syntax
        } else {
            FailureClass::Shape
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            FailureClass::ImportVersion => "import/version",
            FailureClass::Api => "deprecated/unknown api",
            FailureClass::Syntax => "syntax",
            FailureClass::Shape => "registers/shape",
            FailureClass::Semantic => "semantic",
            FailureClass::None => "pass",
        }
    }

    /// All classes in report order.
    pub const ALL: [FailureClass; 6] = [
        FailureClass::None,
        FailureClass::ImportVersion,
        FailureClass::Api,
        FailureClass::Syntax,
        FailureClass::Shape,
        FailureClass::Semantic,
    ];
}

/// Failure-class counts for one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    /// Configuration label.
    pub label: String,
    /// Counts per class.
    pub counts: BTreeMap<FailureClass, usize>,
    /// Total samples.
    pub total: usize,
}

impl Taxonomy {
    /// Fraction of samples in a class.
    pub fn fraction(&self, class: FailureClass) -> f64 {
        self.counts.get(&class).copied().unwrap_or(0) as f64 / self.total.max(1) as f64
    }
}

/// Measures the failure taxonomy of a configuration over a task list.
pub fn measure(
    llm: &CodeLlm,
    tasks: &[Task],
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
) -> Taxonomy {
    let mut counts: BTreeMap<FailureClass, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (t_idx, task) in tasks.iter().enumerate() {
        for s in 0..samples_per_task {
            let sample_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((t_idx * 1000 + s) as u64);
            let generation = llm.generate(&task.spec, config, sample_seed);
            let detail = grade_source(&generation.source, &task.spec);
            *counts.entry(FailureClass::of(&detail)).or_insert(0) += 1;
            total += 1;
        }
    }
    Taxonomy {
        label: config.label.to_string(),
        counts,
        total,
    }
}

/// Renders taxonomies side by side as a markdown table.
pub fn render_markdown(rows: &[Taxonomy]) -> String {
    let mut out = String::from("| class |");
    for r in rows {
        let _ = write!(out, " {} |", r.label);
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in rows {
        out.push_str("---|");
    }
    out.push('\n');
    for class in FailureClass::ALL {
        let _ = write!(out, "| {} |", class.label());
        for r in rows {
            let _ = write!(out, " {:.1}% |", 100.0 * r.fraction(class));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::test_suite;

    #[test]
    fn classification_priorities() {
        use crate::grade::GradeDetail;
        use qcir::diag::{Diagnostic, Span};
        let mk = |codes: Vec<DiagCode>| GradeDetail {
            syntactic_ok: false,
            semantic_ok: false,
            diagnostics: codes
                .into_iter()
                .map(|c| Diagnostic::error(c, "x", Span::default()))
                .collect(),
            tvd: None,
        };
        assert_eq!(
            FailureClass::of(&mk(vec![DiagCode::RemovedSymbol, DiagCode::MissingImport])),
            FailureClass::ImportVersion
        );
        assert_eq!(
            FailureClass::of(&mk(vec![DiagCode::ParseError, DiagCode::RemovedSymbol])),
            FailureClass::Api
        );
        assert_eq!(
            FailureClass::of(&mk(vec![DiagCode::ParseError])),
            FailureClass::Syntax
        );
        assert_eq!(
            FailureClass::of(&mk(vec![DiagCode::QubitOutOfRange])),
            FailureClass::Shape
        );
    }

    #[test]
    fn taxonomy_counts_sum_to_total() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(6).collect();
        let t = measure(&llm, &tasks, &GenConfig::base(), 4, 3);
        assert_eq!(t.total, 24);
        let sum: usize = t.counts.values().sum();
        assert_eq!(sum, t.total);
    }

    #[test]
    fn library_drift_is_a_major_failure_class() {
        // The paper's premise: library drift (imports + deprecated API) is
        // a first-order failure mode. Note the taxonomy takes the *first*
        // failure a runtime would hit, so unparseable programs classify as
        // syntax even when they also contain drift — drift is therefore a
        // lower bound here.
        let llm = CodeLlm::new();
        let tasks = test_suite();
        let t = measure(&llm, &tasks, &GenConfig::base(), 6, 5);
        let drift = t.fraction(FailureClass::ImportVersion) + t.fraction(FailureClass::Api);
        assert!(drift > 0.10, "drift {drift} should be a major class");
        assert!(
            drift > t.fraction(FailureClass::Shape),
            "drift {drift} should dominate shape errors"
        );
        // Fine-tuning fixes syntax faster than API knowledge (§III intro):
        // the drift share of failures must grow under fine-tuning.
        let ft = measure(&llm, &tasks, &GenConfig::fine_tuned(), 6, 5);
        let base_fail = 1.0 - t.fraction(FailureClass::None);
        let ft_fail = 1.0 - ft.fraction(FailureClass::None);
        let ft_drift = ft.fraction(FailureClass::ImportVersion) + ft.fraction(FailureClass::Api);
        assert!(
            ft_drift / ft_fail.max(1e-9) > drift / base_fail.max(1e-9),
            "drift share must grow: ft {ft_drift}/{ft_fail} vs base {drift}/{base_fail}"
        );
    }

    #[test]
    fn cot_shifts_failures_away_from_semantic() {
        let llm = CodeLlm::new();
        let tasks = test_suite();
        let ft = measure(&llm, &tasks, &GenConfig::fine_tuned(), 6, 7);
        let scot = measure(&llm, &tasks, &GenConfig::with_scot(), 6, 7);
        assert!(
            scot.fraction(FailureClass::Semantic) < ft.fraction(FailureClass::Semantic),
            "scot semantic {} !< ft semantic {}",
            scot.fraction(FailureClass::Semantic),
            ft.fraction(FailureClass::Semantic)
        );
    }

    #[test]
    fn markdown_renders_all_classes() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(3).collect();
        let rows = vec![measure(&llm, &tasks, &GenConfig::base(), 2, 1)];
        let md = render_markdown(&rows);
        for class in FailureClass::ALL {
            assert!(md.contains(class.label()), "{md}");
        }
    }
}
