//! Evaluation runner (serial and parallel) and result rendering.
//!
//! [`evaluate_parallel`] fans the task×sample grid out over worker threads:
//! per-sample seeds depend only on `(seed, task index, sample index)` and
//! per-task partial results are folded in task order, so the outcome is
//! bit-identical to [`evaluate`] for every thread count.
//!
//! Within each graded sample, the candidate/reference circuit pair is
//! submitted as two [`qsim::job::JobSpec`]s — each pinning its own grading
//! backend — through one [`qsim::exec::Executor::try_run_batch`] call (see
//! [`crate::grade::grade_source_with_threads`]). When a grade runs with
//! multiple simulator worker threads — the serial [`evaluate`] path, which
//! grades with the host's full width — backend resolution and shot-pool
//! spin-up happen once per grade instead of once per circuit. Parallel
//! eval workers grade with one simulator thread (so pools do not nest),
//! where the batch call degrades to two sequential job runs by design.

use crate::grade::grade_source_with_threads;
use crate::suite::Task;
use qlm::model::{CodeLlm, GenConfig};
use qlm::spec::Difficulty;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Aggregated evaluation outcome for one technique configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Technique label.
    pub label: String,
    /// Total graded samples.
    pub samples: usize,
    /// Samples that parsed and checked.
    pub syntactic_ok: usize,
    /// Samples that also matched the reference behaviour.
    pub passed: usize,
    /// Per-difficulty `(passed, samples)`.
    pub per_difficulty: BTreeMap<Difficulty, (usize, usize)>,
    /// Per-task `(n, c)` pairs for pass@k computation.
    pub per_task: Vec<(usize, usize)>,
}

impl EvalOutcome {
    /// Fraction of samples that were syntactically valid.
    pub fn syntactic_rate(&self) -> f64 {
        self.syntactic_ok as f64 / self.samples.max(1) as f64
    }

    /// Fraction fully correct (the paper's Figure 3 metric).
    pub fn pass_rate(&self) -> f64 {
        self.passed as f64 / self.samples.max(1) as f64
    }

    /// Unbiased pass@k over tasks.
    pub fn pass_at_k(&self, k: usize) -> f64 {
        crate::passk::mean_pass_at_k(&self.per_task, k)
    }

    /// Pass rate within one difficulty band.
    pub fn rate_for(&self, difficulty: Difficulty) -> f64 {
        match self.per_difficulty.get(&difficulty) {
            Some(&(passed, total)) if total > 0 => passed as f64 / total as f64,
            _ => 0.0,
        }
    }
}

/// One task's graded slice of the evaluation grid — the unit of both
/// thread-parallel and multi-process (sharded) work. Public so external
/// coordinators (`qugen-shard`) can carry partial results over a wire and
/// fold them with [`fold_outcome`] exactly as the in-process path does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEval {
    /// Difficulty band of the task (folded into `per_difficulty`).
    pub difficulty: Difficulty,
    /// Samples graded for this task.
    pub samples: usize,
    /// Samples that parsed and checked.
    pub syntactic_ok: usize,
    /// Samples that also matched the reference behaviour.
    pub passed: usize,
}

/// Grades every sample of one task (the unit of parallel work).
fn evaluate_task(
    llm: &CodeLlm,
    task: &Task,
    t_idx: usize,
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
    sim_threads: usize,
) -> TaskEval {
    let mut syntactic_ok = 0usize;
    let mut passed = 0usize;
    for s in 0..samples_per_task {
        let sample_seed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((t_idx * 1000 + s) as u64);
        let generation = llm.generate(&task.spec, config, sample_seed);
        let detail = grade_source_with_threads(&generation.source, &task.spec, sim_threads);
        if detail.syntactic_ok {
            syntactic_ok += 1;
        }
        if detail.passed() {
            passed += 1;
        }
    }
    TaskEval {
        difficulty: task.difficulty(),
        samples: samples_per_task,
        syntactic_ok,
        passed,
    }
}

/// Grades a contiguous task range `[start, end)` of the grid, keeping the
/// *global* task indices so per-sample seeds are placement-independent:
/// the row for task `t` is identical whether it was graded by the serial
/// path, a thread, or a worker process holding any enclosing range.
///
/// Sharded evaluation is therefore a pure merge problem: concatenate the
/// ranges' rows in task order and apply [`fold_outcome`].
///
/// # Panics
///
/// Panics if `start > end` or `end > tasks.len()`.
#[allow(clippy::too_many_arguments)] // the grid coordinates are the signature
pub fn evaluate_range(
    llm: &CodeLlm,
    tasks: &[Task],
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
    start: usize,
    end: usize,
    sim_threads: usize,
) -> Vec<TaskEval> {
    assert!(
        start <= end && end <= tasks.len(),
        "range {start}..{end} out of bounds for {} tasks",
        tasks.len()
    );
    (start..end)
        .map(|t_idx| {
            evaluate_task(
                llm,
                &tasks[t_idx],
                t_idx,
                config,
                samples_per_task,
                seed,
                sim_threads,
            )
        })
        .collect()
}

/// Splits `len` units into contiguous `(start, end)` ranges of at most
/// `range_size` (clamped to ≥ 1), in order. The shard coordinator hands
/// these out to workers; concatenating the results in range order
/// reconstructs the serial grading order exactly.
pub fn partition_ranges(len: usize, range_size: usize) -> Vec<(usize, usize)> {
    let range_size = range_size.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(range_size));
    let mut start = 0usize;
    while start < len {
        let end = (start + range_size).min(len);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Folds per-task partial results (in task order) into an [`EvalOutcome`].
///
/// This is the single merge seam shared by [`evaluate`],
/// [`evaluate_parallel`] and the `qugen-shard` coordinator: every path
/// produces the same `Vec<TaskEval>` in task order, so every path folds to
/// a bit-identical outcome.
pub fn fold_outcome(label: &str, task_evals: Vec<TaskEval>) -> EvalOutcome {
    let mut syntactic_ok = 0usize;
    let mut passed = 0usize;
    let mut samples = 0usize;
    let mut per_difficulty: BTreeMap<Difficulty, (usize, usize)> = BTreeMap::new();
    let mut per_task = Vec::with_capacity(task_evals.len());
    for te in task_evals {
        syntactic_ok += te.syntactic_ok;
        passed += te.passed;
        samples += te.samples;
        let entry = per_difficulty.entry(te.difficulty).or_insert((0, 0));
        entry.0 += te.passed;
        entry.1 += te.samples;
        per_task.push((te.samples, te.passed));
    }
    EvalOutcome {
        label: label.to_string(),
        samples,
        syntactic_ok,
        passed,
        per_difficulty,
        per_task,
    }
}

/// Evaluates a configuration over a task list, `samples_per_task` samples
/// each (seeded deterministically). Equivalent to
/// [`evaluate_parallel`] with one thread.
pub fn evaluate(
    llm: &CodeLlm,
    tasks: &[Task],
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
) -> EvalOutcome {
    evaluate_parallel(llm, tasks, config, samples_per_task, seed, 1)
}

/// Parallel task×sample evaluation driver: grades tasks on up to `threads`
/// workers. Per-sample seeds and the fold order depend only on the inputs,
/// so the outcome is bit-identical to the serial [`evaluate`] for every
/// thread count. Each sample's candidate/reference simulation pair routes
/// through the batch execution API; see the module docs for when that
/// amortizes pool spin-up.
pub fn evaluate_parallel(
    llm: &CodeLlm,
    tasks: &[Task],
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
    threads: usize,
) -> EvalOutcome {
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads <= 1 {
        // A single eval worker may use the host's full width inside the
        // simulator; parallel eval workers grade single-threaded so the
        // pools do not nest multiplicatively.
        let sim_threads = qsim::exec::recommended_threads();
        let evals = tasks
            .iter()
            .enumerate()
            .map(|(t_idx, task)| {
                evaluate_task(
                    llm,
                    task,
                    t_idx,
                    config,
                    samples_per_task,
                    seed,
                    sim_threads,
                )
            })
            .collect();
        return fold_outcome(config.label, evals);
    }
    let slots: Vec<Mutex<Option<TaskEval>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t_idx = next.fetch_add(1, Ordering::Relaxed);
                if t_idx >= tasks.len() {
                    break;
                }
                let eval =
                    evaluate_task(llm, &tasks[t_idx], t_idx, config, samples_per_task, seed, 1);
                *slots[t_idx].lock().expect("task slot poisoned") = Some(eval);
            });
        }
    });
    let evals = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("task slot poisoned")
                .expect("every task index was claimed by a worker")
        })
        .collect();
    fold_outcome(config.label, evals)
}

/// Renders outcomes as a markdown table (the Figure 3 artifact).
pub fn render_markdown(rows: &[EvalOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| technique | pass rate | syntactic | basic | intermediate | advanced |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            r.label,
            100.0 * r.pass_rate(),
            100.0 * r.syntactic_rate(),
            100.0 * r.rate_for(Difficulty::Basic),
            100.0 * r.rate_for(Difficulty::Intermediate),
            100.0 * r.rate_for(Difficulty::Advanced),
        );
    }
    out
}

/// Renders outcomes as CSV.
pub fn render_csv(rows: &[EvalOutcome]) -> String {
    let mut out = String::from("technique,pass_rate,syntactic_rate,basic,intermediate,advanced\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.label,
            r.pass_rate(),
            r.syntactic_rate(),
            r.rate_for(Difficulty::Basic),
            r.rate_for(Difficulty::Intermediate),
            r.rate_for(Difficulty::Advanced),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::test_suite;

    #[test]
    fn evaluate_is_deterministic() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(5).collect();
        let a = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), 3, 42);
        let b = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_are_consistent() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(8).collect();
        let outcome = evaluate(&llm, &tasks, &GenConfig::with_scot(), 4, 1);
        assert_eq!(outcome.samples, 32);
        assert!(outcome.passed <= outcome.syntactic_ok);
        assert!(outcome.syntactic_ok <= outcome.samples);
        let sum: usize = outcome.per_difficulty.values().map(|&(_, t)| t).sum();
        assert_eq!(sum, outcome.samples);
        let task_sum: usize = outcome.per_task.iter().map(|&(_, c)| c).sum();
        assert_eq!(task_sum, outcome.passed);
    }

    #[test]
    fn parallel_evaluation_matches_serial_bit_for_bit() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(6).collect();
        let serial = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), 2, 11);
        for threads in [2usize, 4, 16] {
            let parallel =
                evaluate_parallel(&llm, &tasks, &GenConfig::fine_tuned(), 2, 11, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn partition_ranges_covers_exactly_once() {
        for (len, size) in [(0usize, 3usize), (1, 1), (5, 2), (34, 7), (8, 100), (6, 0)] {
            let ranges = partition_ranges(len, size);
            let mut expect = 0usize;
            for &(start, end) in &ranges {
                assert_eq!(start, expect, "len={len} size={size}");
                assert!(end > start && end - start <= size.max(1));
                expect = end;
            }
            assert_eq!(expect, len, "len={len} size={size}");
        }
    }

    #[test]
    fn range_merge_matches_serial_for_any_split() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(7).collect();
        let config = GenConfig::fine_tuned();
        let serial = evaluate(&llm, &tasks, &config, 2, 23);
        // Range size 1 (maximal sharding), an uneven mid split, and one
        // range covering everything all fold to the identical outcome.
        for size in [1usize, 3, 7] {
            let rows: Vec<TaskEval> = partition_ranges(tasks.len(), size)
                .into_iter()
                .flat_map(|(start, end)| {
                    evaluate_range(&llm, &tasks, &config, 2, 23, start, end, 1)
                })
                .collect();
            assert_eq!(fold_outcome(config.label, rows), serial, "size={size}");
        }
    }

    #[test]
    fn markdown_and_csv_render() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(3).collect();
        let rows = vec![evaluate(&llm, &tasks, &GenConfig::base(), 2, 7)];
        let md = render_markdown(&rows);
        assert!(md.contains("| base |"));
        let csv = render_csv(&rows);
        assert!(csv.lines().count() == 2);
    }
}
