//! Evaluation runner and result rendering.

use crate::grade::grade_source;
use crate::suite::Task;
use qlm::model::{CodeLlm, GenConfig};
use qlm::spec::Difficulty;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated evaluation outcome for one technique configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Technique label.
    pub label: String,
    /// Total graded samples.
    pub samples: usize,
    /// Samples that parsed and checked.
    pub syntactic_ok: usize,
    /// Samples that also matched the reference behaviour.
    pub passed: usize,
    /// Per-difficulty `(passed, samples)`.
    pub per_difficulty: BTreeMap<Difficulty, (usize, usize)>,
    /// Per-task `(n, c)` pairs for pass@k computation.
    pub per_task: Vec<(usize, usize)>,
}

impl EvalOutcome {
    /// Fraction of samples that were syntactically valid.
    pub fn syntactic_rate(&self) -> f64 {
        self.syntactic_ok as f64 / self.samples.max(1) as f64
    }

    /// Fraction fully correct (the paper's Figure 3 metric).
    pub fn pass_rate(&self) -> f64 {
        self.passed as f64 / self.samples.max(1) as f64
    }

    /// Unbiased pass@k over tasks.
    pub fn pass_at_k(&self, k: usize) -> f64 {
        crate::passk::mean_pass_at_k(&self.per_task, k)
    }

    /// Pass rate within one difficulty band.
    pub fn rate_for(&self, difficulty: Difficulty) -> f64 {
        match self.per_difficulty.get(&difficulty) {
            Some(&(passed, total)) if total > 0 => passed as f64 / total as f64,
            _ => 0.0,
        }
    }
}

/// Evaluates a configuration over a task list, `samples_per_task` samples
/// each (seeded deterministically).
pub fn evaluate(
    llm: &CodeLlm,
    tasks: &[Task],
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
) -> EvalOutcome {
    let mut syntactic_ok = 0usize;
    let mut passed = 0usize;
    let mut per_difficulty: BTreeMap<Difficulty, (usize, usize)> = BTreeMap::new();
    let mut per_task = Vec::with_capacity(tasks.len());
    for (t_idx, task) in tasks.iter().enumerate() {
        let mut task_passed = 0usize;
        for s in 0..samples_per_task {
            let sample_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((t_idx * 1000 + s) as u64);
            let generation = llm.generate(&task.spec, config, sample_seed);
            let detail = grade_source(&generation.source, &task.spec);
            if detail.syntactic_ok {
                syntactic_ok += 1;
            }
            let entry = per_difficulty.entry(task.difficulty()).or_insert((0, 0));
            entry.1 += 1;
            if detail.passed() {
                passed += 1;
                task_passed += 1;
                entry.0 += 1;
            }
        }
        per_task.push((samples_per_task, task_passed));
    }
    EvalOutcome {
        label: config.label.to_string(),
        samples: tasks.len() * samples_per_task,
        syntactic_ok,
        passed,
        per_difficulty,
        per_task,
    }
}

/// Renders outcomes as a markdown table (the Figure 3 artifact).
pub fn render_markdown(rows: &[EvalOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| technique | pass rate | syntactic | basic | intermediate | advanced |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            r.label,
            100.0 * r.pass_rate(),
            100.0 * r.syntactic_rate(),
            100.0 * r.rate_for(Difficulty::Basic),
            100.0 * r.rate_for(Difficulty::Intermediate),
            100.0 * r.rate_for(Difficulty::Advanced),
        );
    }
    out
}

/// Renders outcomes as CSV.
pub fn render_csv(rows: &[EvalOutcome]) -> String {
    let mut out = String::from("technique,pass_rate,syntactic_rate,basic,intermediate,advanced\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.label,
            r.pass_rate(),
            r.syntactic_rate(),
            r.rate_for(Difficulty::Basic),
            r.rate_for(Difficulty::Intermediate),
            r.rate_for(Difficulty::Advanced),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::test_suite;

    #[test]
    fn evaluate_is_deterministic() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(5).collect();
        let a = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), 3, 42);
        let b = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_are_consistent() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(8).collect();
        let outcome = evaluate(&llm, &tasks, &GenConfig::with_scot(), 4, 1);
        assert_eq!(outcome.samples, 32);
        assert!(outcome.passed <= outcome.syntactic_ok);
        assert!(outcome.syntactic_ok <= outcome.samples);
        let sum: usize = outcome.per_difficulty.values().map(|&(_, t)| t).sum();
        assert_eq!(sum, outcome.samples);
        let task_sum: usize = outcome.per_task.iter().map(|&(_, c)| c).sum();
        assert_eq!(task_sum, outcome.passed);
    }

    #[test]
    fn markdown_and_csv_render() {
        let llm = CodeLlm::new();
        let tasks: Vec<Task> = test_suite().into_iter().take(3).collect();
        let rows = vec![evaluate(&llm, &tasks, &GenConfig::base(), 2, 7)];
        let md = render_markdown(&rows);
        assert!(md.contains("| base |"));
        let csv = render_csv(&rows);
        assert!(csv.lines().count() == 2);
    }
}
