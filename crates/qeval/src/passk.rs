//! The unbiased pass@k estimator of Chen et al., "Evaluating Large
//! Language Models Trained on Code" (2021):
//! `pass@k = E[1 - C(n-c, k) / C(n, k)]` over problems, where `n` samples
//! were drawn and `c` passed.

/// Unbiased single-problem pass@k given `n` samples with `c` passes.
///
/// # Panics
///
/// Panics when `c > n` or `k == 0` or `k > n`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "cannot pass more samples than drawn");
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k/i)
    let mut prod = 1.0;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Mean pass@k over a set of problems given per-problem `(n, c)` counts.
pub fn mean_pass_at_k(results: &[(usize, usize)], k: usize) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results
        .iter()
        .map(|&(n, c)| pass_at_k(n, c, k))
        .sum::<f64>()
        / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_passes_is_zero() {
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 0, 5), 0.0);
    }

    #[test]
    fn all_pass_is_one() {
        assert!((pass_at_k(10, 10, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pass_at_1_equals_success_rate() {
        // pass@1 = c/n exactly.
        for (n, c) in [(10, 3), (20, 7), (50, 25)] {
            let got = pass_at_k(n, c, 1);
            let expected = c as f64 / n as f64;
            assert!((got - expected).abs() < 1e-12, "n={n} c={c}: {got}");
        }
    }

    #[test]
    fn guaranteed_hit_when_failures_fewer_than_k() {
        assert_eq!(pass_at_k(10, 8, 3), 1.0);
    }

    #[test]
    fn matches_brute_force_enumeration() {
        // n=5, c=2, k=2: 1 - C(3,2)/C(5,2) = 1 - 3/10 = 0.7.
        assert!((pass_at_k(5, 2, 2) - 0.7).abs() < 1e-12);
        // n=6, c=3, k=3: 1 - C(3,3)/C(6,3) = 1 - 1/20 = 0.95.
        assert!((pass_at_k(6, 3, 3) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_k() {
        let p1 = pass_at_k(20, 5, 1);
        let p5 = pass_at_k(20, 5, 5);
        let p10 = pass_at_k(20, 5, 10);
        assert!(p1 < p5 && p5 < p10);
    }

    #[test]
    fn mean_over_problems() {
        let results = vec![(10, 0), (10, 10)];
        assert!((mean_pass_at_k(&results, 1) - 0.5).abs() < 1e-12);
        assert_eq!(mean_pass_at_k(&[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_k_zero() {
        pass_at_k(5, 2, 0);
    }
}
