//! Two-stage grading of generated programs.
//!
//! Stage 1 (**syntactic**): the program must lex, parse and pass the
//! semantic checker against the versioned API registry — everything a
//! Python interpreter would reject at import/run time.
//!
//! Stage 2 (**semantic**): the lowered circuit is executed on the ideal
//! simulator and its outcome distribution compared to the reference
//! circuit's within a total-variation tolerance. This mirrors the paper's
//! "syntactically and semantically valid" criterion (Figure 3) and the
//! §V-C split between the two accuracies.

use qcir::circuit::Circuit;
use qcir::diag::Diagnostic;
use qlm::spec::TaskSpec;
use qsim::backend::{self, BackendChoice, SimError};
use qsim::exec::{Executor, ExecutorConfig};
use qsim::job::JobSpec;

/// Total-variation tolerance for exact-distribution comparisons.
pub const TVD_TOLERANCE_EXACT: f64 = 0.05;
/// Tolerance for sampled comparisons (mid-circuit measurement paths).
pub const TVD_TOLERANCE_SAMPLED: f64 = 0.08;
/// Shots used when sampling is required.
pub const GRADING_SHOTS: u64 = 8192;
/// Shots for sampled comparisons of circuits past the dense grading cap
/// (per-shot tableau trajectories are pricier, and the statistical error at
/// 2048 shots is still well inside [`TVD_TOLERANCE_SAMPLED`]).
pub const GRADING_SHOTS_LARGE: u64 = 2048;
/// Fixed seed for sampled grading (determinism across runs).
pub const GRADING_SEED: u64 = 0xE7A1;

/// Resource guard for *general* (non-Clifford) generated circuits: the
/// grader refuses to allocate dense state vectors past this size for
/// arbitrary generated code, exactly like the pre-backend-layer 22-qubit
/// guard. Clifford circuits are exempt — they grade on the tableau backend
/// with classical registers of any width (outcomes are multi-word, so even
/// distance-7 surface-code tasks with 97+ classical bits are gradeable) —
/// and so are short-range general circuits, which grade on the MPS backend.
pub const GRADING_DENSE_QUBIT_CAP: usize = 22;

/// Picks the grading backend for `circuit` — the cap is three-way
/// class-aware:
///
/// * Clifford circuits grade through auto dispatch (dense when small,
///   tableau when large), with no classical-register width limit;
/// * general circuits at or under [`GRADING_DENSE_QUBIT_CAP`] qubits grade
///   through auto dispatch on the dense engine;
/// * general circuits above the cap whose multi-qubit gates stay within
///   [`qsim::backend::AUTO_MPS_MAX_RANGE`] sites grade on the MPS backend
///   at [`qsim::backend::MPS_DEFAULT_MAX_BOND`] (with the executor's
///   truncation budget guarding fidelity), so a refusal there reports the
///   MPS engine's own cap ([`qsim::backend::MPS_QUBIT_CAP`]) — the limit
///   actually in force — not the dense grading guard;
/// * long-range general circuits over the dense cap are refused with the
///   grading-guard [`SimError::QubitCapExceeded`].
///
/// # Errors
///
/// The [`SimError`] of the first refusing rule.
pub fn grading_backend(circuit: &Circuit) -> Result<BackendChoice, SimError> {
    if backend::classify(circuit).is_clifford() {
        backend::resolve(BackendChoice::Tableau, circuit)?;
        Ok(BackendChoice::Auto)
    } else if circuit.num_qubits() <= GRADING_DENSE_QUBIT_CAP {
        backend::resolve(BackendChoice::Dense, circuit)?;
        Ok(BackendChoice::Auto)
    } else if backend::interaction_range(circuit) <= backend::AUTO_MPS_MAX_RANGE {
        // Short-range general circuit: MPS-eligible, and past
        // MPS_QUBIT_CAP `resolve` reports the MPS cap (1024) rather than
        // the misleading 22-qubit dense guard.
        let choice = BackendChoice::Mps {
            max_bond: backend::MPS_DEFAULT_MAX_BOND,
        };
        backend::resolve(choice, circuit)?;
        Ok(choice)
    } else {
        Err(SimError::QubitCapExceeded {
            backend: "dense (grading guard)",
            num_qubits: circuit.num_qubits(),
            cap: GRADING_DENSE_QUBIT_CAP,
        })
    }
}

/// Checks that the grading executors can simulate `circuit` (the
/// validation half of [`grading_backend`]).
///
/// # Errors
///
/// The [`SimError`] the responsible backend reports.
pub fn grading_preflight(circuit: &Circuit) -> Result<(), SimError> {
    grading_backend(circuit).map(|_| ())
}

/// Grading outcome detail.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeDetail {
    /// Parsed and checked successfully.
    pub syntactic_ok: bool,
    /// Behaviour matched the reference within tolerance.
    pub semantic_ok: bool,
    /// Diagnostics from the checker (errors and warnings).
    pub diagnostics: Vec<Diagnostic>,
    /// The measured total-variation distance, when both circuits ran.
    pub tvd: Option<f64>,
}

impl GradeDetail {
    /// Fully correct: both stages pass.
    pub fn passed(&self) -> bool {
        self.syntactic_ok && self.semantic_ok
    }
}

/// Grades `source` against the task's reference circuit.
pub fn grade_source(source: &str, spec: &TaskSpec) -> GradeDetail {
    grade_source_with_threads(source, spec, qsim::exec::recommended_threads())
}

/// [`grade_source`] with an explicit simulator worker-thread count for the
/// sampled comparison path. Results are thread-count independent; callers
/// that already parallelize across tasks (e.g.
/// [`crate::report::evaluate_parallel`]) pass 1 here so worker pools do not
/// nest multiplicatively.
pub fn grade_source_with_threads(source: &str, spec: &TaskSpec, sim_threads: usize) -> GradeDetail {
    // Stage 1: lex/parse.
    let program = match qcir::dsl::parse(source) {
        Ok(p) => p,
        Err(diag) => {
            return GradeDetail {
                syntactic_ok: false,
                semantic_ok: false,
                diagnostics: vec![diag],
                tvd: None,
            };
        }
    };
    // Stage 1b: semantic check + lowering.
    let outcome = qcir::check::check(&program, &qcir::api::ApiRegistry::standard());
    let Some(circuit) = outcome.circuit.clone() else {
        return GradeDetail {
            syntactic_ok: false,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    };

    // Stage 2: behavioural comparison.
    let reference = spec.reference_circuit();
    if circuit.num_clbits() != reference.num_clbits() {
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    }
    if circuit.num_measurements() == 0 && reference.num_measurements() > 0 {
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    }
    let (Ok(choice_c), Ok(choice_r)) = (grading_backend(&circuit), grading_backend(&reference))
    else {
        // No admissible backend (absurd general register sizes, long-range
        // entanglers over the cap, …): grade as semantically wrong rather
        // than attempting to simulate. Clifford circuits sail through at
        // any classical-register width.
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    };

    // Both branches below construct fresh `Executor`s per grade, but dense
    // circuit lowering is amortized anyway: executors share the process-wide
    // `qsim::plan` cache, so grading many candidates against one reference
    // (or re-grading the same candidate) compiles each distinct circuit
    // once and replays the fused plan afterwards.
    let small = circuit.num_qubits() <= GRADING_DENSE_QUBIT_CAP
        && reference.num_qubits() <= GRADING_DENSE_QUBIT_CAP;
    let exact = small
        && qsim::exec::measures_only_at_end(&circuit)
        && qsim::exec::measures_only_at_end(&reference);
    let (candidate_dist, reference_dist, tolerance) = if exact {
        (
            Executor::ideal_distribution(&circuit, GRADING_SEED),
            Executor::ideal_distribution(&reference, GRADING_SEED),
            TVD_TOLERANCE_EXACT,
        )
    } else {
        // Sampled path: [`grading_backend`] routes each circuit to its
        // class's engine (tableau for large Clifford, MPS for short-range
        // large general circuits). Each job pins its own backend, so the
        // candidate/reference pair always runs through one `try_run_batch`
        // call — backend resolution and worker-pool spin-up happen once per
        // grade even when the two circuits land on different engines.
        let shots = if small {
            GRADING_SHOTS
        } else {
            GRADING_SHOTS_LARGE
        };
        let exec = ExecutorConfig::new().threads(sim_threads.max(1)).build();
        let mut results = exec.try_run_batch(&[
            JobSpec::new(circuit, shots, GRADING_SEED).with_backend(choice_c),
            JobSpec::new(reference, shots, GRADING_SEED ^ 0x5555).with_backend(choice_r),
        ]);
        let reference_counts = results.pop().expect("two batch results");
        let candidate = results.pop().expect("two batch results");
        let (Ok(candidate), Ok(reference_counts)) = (candidate, reference_counts) else {
            // A run-time refusal (e.g. the MPS truncation budget tripping
            // on a candidate that entangles far more than its class
            // suggested): grade as semantically wrong, never trust
            // low-fidelity counts.
            return GradeDetail {
                syntactic_ok: true,
                semantic_ok: false,
                diagnostics: outcome.diagnostics,
                tvd: None,
            };
        };
        (
            candidate.to_distribution(),
            reference_counts.to_distribution(),
            TVD_TOLERANCE_SAMPLED,
        )
    };
    let tvd = candidate_dist.tvd(&reference_dist);
    GradeDetail {
        syntactic_ok: true,
        semantic_ok: tvd <= tolerance,
        diagnostics: outcome.diagnostics,
        tvd: Some(tvd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlm::template::gold_source;

    #[test]
    fn gold_sources_pass_for_representative_tasks() {
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Ghz { n: 4 },
            TaskSpec::Grover { n: 3, marked: 5 },
            TaskSpec::Shor,
            TaskSpec::Teleport {
                prep: qlm::spec::TeleportPrep::One,
            },
            TaskSpec::Walk { steps: 2 },
        ];
        for spec in specs {
            let detail = grade_source(&gold_source(&spec), &spec);
            assert!(
                detail.passed(),
                "{spec}: syn={} sem={} tvd={:?} diags={:?}",
                detail.syntactic_ok,
                detail.semantic_ok,
                detail.tvd,
                detail.diagnostics
            );
        }
    }

    #[test]
    fn parse_error_fails_syntactically() {
        let detail = grade_source("qreg q[2\nh q[0];", &TaskSpec::BellPair);
        assert!(!detail.syntactic_ok);
        assert!(!detail.passed());
        assert!(!detail.diagnostics.is_empty());
    }

    #[test]
    fn removed_symbol_fails_syntactically() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncnot q[0], q[1];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(!detail.syntactic_ok);
    }

    #[test]
    fn deprecated_on_old_import_is_syntactically_fine_and_semantically_right() {
        // cnot under the 2.0 import is only a warning; behaviour matches.
        let src = "import qasmlite 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncnot q[0], q[1];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok, "diags: {:?}", detail.diagnostics);
        assert!(detail.semantic_ok, "tvd: {:?}", detail.tvd);
        assert!(!detail.diagnostics.is_empty(), "warning should be present");
    }

    #[test]
    fn wrong_algorithm_fails_semantically_only() {
        // A GHZ program graded against the superposition task: valid code,
        // wrong distribution.
        let src = gold_source(&TaskSpec::Ghz { n: 3 });
        let detail = grade_source(&src, &TaskSpec::Superposition { n: 3 });
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
        assert!(detail.tvd.unwrap() > 0.5);
    }

    #[test]
    fn missing_measure_fails_semantically() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok, "no-measure is only a warning");
        assert!(!detail.semantic_ok);
    }

    #[test]
    fn clbit_interface_mismatch_fails() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
    }

    #[test]
    fn small_angle_perturbations_within_tolerance_pass() {
        // rz on |0> state doesn't change the distribution at all.
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nrz(0.001) q[0];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.passed(), "tvd {:?}", detail.tvd);
    }

    #[test]
    fn clifford_ghz49_grades_on_the_tableau_backend() {
        // 49 qubits: past every dense cap, but Clifford — the backend layer
        // routes grading onto the stabilizer tableau. Before the unified
        // backend layer this was refused at 22 qubits outright.
        let spec = TaskSpec::Ghz { n: 49 };
        let detail = grade_source(&gold_source(&spec), &spec);
        assert!(
            detail.passed(),
            "syn={} sem={} tvd={:?}",
            detail.syntactic_ok,
            detail.semantic_ok,
            detail.tvd
        );
    }

    #[test]
    fn large_longrange_general_circuit_still_refused() {
        // A non-Clifford 25-qubit program with a long-range entangler trips
        // the grading guard (not even MPS-eligible) and fails semantically
        // without being simulated.
        let mut src =
            String::from("import qasmlite 2.1;\nqreg q[25];\ncreg c[25];\nh q[0];\nt q[0];\n");
        src.push_str("cp(0.4) q[0], q[24];\nmeasure q -> c;\n");
        let detail = grade_source(&src, &TaskSpec::Ghz { n: 25 });
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
        assert_eq!(detail.tvd, None);
    }

    #[test]
    fn large_shortrange_general_circuit_grades_on_mps() {
        // 25 non-Clifford qubits with nearest-neighbor gates only: over the
        // dense grading cap, but the three-way class-aware cap routes it to
        // the MPS backend and it actually simulates (here against the wrong
        // reference, so it fails with a *measured* TVD, not a refusal).
        let mut src = String::from("import qasmlite 2.1;\nqreg q[25];\ncreg c[25];\n");
        for q in 0..25 {
            src.push_str(&format!("h q[{q}];\nt q[{q}];\n"));
        }
        src.push_str("measure q -> c;\n");
        let detail = grade_source(&src, &TaskSpec::Ghz { n: 25 });
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
        assert!(detail.tvd.expect("simulated via MPS") > 0.5);
    }

    #[test]
    fn grading_preflight_reports_typed_errors() {
        let mut clifford_big = Circuit::new(49, 49);
        clifford_big.h(0);
        assert!(grading_preflight(&clifford_big).is_ok());
        // Short-range general circuits over the dense cap are MPS-eligible…
        let mut general_big = Circuit::new(25, 25);
        general_big.t(0);
        assert_eq!(
            grading_backend(&general_big),
            Ok(qsim::backend::BackendChoice::Mps {
                max_bond: qsim::backend::MPS_DEFAULT_MAX_BOND
            })
        );
        // …long-range ones are refused by the grading guard.
        let mut general_wide = Circuit::new(25, 25);
        general_wide.t(0).cp(0.3, 0, 24);
        assert!(matches!(
            grading_preflight(&general_wide),
            Err(SimError::QubitCapExceeded {
                cap: GRADING_DENSE_QUBIT_CAP,
                ..
            })
        ));
        // Wide classical registers no longer refuse: a 97-clbit Clifford
        // circuit (the distance-7 memory shape) preflights clean.
        let wide = Circuit::new(2, 97);
        assert!(grading_preflight(&wide).is_ok());
        // A short-range general circuit past MPS_QUBIT_CAP reports the MPS
        // engine's cap (1024), not the 22-qubit dense grading guard.
        let mut huge = Circuit::new(qsim::backend::MPS_QUBIT_CAP + 1, 0);
        huge.t(0);
        assert!(matches!(
            grading_preflight(&huge),
            Err(SimError::QubitCapExceeded {
                backend: "mps",
                cap: qsim::backend::MPS_QUBIT_CAP,
                ..
            })
        ));
    }

    #[test]
    fn teleport_grading_uses_sampled_path() {
        let spec = TaskSpec::Teleport {
            prep: qlm::spec::TeleportPrep::Plus,
        };
        let detail = grade_source(&gold_source(&spec), &spec);
        assert!(detail.passed(), "tvd {:?}", detail.tvd);
    }
}
