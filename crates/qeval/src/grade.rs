//! Two-stage grading of generated programs.
//!
//! Stage 1 (**syntactic**): the program must lex, parse and pass the
//! semantic checker against the versioned API registry — everything a
//! Python interpreter would reject at import/run time.
//!
//! Stage 2 (**semantic**): the lowered circuit is executed on the ideal
//! simulator and its outcome distribution compared to the reference
//! circuit's within a total-variation tolerance. This mirrors the paper's
//! "syntactically and semantically valid" criterion (Figure 3) and the
//! §V-C split between the two accuracies.

use qcir::diag::Diagnostic;
use qlm::spec::TaskSpec;
use qsim::exec::Executor;

/// Total-variation tolerance for exact-distribution comparisons.
pub const TVD_TOLERANCE_EXACT: f64 = 0.05;
/// Tolerance for sampled comparisons (mid-circuit measurement paths).
pub const TVD_TOLERANCE_SAMPLED: f64 = 0.08;
/// Shots used when sampling is required.
pub const GRADING_SHOTS: u64 = 8192;
/// Fixed seed for sampled grading (determinism across runs).
pub const GRADING_SEED: u64 = 0xE7A1;

/// Grading outcome detail.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeDetail {
    /// Parsed and checked successfully.
    pub syntactic_ok: bool,
    /// Behaviour matched the reference within tolerance.
    pub semantic_ok: bool,
    /// Diagnostics from the checker (errors and warnings).
    pub diagnostics: Vec<Diagnostic>,
    /// The measured total-variation distance, when both circuits ran.
    pub tvd: Option<f64>,
}

impl GradeDetail {
    /// Fully correct: both stages pass.
    pub fn passed(&self) -> bool {
        self.syntactic_ok && self.semantic_ok
    }
}

/// Grades `source` against the task's reference circuit.
pub fn grade_source(source: &str, spec: &TaskSpec) -> GradeDetail {
    // Stage 1: lex/parse.
    let program = match qcir::dsl::parse(source) {
        Ok(p) => p,
        Err(diag) => {
            return GradeDetail {
                syntactic_ok: false,
                semantic_ok: false,
                diagnostics: vec![diag],
                tvd: None,
            };
        }
    };
    // Stage 1b: semantic check + lowering.
    let outcome = qcir::check::check(&program, &qcir::api::ApiRegistry::standard());
    let Some(circuit) = outcome.circuit.clone() else {
        return GradeDetail {
            syntactic_ok: false,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    };

    // Stage 2: behavioural comparison.
    let reference = spec.reference_circuit();
    if circuit.num_clbits() != reference.num_clbits() {
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    }
    if circuit.num_measurements() == 0 && reference.num_measurements() > 0 {
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    }
    if circuit.num_qubits() > 22 {
        // Refuse to simulate absurd register sizes (generated code can
        // declare anything); grade as semantically wrong.
        return GradeDetail {
            syntactic_ok: true,
            semantic_ok: false,
            diagnostics: outcome.diagnostics,
            tvd: None,
        };
    }

    let exact =
        qsim::exec::measures_only_at_end(&circuit) && qsim::exec::measures_only_at_end(&reference);
    let (candidate_dist, reference_dist, tolerance) = if exact {
        (
            Executor::ideal_distribution(&circuit, GRADING_SEED),
            Executor::ideal_distribution(&reference, GRADING_SEED),
            TVD_TOLERANCE_EXACT,
        )
    } else {
        (
            Executor::ideal()
                .run(&circuit, GRADING_SHOTS, GRADING_SEED)
                .to_distribution(),
            Executor::ideal()
                .run(&reference, GRADING_SHOTS, GRADING_SEED ^ 0x5555)
                .to_distribution(),
            TVD_TOLERANCE_SAMPLED,
        )
    };
    let tvd = candidate_dist.tvd(&reference_dist);
    GradeDetail {
        syntactic_ok: true,
        semantic_ok: tvd <= tolerance,
        diagnostics: outcome.diagnostics,
        tvd: Some(tvd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlm::template::gold_source;

    #[test]
    fn gold_sources_pass_for_representative_tasks() {
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Ghz { n: 4 },
            TaskSpec::Grover { n: 3, marked: 5 },
            TaskSpec::Shor,
            TaskSpec::Teleport {
                prep: qlm::spec::TeleportPrep::One,
            },
            TaskSpec::Walk { steps: 2 },
        ];
        for spec in specs {
            let detail = grade_source(&gold_source(&spec), &spec);
            assert!(
                detail.passed(),
                "{spec}: syn={} sem={} tvd={:?} diags={:?}",
                detail.syntactic_ok,
                detail.semantic_ok,
                detail.tvd,
                detail.diagnostics
            );
        }
    }

    #[test]
    fn parse_error_fails_syntactically() {
        let detail = grade_source("qreg q[2\nh q[0];", &TaskSpec::BellPair);
        assert!(!detail.syntactic_ok);
        assert!(!detail.passed());
        assert!(!detail.diagnostics.is_empty());
    }

    #[test]
    fn removed_symbol_fails_syntactically() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncnot q[0], q[1];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(!detail.syntactic_ok);
    }

    #[test]
    fn deprecated_on_old_import_is_syntactically_fine_and_semantically_right() {
        // cnot under the 2.0 import is only a warning; behaviour matches.
        let src = "import qasmlite 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncnot q[0], q[1];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok, "diags: {:?}", detail.diagnostics);
        assert!(detail.semantic_ok, "tvd: {:?}", detail.tvd);
        assert!(!detail.diagnostics.is_empty(), "warning should be present");
    }

    #[test]
    fn wrong_algorithm_fails_semantically_only() {
        // A GHZ program graded against the superposition task: valid code,
        // wrong distribution.
        let src = gold_source(&TaskSpec::Ghz { n: 3 });
        let detail = grade_source(&src, &TaskSpec::Superposition { n: 3 });
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
        assert!(detail.tvd.unwrap() > 0.5);
    }

    #[test]
    fn missing_measure_fails_semantically() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok, "no-measure is only a warning");
        assert!(!detail.semantic_ok);
    }

    #[test]
    fn clbit_interface_mismatch_fails() {
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.syntactic_ok);
        assert!(!detail.semantic_ok);
    }

    #[test]
    fn small_angle_perturbations_within_tolerance_pass() {
        // rz on |0> state doesn't change the distribution at all.
        let src = "import qasmlite 2.1;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nrz(0.001) q[0];\nmeasure q -> c;\n";
        let detail = grade_source(src, &TaskSpec::BellPair);
        assert!(detail.passed(), "tvd {:?}", detail.tvd);
    }

    #[test]
    fn teleport_grading_uses_sampled_path() {
        let spec = TaskSpec::Teleport {
            prep: qlm::spec::TeleportPrep::Plus,
        };
        let detail = grade_source(&gold_source(&spec), &spec);
        assert!(detail.passed(), "tvd {:?}", detail.tvd);
    }
}
