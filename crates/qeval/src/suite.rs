//! The custom evaluation suite.
//!
//! 34 prompt–answer tasks with the paper's difficulty split (§III-B):
//! 16 basic (47%), 8 intermediate (24%), 10 advanced (29%). Each task's
//! answer is the reference circuit from `qalgo` via
//! [`qlm::spec::TaskSpec::reference_circuit`].

use qalgo::dj::DjOracle;
use qlm::spec::{Difficulty, TaskSpec, TeleportPrep};

/// One evaluation task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Stable identifier (used in reports).
    pub id: &'static str,
    /// The generation specification (prompt + reference answer).
    pub spec: TaskSpec,
}

impl Task {
    /// Difficulty band.
    pub fn difficulty(&self) -> Difficulty {
        self.spec.difficulty()
    }
}

/// The full 34-task suite.
pub fn test_suite() -> Vec<Task> {
    vec![
        // --- Basic (16 tasks, 47%) ---------------------------------------
        Task {
            id: "basic/bell",
            spec: TaskSpec::BellPair,
        },
        Task {
            id: "basic/ghz3",
            spec: TaskSpec::Ghz { n: 3 },
        },
        Task {
            id: "basic/ghz4",
            spec: TaskSpec::Ghz { n: 4 },
        },
        Task {
            id: "basic/ghz5",
            spec: TaskSpec::Ghz { n: 5 },
        },
        Task {
            id: "basic/super2",
            spec: TaskSpec::Superposition { n: 2 },
        },
        Task {
            id: "basic/super3",
            spec: TaskSpec::Superposition { n: 3 },
        },
        Task {
            id: "basic/super4",
            spec: TaskSpec::Superposition { n: 4 },
        },
        Task {
            id: "basic/basis-3-5",
            spec: TaskSpec::BasisState { n: 3, value: 5 },
        },
        Task {
            id: "basic/basis-4-10",
            spec: TaskSpec::BasisState { n: 4, value: 10 },
        },
        Task {
            id: "basic/basis-2-1",
            spec: TaskSpec::BasisState { n: 2, value: 1 },
        },
        Task {
            id: "basic/bv-3",
            spec: TaskSpec::BernsteinVazirani {
                n: 3,
                secret: 0b101,
            },
        },
        Task {
            id: "basic/bv-4",
            spec: TaskSpec::BernsteinVazirani {
                n: 4,
                secret: 0b1011,
            },
        },
        Task {
            id: "basic/superdense-01",
            spec: TaskSpec::Superdense {
                b1: false,
                b0: true,
            },
        },
        Task {
            id: "basic/superdense-11",
            spec: TaskSpec::Superdense { b1: true, b0: true },
        },
        Task {
            id: "basic/parity3",
            spec: TaskSpec::ParityCheck { n: 3 },
        },
        Task {
            id: "basic/parity4",
            spec: TaskSpec::ParityCheck { n: 4 },
        },
        // --- Intermediate (8 tasks, 24%) ----------------------------------
        Task {
            id: "mid/dj-const",
            spec: TaskSpec::DeutschJozsa {
                n: 3,
                oracle: DjOracle::ConstantZero,
            },
        },
        Task {
            id: "mid/dj-balanced",
            spec: TaskSpec::DeutschJozsa {
                n: 3,
                oracle: DjOracle::BalancedMask(0b101),
            },
        },
        Task {
            id: "mid/grover2",
            spec: TaskSpec::Grover { n: 2, marked: 3 },
        },
        Task {
            id: "mid/grover3",
            spec: TaskSpec::Grover { n: 3, marked: 5 },
        },
        Task {
            id: "mid/qft-rt",
            spec: TaskSpec::QftRoundTrip { n: 3, input: 5 },
        },
        Task {
            id: "mid/qft-basis",
            spec: TaskSpec::QftBasis { n: 3, input: 0 },
        },
        Task {
            id: "mid/shor15",
            spec: TaskSpec::Shor,
        },
        Task {
            id: "mid/simon2",
            spec: TaskSpec::Simon { n: 2, secret: 0b11 },
        },
        // --- Advanced (10 tasks, 29%) --------------------------------------
        Task {
            id: "adv/qpe-3",
            spec: TaskSpec::Qpe { t: 3, phi: 0.125 },
        },
        Task {
            id: "adv/qpe-4",
            spec: TaskSpec::Qpe { t: 4, phi: 0.3125 },
        },
        Task {
            id: "adv/teleport-one",
            spec: TaskSpec::Teleport {
                prep: TeleportPrep::One,
            },
        },
        Task {
            id: "adv/teleport-plus",
            spec: TaskSpec::Teleport {
                prep: TeleportPrep::Plus,
            },
        },
        Task {
            id: "adv/teleport-ry",
            spec: TaskSpec::Teleport {
                prep: TeleportPrep::Ry(1.234),
            },
        },
        Task {
            id: "adv/walk1",
            spec: TaskSpec::Walk { steps: 1 },
        },
        Task {
            id: "adv/walk3",
            spec: TaskSpec::Walk { steps: 3 },
        },
        Task {
            id: "adv/walk2",
            spec: TaskSpec::Walk { steps: 2 },
        },
        Task {
            id: "adv/anneal3",
            spec: TaskSpec::Annealing { n: 3 },
        },
        Task {
            id: "adv/anneal4",
            spec: TaskSpec::Annealing { n: 4 },
        },
    ]
}

/// The paper's difficulty proportions (basic, intermediate, advanced).
pub const PAPER_SPLIT: (f64, f64, f64) = (0.47, 0.24, 0.29);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_34_tasks() {
        assert_eq!(test_suite().len(), 34);
    }

    #[test]
    fn split_matches_the_paper_within_a_task() {
        let suite = test_suite();
        let count = |d: Difficulty| suite.iter().filter(|t| t.difficulty() == d).count();
        let basic = count(Difficulty::Basic) as f64 / suite.len() as f64;
        let mid = count(Difficulty::Intermediate) as f64 / suite.len() as f64;
        let adv = count(Difficulty::Advanced) as f64 / suite.len() as f64;
        assert!((basic - PAPER_SPLIT.0).abs() < 0.02, "basic {basic}");
        assert!((mid - PAPER_SPLIT.1).abs() < 0.02, "intermediate {mid}");
        assert!((adv - PAPER_SPLIT.2).abs() < 0.02, "advanced {adv}");
    }

    #[test]
    fn task_ids_are_unique() {
        let suite = test_suite();
        let ids: std::collections::BTreeSet<&str> = suite.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn every_reference_circuit_simulates() {
        for task in test_suite() {
            let c = task.spec.reference_circuit();
            assert!(
                c.num_qubits() <= 12,
                "{}: {} qubits",
                task.id,
                c.num_qubits()
            );
            assert!(c.num_measurements() > 0, "{}", task.id);
        }
    }

    #[test]
    fn every_gold_source_passes_grading() {
        for task in test_suite() {
            let src = qlm::template::gold_source(&task.spec);
            let detail = crate::grade::grade_source(&src, &task.spec);
            assert!(
                detail.passed(),
                "{}: tvd={:?} diags={:?}",
                task.id,
                detail.tvd,
                detail.diagnostics
            );
        }
    }
}
