//! # qeval — evaluation suites, grader and pass@k
//!
//! Implements the paper's evaluation methodology (§III-B, §V):
//!
//! * [`suite`] — the custom 34-task prompt–answer suite with the paper's
//!   47% basic / 24% intermediate / 29% advanced split.
//! * [`qhe`] — a Qiskit-HumanEval-like benchmark: library-API-heavy tasks
//!   used for the Table I comparison.
//! * [`grade`] — two-stage grading: *syntactic* (parse + semantic check
//!   against the versioned API) and *semantic* (simulated behaviour within
//!   tolerance of the reference circuit).
//! * [`passk`] — the unbiased pass@k estimator of Chen et al. (2021).
//! * [`report`] — result aggregation and markdown/CSV rendering.
//!
//! # Example
//!
//! ```
//! use qeval::grade::grade_source;
//! use qlm::spec::TaskSpec;
//!
//! let gold = qlm::template::gold_source(&TaskSpec::BellPair);
//! let detail = grade_source(&gold, &TaskSpec::BellPair);
//! assert!(detail.syntactic_ok && detail.semantic_ok);
//! ```

pub mod grade;
pub mod passk;
pub mod qhe;
pub mod report;
pub mod suite;
pub mod taxonomy;

pub use grade::{grade_source, GradeDetail};
pub use suite::{test_suite, Task};
