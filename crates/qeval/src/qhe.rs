//! A Qiskit-HumanEval-like benchmark.
//!
//! QHE (Vishwakarma et al., QCE 2024) tests *library usage*: its prompts
//! lean on Qiskit-specific API rather than deep algorithmic structure.
//! Relative to the custom suite this means (a) easier semantics (mostly
//! basic/intermediate circuits) and (b) a heavier, staler API surface per
//! task — modelled by the `api_difficulty` multiplier on the generation
//! config. Table I of the paper is regenerated against this benchmark.

use crate::report::{evaluate, EvalOutcome};
use crate::suite::Task;
use qalgo::dj::DjOracle;
use qlm::model::{CodeLlm, GenConfig};
use qlm::spec::TaskSpec;

/// API-difficulty multiplier for QHE-like tasks.
pub const QHE_API_DIFFICULTY: f64 = 1.40;

/// The QHE-like task list: 30 library-flavoured tasks, skewed basic.
pub fn qhe_tasks() -> Vec<Task> {
    let mut tasks = vec![
        Task {
            id: "qhe/bell",
            spec: TaskSpec::BellPair,
        },
        Task {
            id: "qhe/ghz3",
            spec: TaskSpec::Ghz { n: 3 },
        },
        Task {
            id: "qhe/ghz4",
            spec: TaskSpec::Ghz { n: 4 },
        },
        Task {
            id: "qhe/ghz6",
            spec: TaskSpec::Ghz { n: 6 },
        },
        Task {
            id: "qhe/super1",
            spec: TaskSpec::Superposition { n: 1 },
        },
        Task {
            id: "qhe/super2",
            spec: TaskSpec::Superposition { n: 2 },
        },
        Task {
            id: "qhe/super5",
            spec: TaskSpec::Superposition { n: 5 },
        },
        Task {
            id: "qhe/basis-1",
            spec: TaskSpec::BasisState { n: 2, value: 2 },
        },
        Task {
            id: "qhe/basis-2",
            spec: TaskSpec::BasisState { n: 3, value: 7 },
        },
        Task {
            id: "qhe/basis-3",
            spec: TaskSpec::BasisState { n: 4, value: 9 },
        },
        Task {
            id: "qhe/basis-4",
            spec: TaskSpec::BasisState { n: 5, value: 17 },
        },
        Task {
            id: "qhe/parity2",
            spec: TaskSpec::ParityCheck { n: 2 },
        },
        Task {
            id: "qhe/parity3",
            spec: TaskSpec::ParityCheck { n: 3 },
        },
        Task {
            id: "qhe/parity5",
            spec: TaskSpec::ParityCheck { n: 5 },
        },
        Task {
            id: "qhe/superdense-00",
            spec: TaskSpec::Superdense {
                b1: false,
                b0: false,
            },
        },
        Task {
            id: "qhe/superdense-10",
            spec: TaskSpec::Superdense {
                b1: true,
                b0: false,
            },
        },
        Task {
            id: "qhe/bv-2",
            spec: TaskSpec::BernsteinVazirani { n: 2, secret: 0b10 },
        },
        Task {
            id: "qhe/bv-3",
            spec: TaskSpec::BernsteinVazirani {
                n: 3,
                secret: 0b110,
            },
        },
        Task {
            id: "qhe/bv-5",
            spec: TaskSpec::BernsteinVazirani {
                n: 5,
                secret: 0b10101,
            },
        },
    ];
    tasks.extend([
        Task {
            id: "qhe/dj-const1",
            spec: TaskSpec::DeutschJozsa {
                n: 2,
                oracle: DjOracle::ConstantOne,
            },
        },
        Task {
            id: "qhe/dj-bal",
            spec: TaskSpec::DeutschJozsa {
                n: 2,
                oracle: DjOracle::BalancedMask(0b01),
            },
        },
        Task {
            id: "qhe/grover2a",
            spec: TaskSpec::Grover { n: 2, marked: 0 },
        },
        Task {
            id: "qhe/grover2b",
            spec: TaskSpec::Grover { n: 2, marked: 2 },
        },
        Task {
            id: "qhe/grover3",
            spec: TaskSpec::Grover { n: 3, marked: 6 },
        },
        Task {
            id: "qhe/qft2",
            spec: TaskSpec::QftBasis { n: 2, input: 0 },
        },
        Task {
            id: "qhe/qft3",
            spec: TaskSpec::QftBasis { n: 3, input: 0 },
        },
        Task {
            id: "qhe/qft-rt2",
            spec: TaskSpec::QftRoundTrip { n: 2, input: 1 },
        },
        Task {
            id: "qhe/qft-rt4",
            spec: TaskSpec::QftRoundTrip { n: 4, input: 9 },
        },
        Task {
            id: "qhe/simon2",
            spec: TaskSpec::Simon { n: 2, secret: 0b01 },
        },
        Task {
            id: "qhe/qpe2",
            spec: TaskSpec::Qpe { t: 2, phi: 0.25 },
        },
    ]);
    tasks
}

/// Adapts a configuration to the QHE benchmark's API-heaviness.
pub fn qhe_config(mut config: GenConfig) -> GenConfig {
    config.api_difficulty = QHE_API_DIFFICULTY;
    config
}

/// The Granite-20B comparison row: a stronger base model with the paper's
/// fine-tuning, no inference-time technique.
pub fn granite_proxy_config() -> GenConfig {
    let mut config = GenConfig::fine_tuned();
    config.model_strength = 1.30;
    config.label = "granite-20b-proxy";
    qhe_config(config)
}

/// Scores one configuration on the QHE-like benchmark.
pub fn qhe_score(
    llm: &CodeLlm,
    config: &GenConfig,
    samples_per_task: usize,
    seed: u64,
) -> EvalOutcome {
    evaluate(llm, &qhe_tasks(), config, samples_per_task, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qhe_is_mostly_basic() {
        let tasks = qhe_tasks();
        let basic = tasks
            .iter()
            .filter(|t| t.difficulty() == qlm::spec::Difficulty::Basic)
            .count();
        assert!(basic * 2 > tasks.len(), "{basic}/{}", tasks.len());
        assert_eq!(tasks.len(), 30);
    }

    #[test]
    fn qhe_gold_sources_pass() {
        for task in qhe_tasks() {
            let src = qlm::template::gold_source(&task.spec);
            let detail = crate::grade::grade_source(&src, &task.spec);
            assert!(detail.passed(), "{}: {:?}", task.id, detail.diagnostics);
        }
    }

    #[test]
    fn qhe_config_raises_api_difficulty() {
        let c = qhe_config(GenConfig::fine_tuned());
        assert!(c.api_difficulty > 1.0);
        assert_eq!(c.training, qlm::finetune::TrainingLevel::FineTuned);
    }

    #[test]
    fn granite_proxy_is_stronger() {
        let g = granite_proxy_config();
        assert!(g.model_strength > 1.0);
        assert_eq!(g.label, "granite-20b-proxy");
    }

    #[test]
    fn qhe_scores_lower_than_suite_for_same_config() {
        // The API-heavy benchmark must be harder syntactically.
        let llm = CodeLlm::new();
        let config = GenConfig::fine_tuned();
        let suite_outcome =
            crate::report::evaluate(&llm, &crate::suite::test_suite(), &config, 3, 11);
        let qhe_outcome = qhe_score(&llm, &qhe_config(config), 3, 11);
        assert!(
            qhe_outcome.syntactic_rate() < suite_outcome.syntactic_rate(),
            "qhe {} vs suite {}",
            qhe_outcome.syntactic_rate(),
            suite_outcome.syntactic_rate()
        );
    }
}
