//! SWAP routing onto a device topology.
//!
//! The paper's QEC agent is topology-specific and its §IV-B discussion
//! ("requiring the devices to follow a fully-connected lattice design")
//! boils down to routing cost: on a non-native device every two-qubit
//! interaction between distant qubits pays SWAP overhead. This module
//! makes that cost concrete: it routes a CX-basis circuit onto an
//! arbitrary coupling map with a BFS-path router and reports the overhead
//! the embedding incurs.

use crate::topology::Topology;
use qcir::circuit::{Circuit, Op};

use std::fmt;

/// Routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The device has fewer qubits than the circuit.
    TooFewQubits { circuit: usize, device: usize },
    /// The device graph is disconnected.
    Disconnected,
    /// The circuit contains a gate wider than two qubits (transpile first).
    WideGate { gate: String },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooFewQubits { circuit, device } => {
                write!(
                    f,
                    "circuit needs {circuit} qubits but the device has {device}"
                )
            }
            RouteError::Disconnected => write!(f, "device coupling graph is disconnected"),
            RouteError::WideGate { gate } => {
                write!(
                    f,
                    "gate `{gate}` is wider than two qubits; transpile to the CX basis first"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed circuit plus its layout bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// The physical circuit (over `topology.num_qubits()` qubits, SWAPs
    /// inserted; classical register unchanged).
    pub circuit: Circuit,
    /// Final layout: `layout[logical] = physical`.
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

impl Routed {
    /// SWAP overhead relative to the original two-qubit gate count.
    pub fn overhead(&self, original: &Circuit) -> f64 {
        let two_qubit = original
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Gate { gate, .. } if gate.num_qubits() == 2))
            .count();
        if two_qubit == 0 {
            return 0.0;
        }
        self.swap_count as f64 / two_qubit as f64
    }
}

/// Routes `circuit` onto `device` with a BFS shortest-path SWAP router.
///
/// Measurement outcomes are preserved exactly: measures are re-targeted
/// through the live layout, so the routed circuit's classical-outcome
/// distribution equals the original's (tested).
///
/// # Errors
///
/// Returns [`RouteError`] when the device is too small/disconnected or the
/// circuit has gates wider than two qubits.
pub fn route(circuit: &Circuit, device: &Topology) -> Result<Routed, RouteError> {
    if device.num_qubits() < circuit.num_qubits() {
        return Err(RouteError::TooFewQubits {
            circuit: circuit.num_qubits(),
            device: device.num_qubits(),
        });
    }
    if !device.is_connected() {
        return Err(RouteError::Disconnected);
    }
    for op in circuit.ops() {
        if let Op::Gate { gate, .. } | Op::CondGate { gate, .. } = op {
            if gate.num_qubits() > 2 {
                return Err(RouteError::WideGate {
                    gate: gate.name().to_string(),
                });
            }
        }
    }

    // layout[logical] = physical; trivial initial placement.
    let mut layout: Vec<usize> = (0..circuit.num_qubits()).collect();
    let mut out = Circuit::new(device.num_qubits(), circuit.num_clbits());
    let mut swap_count = 0usize;

    let bring_adjacent =
        |out: &mut Circuit, layout: &mut Vec<usize>, swap_count: &mut usize, a: usize, b: usize| {
            // Move physical(a) along a shortest path toward physical(b).
            loop {
                let pa = layout[a];
                let pb = layout[b];
                if device.has_edge(pa, pb) {
                    break;
                }
                let path = shortest_path(device, pa, pb);
                debug_assert!(path.len() >= 3, "non-adjacent implies a midpoint");
                let next = path[1];
                out.swap(pa, next);
                *swap_count += 1;
                // Update the layout: whichever logical sits on `next` moves.
                if let Some(other) = layout.iter().position(|&p| p == next) {
                    layout[other] = pa;
                }
                layout[a] = next;
            }
        };

    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } => match qubits.len() {
                1 => {
                    out.push_gate(*gate, &[layout[qubits[0]]]);
                }
                2 => {
                    bring_adjacent(&mut out, &mut layout, &mut swap_count, qubits[0], qubits[1]);
                    out.push_gate(*gate, &[layout[qubits[0]], layout[qubits[1]]]);
                }
                _ => unreachable!("validated above"),
            },
            Op::CondGate {
                gate,
                qubits,
                clbit,
                value,
            } => {
                if qubits.len() == 2 {
                    bring_adjacent(&mut out, &mut layout, &mut swap_count, qubits[0], qubits[1]);
                }
                let phys: Vec<usize> = qubits.iter().map(|&q| layout[q]).collect();
                out.cond_gate(*gate, &phys, *clbit, *value);
            }
            Op::Measure { qubit, clbit } => {
                out.measure(layout[*qubit], *clbit);
            }
            Op::Reset { qubit } => {
                out.reset(layout[*qubit]);
            }
            Op::Barrier { qubits } => {
                let phys: Vec<usize> = qubits.iter().map(|&q| layout[q]).collect();
                out.try_push(Op::Barrier { qubits: phys })
                    .expect("barrier in range");
            }
        }
    }

    Ok(Routed {
        circuit: out,
        final_layout: layout,
        swap_count,
    })
}

/// BFS shortest path between two physical qubits (inclusive endpoints).
fn shortest_path(device: &Topology, from: usize, to: usize) -> Vec<usize> {
    use std::collections::VecDeque;
    let n = device.num_qubits();
    let mut prev = vec![usize::MAX; n];
    prev[from] = from;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            break;
        }
        for v in device.neighbors(u) {
            if prev[v] == usize::MAX {
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    path
}

/// `true` when every two-qubit gate in the circuit respects the coupling
/// map.
pub fn respects_topology(circuit: &Circuit, device: &Topology) -> bool {
    circuit.ops().iter().all(|op| match op {
        Op::Gate { qubits, .. } | Op::CondGate { qubits, .. } if qubits.len() == 2 => {
            device.has_edge(qubits[0], qubits[1])
        }
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    fn ghz_line_test(n: usize, device: &Topology) {
        let mut qc = Circuit::new(n, n);
        qc.h(0);
        // Star pattern: all CX from qubit 0, maximally non-local.
        for q in 1..n {
            qc.cx(0, q);
        }
        qc.measure_all();
        let routed = route(&qc, device).expect("routes");
        assert!(
            respects_topology(&routed.circuit, device),
            "routed circuit must respect the coupling map"
        );
        // Outcome distributions must be identical.
        let original = Executor::ideal_distribution(&qc, 0);
        let mapped = Executor::ideal_distribution(&routed.circuit, 0);
        assert!(
            original.tvd(&mapped) < 1e-9,
            "distribution changed: tvd {}",
            original.tvd(&mapped)
        );
    }

    #[test]
    fn routes_star_ghz_onto_line() {
        ghz_line_test(5, &Topology::line(5));
    }

    #[test]
    fn routes_onto_grid() {
        ghz_line_test(6, &Topology::grid(2, 3));
    }

    #[test]
    fn routes_onto_heavy_hex() {
        let device = Topology::heavy_hex(2, 2);
        ghz_line_test(5, &device);
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut qc = Circuit::new(3, 3);
        qc.h(0).cx(0, 1).cx(1, 2).measure_all();
        let routed = route(&qc, &Topology::line(3)).expect("routes");
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.overhead(&qc), 0.0);
    }

    #[test]
    fn line_device_costs_swaps_for_distant_gates() {
        let mut qc = Circuit::new(4, 4);
        qc.h(0).cx(0, 3).measure_all();
        let routed = route(&qc, &Topology::line(4)).expect("routes");
        assert!(routed.swap_count >= 2, "swaps: {}", routed.swap_count);
        assert!(respects_topology(&routed.circuit, &Topology::line(4)));
        let original = Executor::ideal_distribution(&qc, 0);
        let mapped = Executor::ideal_distribution(&routed.circuit, 0);
        assert!(original.tvd(&mapped) < 1e-9);
    }

    #[test]
    fn teleportation_with_conditionals_routes_correctly() {
        let qc = qalgo::teleport::teleport_one();
        let device = Topology::line(5);
        let routed = route(&qc, &device).expect("routes");
        assert!(respects_topology(&routed.circuit, &device));
        let counts = Executor::ideal()
            .try_run(&routed.circuit, 1000, 3)
            .expect("routed teleport is dense-simulable");
        // c2 (the teleported qubit) must always read 1.
        for (word, count) in counts.iter() {
            if count > 0 {
                assert!(word.bit(2), "c2 must be 1 in {}", word.bitstring(3));
            }
        }
    }

    #[test]
    fn full_device_never_needs_swaps() {
        let mut qc = Circuit::new(4, 4);
        qc.h(0).cx(0, 3).cx(1, 2).cx(0, 2).measure_all();
        let routed = route(&qc, &Topology::full(4)).expect("routes");
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn heavy_hex_costs_more_than_grid() {
        // The paper's §IV-B point, quantified: the same circuit pays more
        // SWAP overhead on heavy-hex than on a grid.
        let mut qc = Circuit::new(8, 8);
        qc.h(0);
        for q in 1..8 {
            qc.cx(0, q);
        }
        qc.measure_all();
        let grid = route(&qc, &Topology::grid(3, 3)).expect("grid routes");
        let hex = route(&qc, &Topology::heavy_hex(2, 2)).expect("hex routes");
        assert!(
            hex.swap_count >= grid.swap_count,
            "hex {} vs grid {}",
            hex.swap_count,
            grid.swap_count
        );
    }

    #[test]
    fn errors_are_reported() {
        let mut qc = Circuit::new(5, 0);
        qc.h(0);
        assert!(matches!(
            route(&qc, &Topology::line(3)),
            Err(RouteError::TooFewQubits { .. })
        ));
        let disconnected = Topology::new("split", 6, &[(0, 1), (2, 3)]);
        assert_eq!(route(&qc, &disconnected), Err(RouteError::Disconnected));
        let mut wide = Circuit::new(3, 0);
        wide.ccx(0, 1, 2);
        assert!(matches!(
            route(&wide, &Topology::line(3)),
            Err(RouteError::WideGate { .. })
        ));
    }

    #[test]
    fn transpile_then_route_handles_ccx() {
        let mut qc = Circuit::new(3, 3);
        qc.h(0).ccx(0, 1, 2).measure_all();
        let basis = qcir::transpile::transpile(&qc);
        let device = Topology::line(3);
        let routed = route(&basis, &device).expect("routes");
        assert!(respects_topology(&routed.circuit, &device));
        let original = Executor::ideal_distribution(&qc, 0);
        let mapped = Executor::ideal_distribution(&routed.circuit, 0);
        assert!(
            original.tvd(&mapped) < 1e-6,
            "tvd {}",
            original.tvd(&mapped)
        );
    }
}
