//! The Steane \[\[7,1,3\]\] code (Steane 1996), cited by the paper as the
//! classic example of a QEC code predating surface codes.
//!
//! A CSS code built from the \[7,4,3\] Hamming code: the same three parity
//! checks serve as X-type and Z-type stabilizers, so single X and Z errors
//! are independently correctable via Hamming syndrome lookup — the
//! textbook contrast to the topology-dependent surface code the paper's
//! agent synthesizes (Steane needs no lattice, but also gives d=3 only).

use qcir::circuit::Circuit;
use rand::Rng;

/// The three Hamming parity checks over 7 bits (1-indexed positions
/// 1..=7; bit `q` participates in check `k` iff bit `k` of `q+1` is set).
const CHECKS: [[usize; 4]; 3] = [
    [0, 2, 4, 6], // positions with bit0 set: 1,3,5,7
    [1, 2, 5, 6], // positions with bit1 set: 2,3,6,7
    [3, 4, 5, 6], // positions with bit2 set: 4,5,6,7
];

/// The Steane code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SteaneCode;

impl SteaneCode {
    /// Creates the code.
    pub fn new() -> Self {
        SteaneCode
    }

    /// Number of data qubits.
    pub fn num_data(&self) -> usize {
        7
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        3
    }

    /// The X-type stabilizer supports (detect Z errors).
    pub fn x_stabilizers(&self) -> [[usize; 4]; 3] {
        CHECKS
    }

    /// The Z-type stabilizer supports (detect X errors).
    pub fn z_stabilizers(&self) -> [[usize; 4]; 3] {
        CHECKS
    }

    /// Z-syndrome of an X-error pattern: the 3-bit Hamming syndrome.
    pub fn z_syndrome(&self, x_errors: &[bool; 7]) -> u8 {
        let mut syndrome = 0u8;
        for (k, check) in CHECKS.iter().enumerate() {
            let parity = check.iter().filter(|&&q| x_errors[q]).count() % 2;
            if parity == 1 {
                syndrome |= 1 << k;
            }
        }
        syndrome
    }

    /// Decodes a 3-bit syndrome to the unique single-qubit correction:
    /// Hamming decoding — the syndrome *is* the (1-indexed) error position.
    pub fn decode(&self, syndrome: u8) -> Option<usize> {
        match syndrome {
            0 => None,
            s => Some((s - 1) as usize),
        }
    }

    /// Runs one X-error correction cycle on a pattern, returning the
    /// corrected pattern.
    pub fn correct_x(&self, mut x_errors: [bool; 7]) -> [bool; 7] {
        let syndrome = self.z_syndrome(&x_errors);
        if let Some(q) = self.decode(syndrome) {
            x_errors[q] = !x_errors[q];
        }
        x_errors
    }

    /// Whether a residual X pattern implements a logical X (odd overlap
    /// with the logical Z = all-7 support: any odd-weight residual).
    pub fn is_logical_x_flip(&self, x_errors: &[bool; 7]) -> bool {
        x_errors.iter().filter(|&&e| e).count() % 2 == 1
    }

    /// Monte-Carlo logical X error rate under i.i.d. X noise at rate `p`.
    pub fn logical_error_rate(&self, p: f64, trials: usize, rng: &mut impl Rng) -> f64 {
        let mut failures = 0usize;
        for _ in 0..trials {
            let mut errors = [false; 7];
            for e in errors.iter_mut() {
                *e = rng.gen_bool(p);
            }
            let corrected = self.correct_x(errors);
            debug_assert_eq!(self.z_syndrome(&corrected), 0);
            if self.is_logical_x_flip(&corrected) {
                failures += 1;
            }
        }
        failures as f64 / trials as f64
    }

    /// Builds the logical-|0> encoding circuit (standard 7-qubit encoder:
    /// Hadamards on positions 0, 1 and 3, then the Hamming CNOT fan-out)
    /// plus ancilla-free transversal measurement.
    pub fn encode_zero_circuit(&self) -> Circuit {
        let mut qc = Circuit::new(7, 7);
        // |0>_L = sum over Hamming codewords; prepare via generators.
        qc.h(0).h(1).h(3);
        // Generator rows of the Hamming code (position q in CHECKS[k]).
        for &(src, targets) in &[(0usize, [2usize, 4, 6]), (1, [2, 5, 6]), (3, [4, 5, 6])] {
            for &t in &targets {
                qc.cx(src, t);
            }
        }
        qc.measure_all();
        qc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stabilizers_commute_pairwise() {
        // CSS condition: every X check overlaps every Z check evenly.
        let code = SteaneCode::new();
        for xs in code.x_stabilizers() {
            for zs in code.z_stabilizers() {
                let overlap = xs.iter().filter(|q| zs.contains(q)).count();
                assert_eq!(overlap % 2, 0, "{xs:?} vs {zs:?}");
            }
        }
    }

    #[test]
    fn syndrome_identifies_every_single_error() {
        let code = SteaneCode::new();
        for q in 0..7 {
            let mut errors = [false; 7];
            errors[q] = true;
            let syndrome = code.z_syndrome(&errors);
            assert_eq!(code.decode(syndrome), Some(q), "qubit {q}");
        }
    }

    #[test]
    fn every_single_error_is_corrected() {
        let code = SteaneCode::new();
        for q in 0..7 {
            let mut errors = [false; 7];
            errors[q] = true;
            let corrected = code.correct_x(errors);
            assert_eq!(code.z_syndrome(&corrected), 0);
            assert!(!code.is_logical_x_flip(&corrected), "qubit {q}");
        }
    }

    #[test]
    fn correction_always_returns_to_codespace() {
        let code = SteaneCode::new();
        for pattern in 0u8..128 {
            let mut errors = [false; 7];
            for (q, e) in errors.iter_mut().enumerate() {
                *e = (pattern >> q) & 1 == 1;
            }
            let corrected = code.correct_x(errors);
            assert_eq!(code.z_syndrome(&corrected), 0, "pattern {pattern:#09b}");
        }
    }

    #[test]
    fn logical_error_rate_beats_physical_below_threshold() {
        let code = SteaneCode::new();
        let mut rng = StdRng::seed_from_u64(1);
        let p = 0.02;
        let rate = code.logical_error_rate(p, 50_000, &mut rng);
        assert!(rate < p, "logical {rate} !< physical {p}");
        // d=3: leading order 21 p^2; at p=0.02 that's ~0.0084.
        assert!((rate - 21.0 * p * p).abs() < 0.004, "rate {rate}");
    }

    #[test]
    fn encoder_produces_even_weight_superposition() {
        // |0>_L is a uniform superposition over the 16 Hamming codewords,
        // all of even weight... actually codewords of the [7,4] code that
        // satisfy all three checks. Verify all measured words have zero
        // syndrome.
        let code = SteaneCode::new();
        let qc = code.encode_zero_circuit();
        let dist = qsim::exec::Executor::ideal_distribution(&qc, 0);
        let mut support = 0;
        for (word, p) in dist.iter() {
            if p > 1e-9 {
                support += 1;
                let mut bits = [false; 7];
                for (q, b) in bits.iter_mut().enumerate() {
                    *b = word.bit(q);
                }
                assert_eq!(code.z_syndrome(&bits), 0, "word {}", word.bitstring(7));
            }
        }
        assert_eq!(support, 8, "|0>_L superposes the 8 even codewords");
    }
}
