//! # qec — quantum error correction substrate
//!
//! Everything the paper's third agent ("QEC Decoder Generation Agent")
//! needs: device topologies, the rotated surface code, noisy multi-round
//! syndrome extraction, decoders, and logical-memory experiments that
//! quantify the qubit-lifetime extension the paper claims.
//!
//! Layout:
//!
//! * [`topology`] — device coupling maps (line, grid, heavy-hex, full).
//! * [`surface`] — rotated surface code lattices for odd distance `d`.
//! * [`repetition`] — the bit-flip repetition code baseline.
//! * [`syndrome`] — phenomenological noise + multi-round syndrome
//!   extraction (the "physical errors over time" and "measurement error"
//!   of the paper's Figure 2).
//! * [`decoder`] — lookup (exact, d=3), greedy matching, and union-find
//!   decoders over space or space-time decoding graphs.
//! * [`memory`] — logical error rate vs physical rate and distance; the
//!   lifetime-extension factor used by the QEC agent.
//! * [`agent_iface`] — the `Topology -> DecoderSpec` synthesis interface
//!   the agent crate consumes.
//!
//! # Example
//!
//! ```
//! use qec::surface::SurfaceCode;
//! let code = SurfaceCode::new(3);
//! assert_eq!(code.num_data(), 9);
//! assert_eq!(code.x_stabilizers().len() + code.z_stabilizers().len(), 8);
//! ```

pub mod agent_iface;
pub mod decoder;
pub mod memory;
pub mod repetition;
pub mod route;
pub mod steane;
pub mod surface;
pub mod syndrome;
pub mod topology;

pub use surface::SurfaceCode;
pub use topology::Topology;
