//! The bit-flip repetition code — pedagogical baseline and the first code
//! the QEC agent offers on devices too small for a surface code.

use qcir::circuit::Circuit;
use rand::Rng;

/// A distance-`n` bit-flip repetition code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCode {
    n: usize,
}

impl RepetitionCode {
    /// Creates the code.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is odd and at least 3 (majority vote needs odd).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3 && n % 2 == 1, "repetition distance must be odd >= 3");
        RepetitionCode { n }
    }

    /// Number of data qubits.
    pub fn num_data(&self) -> usize {
        self.n
    }

    /// Majority-vote decoding of a noisy codeword; returns the corrected
    /// logical bit.
    pub fn decode_majority(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.n);
        bits.iter().filter(|&&b| b).count() * 2 > self.n
    }

    /// Syndrome (adjacent-pair parities) of a noisy codeword.
    pub fn syndrome(&self, bits: &[bool]) -> Vec<bool> {
        (0..self.n - 1).map(|i| bits[i] != bits[i + 1]).collect()
    }

    /// Monte-Carlo logical error rate under i.i.d. bit flips at rate `p`.
    pub fn logical_error_rate(&self, p: f64, trials: usize, rng: &mut impl Rng) -> f64 {
        let mut failures = 0usize;
        for _ in 0..trials {
            let flips = (0..self.n).filter(|_| rng.gen_bool(p)).count();
            if flips * 2 > self.n {
                failures += 1;
            }
        }
        failures as f64 / trials as f64
    }

    /// Analytic logical error rate (sum of binomial tail above n/2).
    pub fn analytic_error_rate(&self, p: f64) -> f64 {
        let n = self.n;
        let mut total = 0.0;
        for k in (n / 2 + 1)..=n {
            total += binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
        }
        total
    }

    /// Builds an encode + noiseless-syndrome circuit: a logical `bit` is
    /// encoded across the data qubits with ancilla parity checks measured
    /// into clbits `0..n-1` and the data into clbits `n-1..2n-1`.
    pub fn encode_circuit(&self, bit: bool) -> Circuit {
        let n = self.n;
        let num_anc = n - 1;
        let mut qc = Circuit::new(n + num_anc, num_anc + n);
        if bit {
            qc.x(0);
        }
        // Fan out the logical bit.
        for q in 1..n {
            qc.cx(0, q);
        }
        qc.barrier_all();
        // Parity checks on ancillas n..n+num_anc.
        for i in 0..num_anc {
            let anc = n + i;
            qc.cx(i, anc);
            qc.cx(i + 1, anc);
            qc.measure(anc, i);
        }
        for q in 0..n {
            qc.measure(q, num_anc + q);
        }
        qc
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut result = 1.0;
    for i in 0..k {
        result *= (n - i) as f64 / (k - i) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_decoding() {
        let code = RepetitionCode::new(5);
        assert!(!code.decode_majority(&[false, true, false, false, true]));
        assert!(code.decode_majority(&[true, true, false, true, true]));
    }

    #[test]
    fn syndrome_flags_boundaries_of_error_runs() {
        let code = RepetitionCode::new(5);
        let s = code.syndrome(&[false, true, true, false, false]);
        assert_eq!(s, vec![true, false, true, false]);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let code = RepetitionCode::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        let mc = code.logical_error_rate(0.1, 100_000, &mut rng);
        let exact = code.analytic_error_rate(0.1);
        assert!((mc - exact).abs() < 0.005, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn bigger_codes_suppress_more() {
        let p = 0.05;
        let e3 = RepetitionCode::new(3).analytic_error_rate(p);
        let e5 = RepetitionCode::new(5).analytic_error_rate(p);
        let e7 = RepetitionCode::new(7).analytic_error_rate(p);
        assert!(e3 > e5 && e5 > e7, "{e3} > {e5} > {e7}");
        assert!(e3 < p, "even d=3 beats the bare qubit below threshold");
    }

    #[test]
    fn encode_circuit_is_consistent() {
        let code = RepetitionCode::new(3);
        let qc = code.encode_circuit(true);
        let counts = Executor::ideal()
            .try_run(&qc, 200, 4)
            .expect("repetition-code circuits are dense-simulable");
        // Noiseless: parity checks all zero, data all ones.
        // clbits: 0..2 parity, 2..5 data.
        let expected = 0b11100_u64;
        assert_eq!(counts.count(expected), 200, "{counts}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_distance() {
        RepetitionCode::new(4);
    }
}
