//! The decoding graph shared by every decoder.

use crate::surface::SurfaceCode;
use std::collections::VecDeque;

/// An edge in the decoding graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint, or `None` for the virtual boundary.
    pub b: Option<usize>,
    /// The data qubit this edge corresponds to, or `None` for a
    /// measurement-error (time-like) edge.
    pub qubit: Option<usize>,
}

/// A decoding graph: nodes are detection-event sites, edges are error
/// mechanisms, and the boundary absorbs unmatched defects.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// adjacency: per node, (edge index, neighbour or boundary).
    adj: Vec<Vec<(usize, Option<usize>)>>,
}

impl DecodingGraph {
    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics when an edge endpoint is out of range.
    pub fn new(num_nodes: usize, edges: Vec<Edge>) -> Self {
        let mut adj = vec![Vec::new(); num_nodes];
        for (idx, e) in edges.iter().enumerate() {
            assert!(e.a < num_nodes, "edge endpoint out of range");
            adj[e.a].push((idx, e.b));
            if let Some(b) = e.b {
                assert!(b < num_nodes, "edge endpoint out of range");
                adj[b].push((idx, Some(e.a)));
            }
        }
        DecodingGraph {
            num_nodes,
            edges,
            adj,
        }
    }

    /// Number of detection-event nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adjacency of `node`: `(edge index, neighbour)` pairs; `None`
    /// neighbour means the boundary.
    pub fn neighbors(&self, node: usize) -> &[(usize, Option<usize>)] {
        &self.adj[node]
    }

    /// Code-capacity X-error graph of a surface code: one node per Z
    /// stabilizer, one edge per data qubit (boundary edge when the qubit
    /// belongs to a single Z stabilizer).
    pub fn code_capacity_x(code: &SurfaceCode) -> Self {
        let z_stabs = code.z_stabilizers();
        let num_nodes = z_stabs.len();
        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); code.num_data()];
        for (i, s) in z_stabs.iter().enumerate() {
            for &q in &s.support {
                owners[q].push(i);
            }
        }
        let mut edges = Vec::new();
        for (q, own) in owners.iter().enumerate() {
            match own.as_slice() {
                [a] => edges.push(Edge {
                    a: *a,
                    b: None,
                    qubit: Some(q),
                }),
                [a, b] => edges.push(Edge {
                    a: *a,
                    b: Some(*b),
                    qubit: Some(q),
                }),
                [] => {
                    // A data qubit in no Z stabilizer cannot occur in a valid
                    // rotated layout; keep the invariant loud in debug builds.
                    debug_assert!(false, "qubit {q} not covered by any Z stabilizer");
                }
                more => {
                    debug_assert!(false, "qubit {q} in {} Z stabilizers", more.len());
                }
            }
        }
        DecodingGraph::new(num_nodes, edges)
    }

    /// Code-capacity Z-error graph (X stabilizers detect Z errors).
    pub fn code_capacity_z(code: &SurfaceCode) -> Self {
        let x_stabs = code.x_stabilizers();
        let num_nodes = x_stabs.len();
        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); code.num_data()];
        for (i, s) in x_stabs.iter().enumerate() {
            for &q in &s.support {
                owners[q].push(i);
            }
        }
        let mut edges = Vec::new();
        for (q, own) in owners.iter().enumerate() {
            match own.as_slice() {
                [a] => edges.push(Edge {
                    a: *a,
                    b: None,
                    qubit: Some(q),
                }),
                [a, b] => edges.push(Edge {
                    a: *a,
                    b: Some(*b),
                    qubit: Some(q),
                }),
                _ => debug_assert!(false, "qubit {q} has unexpected X-stabilizer coverage"),
            }
        }
        DecodingGraph::new(num_nodes, edges)
    }

    /// Space-time X-error graph over `rounds` measurement rounds: node
    /// `(stab, t)` is flattened to `t * num_stabs + stab`. Spatial edges
    /// repeat the code-capacity graph per round; temporal edges (weight-1
    /// measurement errors) connect consecutive rounds of the same
    /// stabilizer and carry no qubit.
    pub fn spacetime_x(code: &SurfaceCode, rounds: usize) -> Self {
        assert!(rounds >= 1);
        let base = Self::code_capacity_x(code);
        let per_round = base.num_nodes;
        let num_nodes = per_round * rounds;
        let mut edges = Vec::new();
        for t in 0..rounds {
            let off = t * per_round;
            for e in base.edges() {
                edges.push(Edge {
                    a: e.a + off,
                    b: e.b.map(|b| b + off),
                    qubit: e.qubit,
                });
            }
        }
        for t in 0..rounds.saturating_sub(1) {
            for s in 0..per_round {
                edges.push(Edge {
                    a: t * per_round + s,
                    b: Some((t + 1) * per_round + s),
                    qubit: None,
                });
            }
        }
        DecodingGraph::new(num_nodes, edges)
    }

    /// The decoding graph of an `n`-bit repetition code: nodes are the
    /// `n-1` parity checks, edges the data bits (ends are boundary edges).
    pub fn repetition(n: usize) -> Self {
        assert!(n >= 2);
        let num_nodes = n - 1;
        let mut edges = Vec::new();
        // Bit 0 touches only check 0; bit n-1 only check n-2.
        edges.push(Edge {
            a: 0,
            b: None,
            qubit: Some(0),
        });
        for bit in 1..n - 1 {
            edges.push(Edge {
                a: bit - 1,
                b: Some(bit),
                qubit: Some(bit),
            });
        }
        edges.push(Edge {
            a: n - 2,
            b: None,
            qubit: Some(n - 1),
        });
        DecodingGraph::new(num_nodes, edges)
    }

    /// BFS from `start`: returns per-node distance and the incoming edge
    /// index on a shortest path, plus the shortest boundary distance and
    /// the node from which the boundary is reached.
    pub fn bfs(&self, start: usize) -> BfsResult {
        let mut dist = vec![u32::MAX; self.num_nodes];
        let mut via = vec![usize::MAX; self.num_nodes];
        let mut boundary_dist = u32::MAX;
        let mut boundary_via: Option<(usize, usize)> = None; // (node, edge)
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &(edge_idx, nb) in &self.adj[u] {
                match nb {
                    Some(v) => {
                        if dist[v] == u32::MAX {
                            dist[v] = dist[u] + 1;
                            via[v] = edge_idx;
                            queue.push_back(v);
                        }
                    }
                    None => {
                        if dist[u] + 1 < boundary_dist {
                            boundary_dist = dist[u] + 1;
                            boundary_via = Some((u, edge_idx));
                        }
                    }
                }
            }
        }
        BfsResult {
            start,
            dist,
            via,
            boundary_dist,
            boundary_via,
        }
    }

    /// Reconstructs the edge list of the shortest path from `bfs.start` to
    /// `target` using the BFS parent pointers.
    pub fn path_edges(&self, bfs: &BfsResult, target: usize) -> Vec<usize> {
        let mut edges = Vec::new();
        let mut cur = target;
        while cur != bfs.start {
            let e = bfs.via[cur];
            debug_assert_ne!(e, usize::MAX, "target unreachable");
            edges.push(e);
            let edge = &self.edges[e];
            cur = if edge.a == cur {
                edge.b.expect("interior path edge")
            } else {
                edge.a
            };
        }
        edges
    }

    /// The edges of the shortest path from `bfs.start` to the boundary.
    pub fn boundary_path_edges(&self, bfs: &BfsResult) -> Vec<usize> {
        let Some((node, edge)) = bfs.boundary_via else {
            return Vec::new();
        };
        let mut edges = self.path_edges(bfs, node);
        edges.push(edge);
        edges
    }

    /// Computes the syndrome (flagged node set) of a qubit-error pattern:
    /// node parity = number of incident error edges mod 2. Only meaningful
    /// for single-round graphs where each qubit maps to one edge.
    pub fn syndrome_of(&self, qubit_errors: &[bool]) -> Vec<usize> {
        let mut parity = vec![false; self.num_nodes];
        for e in &self.edges {
            if let Some(q) = e.qubit {
                if qubit_errors.get(q).copied().unwrap_or(false) {
                    parity[e.a] = !parity[e.a];
                    if let Some(b) = e.b {
                        parity[b] = !parity[b];
                    }
                }
            }
        }
        parity
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.then_some(i))
            .collect()
    }
}

/// The result of a BFS sweep (distances, parents, boundary reach).
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// BFS source node.
    pub start: usize,
    /// Distance to every node (`u32::MAX` when unreachable).
    pub dist: Vec<u32>,
    /// Incoming edge index on a shortest path.
    pub via: Vec<usize>,
    /// Distance to the virtual boundary.
    pub boundary_dist: u32,
    /// `(node, edge)` through which the boundary is reached.
    pub boundary_via: Option<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_capacity_graph_covers_every_qubit() {
        let code = SurfaceCode::new(3);
        let g = DecodingGraph::code_capacity_x(&code);
        assert_eq!(g.num_nodes(), 4); // (d^2-1)/2 Z stabilizers
        assert_eq!(g.edges().len(), 9); // one edge per data qubit
        let boundary_edges = g.edges().iter().filter(|e| e.b.is_none()).count();
        assert!(boundary_edges > 0, "rotated code must have boundary edges");
    }

    #[test]
    fn repetition_graph_shape() {
        let g = DecodingGraph::repetition(5);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.edges().len(), 5);
        assert_eq!(g.edges().iter().filter(|e| e.b.is_none()).count(), 2);
    }

    #[test]
    fn bfs_distances_on_repetition() {
        let g = DecodingGraph::repetition(5);
        let bfs = g.bfs(0);
        assert_eq!(bfs.dist[3], 3);
        assert_eq!(bfs.boundary_dist, 1);
        let path = g.path_edges(&bfs, 3);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn boundary_path_reconstruction() {
        let g = DecodingGraph::repetition(4);
        let bfs = g.bfs(1);
        // Node 1 is one hop from node 0, which has a boundary edge:
        // boundary dist = 2.
        assert_eq!(bfs.boundary_dist, 2);
        let edges = g.boundary_path_edges(&bfs);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn syndrome_of_matches_surface_code() {
        let code = SurfaceCode::new(3);
        let g = DecodingGraph::code_capacity_x(&code);
        let mut errors = vec![false; code.num_data()];
        errors[code.data_at(1, 1)] = true;
        let from_graph = g.syndrome_of(&errors);
        let from_code: Vec<usize> = code
            .z_syndrome(&errors)
            .into_iter()
            .enumerate()
            .filter_map(|(i, b)| b.then_some(i))
            .collect();
        assert_eq!(from_graph, from_code);
    }

    #[test]
    fn spacetime_graph_has_temporal_edges() {
        let code = SurfaceCode::new(3);
        let g = DecodingGraph::spacetime_x(&code, 3);
        assert_eq!(g.num_nodes(), 12); // 4 stabs x 3 rounds
        let temporal = g.edges().iter().filter(|e| e.qubit.is_none()).count();
        assert_eq!(temporal, 8); // 4 stabs x 2 gaps
    }
}
