//! Syndrome decoders.
//!
//! All decoders operate on a [`graph::DecodingGraph`]: nodes are stabilizer
//! measurements (or stabilizer-round pairs in space-time decoding), edges
//! are error mechanisms (a data-qubit flip, or a measurement error between
//! rounds), and a virtual boundary absorbs odd defects.
//!
//! Three implementations, trading accuracy for speed/simplicity:
//!
//! * [`lookup::LookupDecoder`] — exact minimum-weight decoding by
//!   exhaustive table, distance 3 only.
//! * [`greedy::GreedyMatchingDecoder`] — greedy minimum-weight matching on
//!   BFS distances; works on any graph including space-time.
//! * [`unionfind::UnionFindDecoder`] — cluster-growth + peeling in the
//!   style of Delfosse–Nickerson; near-matching accuracy at near-linear
//!   cost.

pub mod graph;
pub mod greedy;
pub mod lookup;
pub mod unionfind;

pub use graph::DecodingGraph;
pub use greedy::GreedyMatchingDecoder;
pub use lookup::LookupDecoder;
pub use unionfind::UnionFindDecoder;

/// The output of a decoder: which data qubits to flip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Correction {
    /// Data-qubit indices whose X (or Z) correction is applied, sorted.
    pub qubit_flips: Vec<usize>,
}

impl Correction {
    /// Builds a correction from possibly-repeated qubit flips, cancelling
    /// pairs (mod-2 semantics).
    pub fn from_flips(mut flips: Vec<usize>) -> Self {
        flips.sort_unstable();
        let mut out = Vec::new();
        let mut i = 0;
        while i < flips.len() {
            let mut run = 1;
            while i + run < flips.len() && flips[i + run] == flips[i] {
                run += 1;
            }
            if run % 2 == 1 {
                out.push(flips[i]);
            }
            i += run;
        }
        Correction { qubit_flips: out }
    }

    /// Applies the correction to an error pattern in place.
    pub fn apply(&self, errors: &mut [bool]) {
        for &q in &self.qubit_flips {
            errors[q] = !errors[q];
        }
    }

    /// Weight of the correction.
    pub fn weight(&self) -> usize {
        self.qubit_flips.len()
    }
}

/// Common decoder interface.
///
/// `flagged` lists the indices of detection events (graph nodes whose
/// syndrome bit is 1). The decoder returns the data-qubit correction.
pub trait Decoder {
    /// Decodes a set of flagged detection events into a correction.
    fn decode(&self, flagged: &[usize]) -> Correction;

    /// Short decoder name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flips_cancels_pairs() {
        let c = Correction::from_flips(vec![3, 1, 3, 2, 1, 1]);
        assert_eq!(c.qubit_flips, vec![1, 2]);
        assert_eq!(c.weight(), 2);
    }

    #[test]
    fn apply_toggles() {
        let c = Correction::from_flips(vec![0, 2]);
        let mut errors = vec![true, false, false];
        c.apply(&mut errors);
        assert_eq!(errors, vec![false, false, true]);
    }
}
