//! Exact minimum-weight lookup decoder for distance 3.
//!
//! Enumerates all `2^9` X-error patterns of the d=3 rotated code and keeps
//! the minimum-weight representative per syndrome: true maximum-likelihood
//! decoding under i.i.d. X noise, used as the accuracy ceiling in the
//! decoder-comparison benches.

use super::{Correction, Decoder};
use crate::surface::SurfaceCode;
use std::collections::HashMap;

/// Table-driven exact decoder (distance 3 only).
#[derive(Debug, Clone)]
pub struct LookupDecoder {
    /// syndrome bitmask (over Z stabilizers) -> minimal error pattern mask.
    table: HashMap<u32, u32>,
    num_data: usize,
}

impl LookupDecoder {
    /// Builds the table for a distance-3 code.
    ///
    /// # Panics
    ///
    /// Panics when `code.distance() != 3`.
    pub fn new(code: &SurfaceCode) -> Self {
        assert_eq!(code.distance(), 3, "lookup decoder supports d=3 only");
        let n = code.num_data();
        let mut table: HashMap<u32, u32> = HashMap::new();
        for pattern in 0u32..(1 << n) {
            let errors: Vec<bool> = (0..n).map(|q| (pattern >> q) & 1 == 1).collect();
            let syndrome = code.z_syndrome(&errors);
            let mut mask = 0u32;
            for (i, &bit) in syndrome.iter().enumerate() {
                if bit {
                    mask |= 1 << i;
                }
            }
            let entry = table.entry(mask).or_insert(pattern);
            if pattern.count_ones() < entry.count_ones() {
                *entry = pattern;
            }
        }
        LookupDecoder { table, num_data: n }
    }

    /// Number of distinct syndromes in the table.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }
}

impl Decoder for LookupDecoder {
    fn decode(&self, flagged: &[usize]) -> Correction {
        let mut mask = 0u32;
        for &f in flagged {
            mask |= 1 << f;
        }
        let pattern = self.table.get(&mask).copied().unwrap_or(0);
        let flips: Vec<usize> = (0..self.num_data)
            .filter(|q| (pattern >> q) & 1 == 1)
            .collect();
        Correction { qubit_flips: flips }
    }

    fn name(&self) -> &'static str {
        "lookup-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::graph::DecodingGraph;

    #[test]
    fn table_covers_every_syndrome() {
        let code = SurfaceCode::new(3);
        let dec = LookupDecoder::new(&code);
        // 4 Z stabilizers -> 16 syndromes, all realizable.
        assert_eq!(dec.table_size(), 16);
    }

    #[test]
    fn corrects_all_single_errors_without_logical_flips() {
        let code = SurfaceCode::new(3);
        let dec = LookupDecoder::new(&code);
        let graph = DecodingGraph::code_capacity_x(&code);
        for q in 0..code.num_data() {
            let mut errors = vec![false; code.num_data()];
            errors[q] = true;
            let flagged = graph.syndrome_of(&errors);
            let c = dec.decode(&flagged);
            c.apply(&mut errors);
            assert!(code.z_syndrome(&errors).iter().all(|&b| !b), "qubit {q}");
            assert!(!code.is_logical_x_flip(&errors), "qubit {q}");
        }
    }

    #[test]
    fn corrections_are_minimum_weight() {
        let code = SurfaceCode::new(3);
        let dec = LookupDecoder::new(&code);
        let graph = DecodingGraph::code_capacity_x(&code);
        // For every single error, the correction weight must be 1 (it can
        // correct with the same single qubit or an equivalent one).
        for q in 0..code.num_data() {
            let mut errors = vec![false; code.num_data()];
            errors[q] = true;
            let flagged = graph.syndrome_of(&errors);
            let c = dec.decode(&flagged);
            assert!(c.weight() <= 1, "qubit {q}: weight {}", c.weight());
        }
    }

    #[test]
    fn always_returns_to_codespace() {
        let code = SurfaceCode::new(3);
        let dec = LookupDecoder::new(&code);
        let graph = DecodingGraph::code_capacity_x(&code);
        for pattern in 0u32..(1 << 9) {
            let mut errors: Vec<bool> = (0..9).map(|q| (pattern >> q) & 1 == 1).collect();
            let flagged = graph.syndrome_of(&errors);
            let c = dec.decode(&flagged);
            c.apply(&mut errors);
            assert!(
                code.z_syndrome(&errors).iter().all(|&b| !b),
                "pattern {pattern:#011b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "d=3 only")]
    fn rejects_distance_five() {
        LookupDecoder::new(&SurfaceCode::new(5));
    }
}
