//! Minimum-weight matching decoder.
//!
//! Computes BFS shortest-path distances between every pair of flagged
//! detection events (and to the boundary). For small defect sets (up to
//! 14) it solves the matching-with-boundary problem *exactly* with a
//! bitmask dynamic program — true MWPM on the derived distance graph.
//! Larger sets fall back to committing the globally shortest available
//! match greedily, the classic cheap approximation.

use super::graph::{BfsResult, DecodingGraph};
use super::{Correction, Decoder};

/// Greedy matcher over a decoding graph.
#[derive(Debug, Clone)]
pub struct GreedyMatchingDecoder {
    graph: DecodingGraph,
}

impl GreedyMatchingDecoder {
    /// Creates a decoder for the given graph.
    pub fn new(graph: DecodingGraph) -> Self {
        GreedyMatchingDecoder { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }
}

/// Defect counts up to which the exact bitmask-DP matching is used.
const EXACT_MATCHING_LIMIT: usize = 14;

impl GreedyMatchingDecoder {
    /// Exact minimum-weight matching over `k <= EXACT_MATCHING_LIMIT`
    /// defects via bitmask DP: each defect pairs with another or exits
    /// through the boundary. Returns `pairing[i] = Some(j)` or `None` for
    /// boundary.
    fn exact_pairing(
        k: usize,
        pair_dist: &[Vec<u32>],
        boundary_dist: &[u32],
    ) -> Vec<Option<usize>> {
        let full = (1usize << k) - 1;
        let inf = u64::MAX / 4;
        let mut cost = vec![inf; full + 1];
        // choice[s]: (i, Some(j)) pair or (i, None) boundary used to leave s.
        let mut choice: Vec<Option<(usize, Option<usize>)>> = vec![None; full + 1];
        cost[0] = 0;
        for s in 1..=full {
            let i = s.trailing_zeros() as usize;
            let without_i = s & !(1 << i);
            // Boundary exit.
            if boundary_dist[i] != u32::MAX {
                let c = cost[without_i].saturating_add(boundary_dist[i] as u64);
                if c < cost[s] {
                    cost[s] = c;
                    choice[s] = Some((i, None));
                }
            }
            // Pair with j.
            let mut rest = without_i;
            while rest != 0 {
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if pair_dist[i][j] != u32::MAX {
                    let c = cost[without_i & !(1 << j)].saturating_add(pair_dist[i][j] as u64);
                    if c < cost[s] {
                        cost[s] = c;
                        choice[s] = Some((i, Some(j)));
                    }
                }
            }
        }
        let mut pairing = vec![None; k];
        let mut s = full;
        while s != 0 {
            let (i, partner) = choice[s].expect("graph has a boundary, so cost is finite");
            match partner {
                Some(j) => {
                    pairing[i] = Some(j);
                    pairing[j] = Some(i);
                    s &= !(1 << i);
                    s &= !(1 << j);
                }
                None => {
                    pairing[i] = None;
                    s &= !(1 << i);
                }
            }
        }
        pairing
    }

    /// Greedy pairing for large defect sets: repeatedly commit the globally
    /// shortest available match.
    fn greedy_pairing(
        k: usize,
        pair_dist: &[Vec<u32>],
        boundary_dist: &[u32],
    ) -> Vec<Option<usize>> {
        let mut candidates: Vec<(u32, usize, usize)> = Vec::new();
        for i in 0..k {
            for (j, &dist) in pair_dist[i].iter().enumerate().skip(i + 1) {
                if dist != u32::MAX {
                    candidates.push((dist, i, j));
                }
            }
            if boundary_dist[i] != u32::MAX {
                candidates.push((boundary_dist[i], i, k));
            }
        }
        candidates.sort_unstable();
        let mut pairing: Vec<Option<usize>> = vec![None; k];
        let mut matched = vec![false; k];
        for (_, i, j) in candidates {
            if matched[i] || (j < k && matched[j]) {
                continue;
            }
            matched[i] = true;
            if j < k {
                matched[j] = true;
                pairing[i] = Some(j);
                pairing[j] = Some(i);
            } else {
                pairing[i] = None;
            }
        }
        pairing
    }
}

impl Decoder for GreedyMatchingDecoder {
    fn decode(&self, flagged: &[usize]) -> Correction {
        let k = flagged.len();
        if k == 0 {
            return Correction::default();
        }
        // BFS from every flagged node once.
        let sweeps: Vec<BfsResult> = flagged.iter().map(|&f| self.graph.bfs(f)).collect();
        let pair_dist: Vec<Vec<u32>> = (0..k)
            .map(|i| flagged.iter().map(|&f| sweeps[i].dist[f]).collect())
            .collect();
        let boundary_dist: Vec<u32> = sweeps.iter().map(|s| s.boundary_dist).collect();

        let pairing = if k <= EXACT_MATCHING_LIMIT {
            Self::exact_pairing(k, &pair_dist, &boundary_dist)
        } else {
            Self::greedy_pairing(k, &pair_dist, &boundary_dist)
        };

        let mut flips: Vec<usize> = Vec::new();
        let mut done = vec![false; k];
        for i in 0..k {
            if done[i] {
                continue;
            }
            done[i] = true;
            let edge_path = match pairing[i] {
                Some(j) => {
                    done[j] = true;
                    self.graph.path_edges(&sweeps[i], flagged[j])
                }
                None => self.graph.boundary_path_edges(&sweeps[i]),
            };
            for e in edge_path {
                if let Some(q) = self.graph.edges()[e].qubit {
                    flips.push(q);
                }
            }
        }
        Correction::from_flips(flips)
    }

    fn name(&self) -> &'static str {
        "greedy-matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::SurfaceCode;

    fn decode_surface(code: &SurfaceCode, errors: &[bool]) -> Correction {
        let graph = DecodingGraph::code_capacity_x(code);
        let flagged = graph.syndrome_of(errors);
        GreedyMatchingDecoder::new(graph).decode(&flagged)
    }

    #[test]
    fn empty_syndrome_means_empty_correction() {
        let code = SurfaceCode::new(3);
        let g = DecodingGraph::code_capacity_x(&code);
        let c = GreedyMatchingDecoder::new(g).decode(&[]);
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn corrects_every_single_qubit_error_d3() {
        let code = SurfaceCode::new(3);
        for q in 0..code.num_data() {
            let mut errors = vec![false; code.num_data()];
            errors[q] = true;
            let correction = decode_surface(&code, &errors);
            correction.apply(&mut errors);
            let syndrome = code.z_syndrome(&errors);
            assert!(syndrome.iter().all(|&b| !b), "qubit {q}: residual syndrome");
            assert!(
                !code.is_logical_x_flip(&errors),
                "qubit {q}: logical flip after correction"
            );
        }
    }

    #[test]
    fn corrects_every_single_qubit_error_d5() {
        let code = SurfaceCode::new(5);
        for q in 0..code.num_data() {
            let mut errors = vec![false; code.num_data()];
            errors[q] = true;
            let correction = decode_surface(&code, &errors);
            correction.apply(&mut errors);
            assert!(code.z_syndrome(&errors).iter().all(|&b| !b), "qubit {q}");
            assert!(!code.is_logical_x_flip(&errors), "qubit {q}");
        }
    }

    #[test]
    fn corrects_all_weight_two_errors_d5() {
        // d=5 corrects any floor((5-1)/2) = 2 errors.
        let code = SurfaceCode::new(5);
        let n = code.num_data();
        for q1 in 0..n {
            for q2 in q1 + 1..n {
                let mut errors = vec![false; n];
                errors[q1] = true;
                errors[q2] = true;
                let correction = decode_surface(&code, &errors);
                correction.apply(&mut errors);
                assert!(
                    code.z_syndrome(&errors).iter().all(|&b| !b),
                    "({q1},{q2}): residual syndrome"
                );
                assert!(
                    !code.is_logical_x_flip(&errors),
                    "({q1},{q2}): logical flip"
                );
            }
        }
    }

    #[test]
    fn correction_always_clears_syndrome() {
        // Even above the correctable weight, the correction must return to
        // the codespace (possibly with a logical flip).
        let code = SurfaceCode::new(3);
        let n = code.num_data();
        for pattern in 0u32..(1 << n) {
            let errors: Vec<bool> = (0..n).map(|q| (pattern >> q) & 1 == 1).collect();
            let mut errors = errors;
            let correction = decode_surface(&code, &errors.clone());
            correction.apply(&mut errors);
            assert!(
                code.z_syndrome(&errors).iter().all(|&b| !b),
                "pattern {pattern:#011b} left a residual syndrome"
            );
        }
    }

    #[test]
    fn repetition_code_majority_behaviour() {
        let g = DecodingGraph::repetition(5);
        let decoder = GreedyMatchingDecoder::new(g.clone());
        // Flip bits 1 and 2: checks 0 (bits 0,1), 2 (bits 2,3) flag.
        let errors = vec![false, true, true, false, false];
        let flagged = g.syndrome_of(&errors);
        let c = decoder.decode(&flagged);
        let mut errs = errors;
        c.apply(&mut errs);
        assert!(g.syndrome_of(&errs).is_empty());
        // Either fully corrected or flipped to all-ones; weight-2 on n=5
        // must be corrected to the nearer codeword (all zeros).
        assert!(errs.iter().all(|&e| !e), "residual: {errs:?}");
    }
}
