//! Union-find (cluster-growth + peeling) decoder.
//!
//! A unit-weight variant of the Delfosse–Nickerson union-find decoder:
//! odd clusters grow by claiming all incident edges, merging on contact,
//! until every cluster has even defect parity or touches the boundary;
//! a peeling pass over each cluster's spanning forest then reads off the
//! correction. Near-matching accuracy at near-linear cost, and the decoder
//! the paper's agent synthesizes by default.

use super::graph::DecodingGraph;
use super::{Correction, Decoder};
use std::collections::VecDeque;

/// Union-find decoder over a decoding graph.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
}

struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
    /// Defect parity of the cluster rooted here.
    parity: Vec<bool>,
    /// Whether the cluster touches the virtual boundary.
    boundary: Vec<bool>,
}

impl Dsu {
    fn new(n: usize, defects: &[bool]) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
            parity: defects.to_vec(),
            boundary: vec![false; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        let p = self.parity[ra] ^ self.parity[rb];
        self.parity[ra] = p;
        self.boundary[ra] = self.boundary[ra] || self.boundary[rb];
    }
}

impl UnionFindDecoder {
    /// Creates a decoder for the given graph.
    pub fn new(graph: DecodingGraph) -> Self {
        UnionFindDecoder { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, flagged: &[usize]) -> Correction {
        let n = self.graph.num_nodes();
        if flagged.is_empty() {
            return Correction::default();
        }
        let mut defects = vec![false; n];
        for &f in flagged {
            defects[f] = true;
        }
        let mut dsu = Dsu::new(n, &defects);
        let num_edges = self.graph.edges().len();
        let mut grown = vec![false; num_edges];

        // --- Growth phase ---------------------------------------------------
        loop {
            // Find nodes belonging to odd, non-boundary clusters.
            let mut any_odd = false;
            let mut to_grow: Vec<usize> = Vec::new();
            for v in 0..n {
                let r = dsu.find(v);
                if dsu.parity[r] && !dsu.boundary[r] {
                    any_odd = true;
                    to_grow.push(v);
                }
            }
            if !any_odd {
                break;
            }
            let mut progressed = false;
            for v in to_grow {
                let r = dsu.find(v);
                if !dsu.parity[r] || dsu.boundary[r] {
                    continue; // cluster neutralized earlier this sweep
                }
                for &(edge_idx, nb) in self.graph.neighbors(v) {
                    if grown[edge_idx] {
                        continue;
                    }
                    grown[edge_idx] = true;
                    progressed = true;
                    match nb {
                        Some(u) => dsu.union(v, u),
                        None => {
                            let rv = dsu.find(v);
                            dsu.boundary[rv] = true;
                        }
                    }
                }
            }
            if !progressed {
                // No edges left to claim: graph exhausted (should not happen
                // on connected graphs with a boundary). Bail out rather than
                // spin forever.
                break;
            }
        }

        // --- Peeling phase ---------------------------------------------------
        // Group nodes by cluster root.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            let r = dsu.find(v);
            members[r].push(v);
        }
        let mut flips: Vec<usize> = Vec::new();
        let mut residual = defects;
        for cluster in &members {
            if cluster.is_empty() || !cluster.iter().any(|&v| residual[v]) {
                continue; // empty, or no defects in this cluster
            }
            // Choose a tree root: a node with a grown boundary edge when the
            // cluster touches the boundary, else any member.
            let mut tree_root = cluster[0];
            let mut root_boundary_edge: Option<usize> = None;
            'outer: for &v in cluster {
                for &(edge_idx, nb) in self.graph.neighbors(v) {
                    if nb.is_none() && grown[edge_idx] {
                        tree_root = v;
                        root_boundary_edge = Some(edge_idx);
                        break 'outer;
                    }
                }
            }
            // BFS spanning tree over grown interior edges.
            let mut parent_edge: Vec<Option<usize>> = vec![None; n];
            let mut order = Vec::new();
            let mut seen = vec![false; n];
            seen[tree_root] = true;
            let mut queue = VecDeque::from([tree_root]);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &(edge_idx, nb) in self.graph.neighbors(u) {
                    if !grown[edge_idx] {
                        continue;
                    }
                    if let Some(v) = nb {
                        if !seen[v] {
                            seen[v] = true;
                            parent_edge[v] = Some(edge_idx);
                            queue.push_back(v);
                        }
                    }
                }
            }
            // Peel leaves toward the root.
            for &v in order.iter().rev() {
                if v == tree_root || !residual[v] {
                    continue;
                }
                let Some(e) = parent_edge[v] else {
                    continue; // disconnected defect: cannot happen post-growth
                };
                if let Some(q) = self.graph.edges()[e].qubit {
                    flips.push(q);
                }
                residual[v] = false;
                let edge = &self.graph.edges()[e];
                let parent = if edge.a == v {
                    edge.b.expect("interior edge")
                } else {
                    edge.a
                };
                residual[parent] = !residual[parent];
            }
            // A defect left on the tree root exits through the boundary.
            if residual[tree_root] {
                if let Some(e) = root_boundary_edge {
                    if let Some(q) = self.graph.edges()[e].qubit {
                        flips.push(q);
                    }
                    residual[tree_root] = false;
                }
            }
        }
        debug_assert!(
            residual.iter().all(|&d| !d),
            "peeling must clear every defect"
        );
        Correction::from_flips(flips)
    }

    fn name(&self) -> &'static str {
        "union-find"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::SurfaceCode;

    fn decode_surface(code: &SurfaceCode, errors: &[bool]) -> Correction {
        let graph = DecodingGraph::code_capacity_x(code);
        let flagged = graph.syndrome_of(errors);
        UnionFindDecoder::new(graph).decode(&flagged)
    }

    #[test]
    fn empty_syndrome() {
        let code = SurfaceCode::new(3);
        let g = DecodingGraph::code_capacity_x(&code);
        assert_eq!(UnionFindDecoder::new(g).decode(&[]).weight(), 0);
    }

    #[test]
    fn corrects_all_single_errors_d3_and_d5() {
        for d in [3usize, 5] {
            let code = SurfaceCode::new(d);
            for q in 0..code.num_data() {
                let mut errors = vec![false; code.num_data()];
                errors[q] = true;
                let c = decode_surface(&code, &errors);
                c.apply(&mut errors);
                assert!(
                    code.z_syndrome(&errors).iter().all(|&b| !b),
                    "d={d} qubit {q}: residual syndrome"
                );
                assert!(
                    !code.is_logical_x_flip(&errors),
                    "d={d} qubit {q}: logical flip"
                );
            }
        }
    }

    #[test]
    fn corrects_weight_two_errors_d5() {
        let code = SurfaceCode::new(5);
        let n = code.num_data();
        let mut failures = 0usize;
        let mut total = 0usize;
        for q1 in 0..n {
            for q2 in q1 + 1..n {
                let mut errors = vec![false; n];
                errors[q1] = true;
                errors[q2] = true;
                let c = decode_surface(&code, &errors);
                c.apply(&mut errors);
                assert!(
                    code.z_syndrome(&errors).iter().all(|&b| !b),
                    "({q1},{q2}): residual syndrome"
                );
                total += 1;
                if code.is_logical_x_flip(&errors) {
                    failures += 1;
                }
            }
        }
        // Unit-growth UF is not exactly MWPM; allow a small failure budget
        // on weight-2 patterns but require near-complete coverage.
        assert!(
            failures * 20 <= total,
            "UF failed {failures}/{total} weight-2 patterns"
        );
    }

    #[test]
    fn always_returns_to_codespace_d3() {
        let code = SurfaceCode::new(3);
        let graph = DecodingGraph::code_capacity_x(&code);
        let dec = UnionFindDecoder::new(graph.clone());
        for pattern in 0u32..(1 << 9) {
            let mut errors: Vec<bool> = (0..9).map(|q| (pattern >> q) & 1 == 1).collect();
            let flagged = graph.syndrome_of(&errors);
            let c = dec.decode(&flagged);
            c.apply(&mut errors);
            assert!(
                code.z_syndrome(&errors).iter().all(|&b| !b),
                "pattern {pattern:#011b}"
            );
        }
    }

    #[test]
    fn works_on_spacetime_graph() {
        let code = SurfaceCode::new(3);
        let graph = DecodingGraph::spacetime_x(&code, 3);
        let dec = UnionFindDecoder::new(graph);
        // A temporal pair (same stabilizer, consecutive rounds) models a
        // single measurement error; the correction should be empty or
        // data-free since the matching path is the time-like edge.
        let c = dec.decode(&[1, 5]); // stab 1 at rounds 0 and 1
        assert_eq!(c.weight(), 0, "measurement error needs no data correction");
    }

    #[test]
    fn repetition_decoding() {
        let g = DecodingGraph::repetition(7);
        let dec = UnionFindDecoder::new(g.clone());
        let mut errors = vec![false; 7];
        errors[2] = true;
        errors[3] = true;
        let flagged = g.syndrome_of(&errors);
        let c = dec.decode(&flagged);
        c.apply(&mut errors);
        assert!(g.syndrome_of(&errors).is_empty());
        assert!(errors.iter().all(|&e| !e), "residual {errors:?}");
    }
}
