//! The interface the QEC Decoder Generation Agent consumes: synthesize a
//! [`DecoderSpec`] from a device [`Topology`], mirroring the paper's
//! "uses the topology of the quantum device to generate a decoder" (§III-A)
//! and its topology-specificity caveat (§IV-B).

use crate::memory::{self, DecoderKind};
use crate::topology::Topology;
use std::fmt;

/// Why decoder synthesis failed for a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// Device graph is disconnected.
    Disconnected,
    /// Device cannot host even the smallest surface code; the spec falls
    /// back to a repetition code when possible, otherwise this error.
    TooSmall { qubits: usize, needed: usize },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Disconnected => write!(f, "device coupling graph is disconnected"),
            SynthesisError::TooSmall { qubits, needed } => {
                write!(
                    f,
                    "device has {qubits} qubits but the smallest code needs {needed}"
                )
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Which code family the synthesized decoder protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeFamily {
    /// Rotated surface code at the given distance.
    Surface { distance: usize },
    /// Bit-flip repetition code at the given distance (fallback for
    /// devices without a grid region, e.g. heavy-hex).
    Repetition { distance: usize },
}

/// A synthesized decoder specification: what the QEC agent hands back to
/// the orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderSpec {
    /// Device the spec was synthesized for.
    pub device: String,
    /// Chosen code family and distance.
    pub family: CodeFamily,
    /// Decoder implementation.
    pub decoder: DecoderKind,
    /// Whether the device hosts the code natively or via SWAP-embedding
    /// (the paper's topology-specificity caveat: heavy-hex devices need
    /// embedding, captured here as `false`).
    pub native_layout: bool,
    /// Estimated lifetime-extension factor at the calibration rate.
    pub estimated_lifetime_extension: f64,
    /// Physical rate the estimate was computed at.
    pub calibration_rate: f64,
}

impl DecoderSpec {
    /// The effective noise-scaling factor to apply when re-simulating with
    /// corrections, mirroring the paper's Figure 4(c) methodology
    /// ("simulated our results using a lower error probability ...
    /// corresponding to the new error rate after QEC").
    pub fn noise_reduction_factor(&self) -> f64 {
        (1.0 / self.estimated_lifetime_extension).min(1.0)
    }
}

impl fmt::Display for DecoderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let family = match self.family {
            CodeFamily::Surface { distance } => format!("surface(d={distance})"),
            CodeFamily::Repetition { distance } => format!("repetition(d={distance})"),
        };
        write!(
            f,
            "{family} + {} on {} ({}; ~{:.1}x lifetime at p={})",
            self.decoder.name(),
            self.device,
            if self.native_layout {
                "native"
            } else {
                "swap-embedded"
            },
            self.estimated_lifetime_extension,
            self.calibration_rate
        )
    }
}

/// Synthesizes a decoder spec for `device` at physical rate `p`.
///
/// Picks the largest surface-code distance (up to `max_distance`, odd)
/// that fits the device, falling back to a repetition code for devices
/// without a degree-4 grid region (heavy-hex). The lifetime-extension
/// estimate is measured by a short Monte-Carlo memory experiment, not
/// guessed.
///
/// # Errors
///
/// Returns [`SynthesisError`] for disconnected or hopeless devices.
pub fn synthesize(
    device: &Topology,
    p: f64,
    max_distance: usize,
    seed: u64,
) -> Result<DecoderSpec, SynthesisError> {
    if !device.is_connected() {
        return Err(SynthesisError::Disconnected);
    }
    // Largest odd d with 2d^2-1 qubits available and native layout support.
    let mut chosen: Option<(usize, bool)> = None;
    let mut d = max_distance.max(3);
    if d.is_multiple_of(2) {
        d -= 1;
    }
    while d >= 3 {
        if device.supports_surface_code(d) {
            chosen = Some((d, true));
            break;
        }
        d -= 2;
    }
    if chosen.is_none() {
        // SWAP-embedded d=3 surface code still needs the raw qubit count.
        if device.num_qubits() >= 17 {
            chosen = Some((3, false));
        }
    }
    if let Some((d, native)) = chosen {
        let kind = if d == 3 {
            DecoderKind::Lookup
        } else {
            DecoderKind::UnionFind
        };
        let result = memory::code_capacity_experiment(d, p, kind, 3000, seed);
        return Ok(DecoderSpec {
            device: device.name().to_string(),
            family: CodeFamily::Surface { distance: d },
            decoder: kind,
            native_layout: native,
            estimated_lifetime_extension: result.lifetime_extension(),
            calibration_rate: p,
        });
    }
    // Repetition fallback: needs 2d-1 qubits (data + ancilla).
    let d_rep = device.num_qubits().div_ceil(2).min(7);
    let d_rep = if d_rep.is_multiple_of(2) {
        d_rep - 1
    } else {
        d_rep
    };
    if d_rep >= 3 {
        let code = crate::repetition::RepetitionCode::new(d_rep);
        let p_logical = code.analytic_error_rate(p);
        let extension = if p_logical > 0.0 {
            p / p_logical
        } else {
            f64::INFINITY
        };
        return Ok(DecoderSpec {
            device: device.name().to_string(),
            family: CodeFamily::Repetition { distance: d_rep },
            decoder: DecoderKind::Greedy,
            native_layout: true,
            estimated_lifetime_extension: extension,
            calibration_rate: p,
        });
    }
    Err(SynthesisError::TooSmall {
        qubits: device.num_qubits(),
        needed: 5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_device_gets_native_surface_code() {
        let device = Topology::grid(7, 7);
        let spec = synthesize(&device, 0.02, 5, 1).expect("synthesis");
        match spec.family {
            CodeFamily::Surface { distance } => assert!(distance >= 3),
            other => panic!("expected surface code, got {other:?}"),
        }
        assert!(spec.native_layout);
        assert!(spec.estimated_lifetime_extension > 1.0, "{spec}");
    }

    #[test]
    fn heavy_hex_is_swap_embedded() {
        let device = Topology::ibm_brisbane_like();
        let spec = synthesize(&device, 0.02, 3, 2).expect("synthesis");
        assert!(
            !spec.native_layout,
            "heavy-hex must be flagged as embedded: {spec}"
        );
    }

    #[test]
    fn tiny_device_falls_back_to_repetition() {
        let device = Topology::line(7);
        let spec = synthesize(&device, 0.02, 3, 3).expect("synthesis");
        match spec.family {
            CodeFamily::Repetition { distance } => assert!(distance >= 3),
            other => panic!("expected repetition fallback, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_device_errors() {
        let device = Topology::new("split", 6, &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(
            synthesize(&device, 0.02, 3, 4),
            Err(SynthesisError::Disconnected)
        );
    }

    #[test]
    fn hopeless_device_errors() {
        let device = Topology::line(2);
        assert!(matches!(
            synthesize(&device, 0.02, 3, 5),
            Err(SynthesisError::TooSmall { .. })
        ));
    }

    #[test]
    fn noise_reduction_factor_inverts_extension() {
        let device = Topology::grid(5, 5);
        let spec = synthesize(&device, 0.03, 3, 6).expect("synthesis");
        let f = spec.noise_reduction_factor();
        assert!(f <= 1.0 && f > 0.0, "factor {f}");
    }
}
