//! Noisy multi-round syndrome extraction (phenomenological model).
//!
//! Reproduces the physics of the paper's Figure 2: data qubits accumulate
//! depolarizing-style X errors over time ("physical errors over time"),
//! each round's stabilizer readout is itself flipped with some probability
//! ("measurement error"), and the decoder receives the resulting *detection
//! events* (syndrome differences between consecutive rounds).

use crate::surface::SurfaceCode;
use rand::Rng;

/// One round of syndrome extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Data qubits that acquired a fresh X error during this round.
    pub injected: Vec<usize>,
    /// The true Z-stabilizer syndrome of the *cumulative* error.
    pub true_syndrome: Vec<bool>,
    /// Stabilizer indices whose readout was flipped by measurement noise.
    pub measurement_flips: Vec<usize>,
    /// The syndrome as reported (true syndrome with flips applied).
    pub measured_syndrome: Vec<bool>,
}

/// A full noisy extraction history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeHistory {
    /// Per-round records; the last round is measured perfectly (standard
    /// convention: the final readout comes from transversal data-qubit
    /// measurement).
    pub rounds: Vec<RoundRecord>,
    /// The cumulative X-error pattern at the end.
    pub final_errors: Vec<bool>,
}

impl SyndromeHistory {
    /// Detection events for space-time decoding: node `(stab, t)` flagged
    /// when the measured syndrome of stabilizer `stab` differs between
    /// rounds `t-1` and `t` (round `-1` is the trivial all-zero syndrome).
    /// Node indices use the same flattening as
    /// [`crate::decoder::DecodingGraph::spacetime_x`].
    pub fn detection_events(&self) -> Vec<usize> {
        let mut events = Vec::new();
        let mut prev: Option<&[bool]> = None;
        for (t, round) in self.rounds.iter().enumerate() {
            let cur = &round.measured_syndrome;
            for (s, &bit) in cur.iter().enumerate() {
                let before = prev.map(|p| p[s]).unwrap_or(false);
                if bit != before {
                    events.push(t * cur.len() + s);
                }
            }
            prev = Some(cur);
        }
        events
    }

    /// Total number of injected data errors.
    pub fn num_data_errors(&self) -> usize {
        self.rounds.iter().map(|r| r.injected.len()).sum()
    }

    /// Total number of measurement flips.
    pub fn num_measurement_errors(&self) -> usize {
        self.rounds.iter().map(|r| r.measurement_flips.len()).sum()
    }
}

/// Extracts `rounds` noisy syndrome rounds (plus a final perfect round)
/// from a surface code under phenomenological noise:
/// per round, each data qubit gains an X error with probability `p_data`
/// and each stabilizer readout flips with probability `p_meas`.
pub fn extract(
    code: &SurfaceCode,
    p_data: f64,
    p_meas: f64,
    rounds: usize,
    rng: &mut impl Rng,
) -> SyndromeHistory {
    assert!(rounds >= 1);
    let mut cumulative = vec![false; code.num_data()];
    let mut records = Vec::with_capacity(rounds + 1);
    for _ in 0..rounds {
        let mut injected = Vec::new();
        for (q, slot) in cumulative.iter_mut().enumerate() {
            if rng.gen_bool(p_data) {
                *slot = !*slot;
                injected.push(q);
            }
        }
        let true_syndrome = code.z_syndrome(&cumulative);
        let mut measured = true_syndrome.clone();
        let mut flips = Vec::new();
        for (s, bit) in measured.iter_mut().enumerate() {
            if rng.gen_bool(p_meas) {
                *bit = !*bit;
                flips.push(s);
            }
        }
        records.push(RoundRecord {
            injected,
            true_syndrome,
            measurement_flips: flips,
            measured_syndrome: measured,
        });
    }
    // Final perfect round.
    let true_syndrome = code.z_syndrome(&cumulative);
    records.push(RoundRecord {
        injected: Vec::new(),
        true_syndrome: true_syndrome.clone(),
        measurement_flips: Vec::new(),
        measured_syndrome: true_syndrome,
    });
    SyndromeHistory {
        rounds: records,
        final_errors: cumulative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_history_is_silent() {
        let code = SurfaceCode::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let h = extract(&code, 0.0, 0.0, 5, &mut rng);
        assert_eq!(h.rounds.len(), 6);
        assert_eq!(h.num_data_errors(), 0);
        assert!(h.detection_events().is_empty());
        assert!(h.final_errors.iter().all(|&e| !e));
    }

    #[test]
    fn single_measurement_error_makes_two_events() {
        // With p_data = 0 and exactly one measurement flip, the detection
        // events are (stab, t) and (stab, t+1).
        let code = SurfaceCode::new(3);
        let mut found = false;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = extract(&code, 0.0, 0.05, 4, &mut rng);
            if h.num_measurement_errors() == 1 {
                found = true;
                let events = h.detection_events();
                assert_eq!(events.len(), 2, "seed {seed}: events {events:?}");
                let stabs = code.z_stabilizers().len();
                assert_eq!(events[0] % stabs, events[1] % stabs);
                assert_eq!(events[1] / stabs, events[0] / stabs + 1);
            }
        }
        assert!(found, "no seed produced exactly one measurement error");
    }

    #[test]
    fn data_error_events_persist_until_final_round() {
        // A single data error in round t creates one detection event at
        // round t (and none later since the syndrome persists).
        let code = SurfaceCode::new(3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hit = false;
        for _ in 0..300 {
            let h = extract(&code, 0.02, 0.0, 3, &mut rng);
            if h.num_data_errors() == 1 {
                hit = true;
                let events = h.detection_events();
                // A single bulk error flags 2 stabilizers -> 2 events;
                // a boundary-adjacent error flags 1 -> 1 event.
                assert!(events.len() == 1 || events.len() == 2, "events {events:?}");
            }
        }
        assert!(hit, "no single-error trial found");
    }

    #[test]
    fn error_rates_scale_with_probability() {
        let code = SurfaceCode::new(5);
        let mut rng = StdRng::seed_from_u64(3);
        let h_low = extract(&code, 0.01, 0.01, 20, &mut rng);
        let h_high = extract(&code, 0.2, 0.2, 20, &mut rng);
        assert!(h_high.num_data_errors() > h_low.num_data_errors());
        assert!(h_high.num_measurement_errors() > h_low.num_measurement_errors());
    }

    #[test]
    fn final_round_is_noiseless() {
        let code = SurfaceCode::new(3);
        let mut rng = StdRng::seed_from_u64(11);
        let h = extract(&code, 0.1, 0.3, 5, &mut rng);
        let last = h.rounds.last().unwrap();
        assert!(last.measurement_flips.is_empty());
        assert_eq!(last.measured_syndrome, last.true_syndrome);
        assert_eq!(last.true_syndrome, code.z_syndrome(&h.final_errors));
    }
}
