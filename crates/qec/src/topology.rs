//! Device coupling maps.
//!
//! The paper's QEC agent is *topology-specific*: it synthesizes a decoder
//! from the device's qubit connectivity and must be regenerated per device
//! (their §IV-B drawback discussion). This module provides the coupling
//! maps the agent consumes, including a heavy-hex graph shaped like IBM's
//! Eagle devices (Brisbane).

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An undirected device coupling map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Topology {
    /// Creates a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics when an edge references a qubit `>= num_qubits` or is a
    /// self-loop.
    pub fn new(name: impl Into<String>, num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(a != b, "self-loop in coupling map");
            assert!(a < num_qubits && b < num_qubits, "edge out of range");
            set.insert((a.min(b), a.max(b)));
        }
        Topology {
            name: name.into(),
            num_qubits,
            edges: set,
        }
    }

    /// A linear chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::new(format!("line-{n}"), n, &edges)
    }

    /// A full `rows x cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Topology::new(format!("grid-{rows}x{cols}"), rows * cols, &edges)
    }

    /// A fully connected device.
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Topology::new(format!("full-{n}"), n, &edges)
    }

    /// A heavy-hex lattice with `rows` rows of `cols` hexagon cells,
    /// shaped like IBM Eagle devices (Brisbane is 127 qubits of this
    /// family). Degree is capped at 3 everywhere, which is exactly what
    /// frustrates naive surface-code embeddings and motivates the paper's
    /// "fully-connected lattice" requirement.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        // Construction: horizontal qubit rows of length 2*cols+1, vertical
        // bridge qubits connecting alternating columns between adjacent rows.
        let row_len = 2 * cols + 1;
        let num_rows = rows + 1;
        let mut edges = Vec::new();
        let row_base = |r: usize| r * (row_len + cols + 1);
        // Horizontal edges within each row.
        for r in 0..num_rows {
            for c in 0..row_len - 1 {
                edges.push((row_base(r) + c, row_base(r) + c + 1));
            }
        }
        // Bridges: row r has cols+1 bridge qubits after its row_len qubits.
        let mut total = 0;
        for r in 0..num_rows {
            total = row_base(r) + row_len;
            if r == num_rows - 1 {
                break;
            }
            for b in 0..=cols {
                let bridge = row_base(r) + row_len + b;
                // Alternate attachment columns per row parity.
                let col = if r % 2 == 0 {
                    2 * b
                } else {
                    (2 * b + 1).min(row_len - 1)
                };
                edges.push((row_base(r) + col, bridge));
                edges.push((bridge, row_base(r + 1) + col));
                total = bridge + 1;
            }
        }
        Topology::new(format!("heavy-hex-{rows}x{cols}"), total, &edges)
    }

    /// An IBM-Brisbane-like heavy-hex device (127-qubit scale).
    pub fn ibm_brisbane_like() -> Self {
        let mut t = Topology::heavy_hex(6, 6);
        t.name = "ibm-brisbane-like".to_string();
        t
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of coupling edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` when qubits `a` and `b` are coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Iterates over the coupling edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Neighbours of `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.neighbors(q).len()
    }

    /// Maximum degree across the device.
    pub fn max_degree(&self) -> usize {
        (0..self.num_qubits)
            .map(|q| self.degree(q))
            .max()
            .unwrap_or(0)
    }

    /// `true` when the coupling graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_qubits];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = queue.pop_front() {
            for nb in self.neighbors(q) {
                if !seen[nb] {
                    seen[nb] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        count == self.num_qubits
    }

    /// BFS shortest path length between two qubits, or `None` when
    /// disconnected.
    pub fn distance(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.num_qubits];
        dist[from] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(q) = queue.pop_front() {
            for nb in self.neighbors(q) {
                if dist[nb] == usize::MAX {
                    dist[nb] = dist[q] + 1;
                    if nb == to {
                        return Some(dist[nb]);
                    }
                    queue.push_back(nb);
                }
            }
        }
        None
    }

    /// `true` when the device can host a distance-`d` rotated surface code
    /// directly (needs a `(2d-1) x (2d-1)` grid minor; we use the practical
    /// proxy: enough qubits and degree-4 connectivity somewhere).
    ///
    /// Heavy-hex devices return `false` — the paper's observation that
    /// their decoder generation "requires the devices to follow a
    /// fully-connected lattice design".
    pub fn supports_surface_code(&self, d: usize) -> bool {
        let needed = 2 * d * d - 1; // data + ancilla qubits
        self.num_qubits >= needed && self.max_degree() >= 4
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges, max degree {})",
            self.name,
            self.num_qubits,
            self.edges.len(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(5);
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.num_edges(), 4);
        assert!(t.has_edge(0, 1));
        assert!(!t.has_edge(0, 2));
        assert!(t.is_connected());
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.num_qubits(), 9);
        assert_eq!(t.num_edges(), 12);
        assert_eq!(t.degree(4), 4); // centre
        assert_eq!(t.degree(0), 2); // corner
        assert!(t.is_connected());
    }

    #[test]
    fn full_graph() {
        let t = Topology::full(4);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.max_degree(), 3);
    }

    #[test]
    fn heavy_hex_degree_capped_at_three() {
        let t = Topology::heavy_hex(3, 3);
        assert!(t.is_connected(), "heavy-hex must be connected");
        assert!(t.max_degree() <= 3, "heavy-hex degree is at most 3");
        assert!(t.num_qubits() > 20);
    }

    #[test]
    fn brisbane_like_scale() {
        let t = Topology::ibm_brisbane_like();
        assert!(t.num_qubits() >= 100, "qubits: {}", t.num_qubits());
        assert!(t.is_connected());
        assert!(t.max_degree() <= 3);
    }

    #[test]
    fn distance_on_line() {
        let t = Topology::line(6);
        assert_eq!(t.distance(0, 5), Some(5));
        assert_eq!(t.distance(2, 2), Some(0));
    }

    #[test]
    fn disconnected_distance_is_none() {
        let t = Topology::new("pair", 4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.distance(0, 3), None);
    }

    #[test]
    fn surface_code_support() {
        assert!(Topology::grid(5, 5).supports_surface_code(3));
        // Heavy-hex lacks degree-4 vertices.
        assert!(!Topology::ibm_brisbane_like().supports_surface_code(3));
        // Too few qubits.
        assert!(!Topology::grid(2, 2).supports_surface_code(3));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Topology::new("bad", 2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        Topology::new("bad", 2, &[(0, 5)]);
    }
}
