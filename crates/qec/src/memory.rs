//! Logical memory experiments: logical error rate vs physical rate and
//! distance, and the qubit-lifetime-extension factor the QEC agent reports.
//!
//! Three noise regimes, in increasing fidelity to hardware:
//! [`code_capacity_experiment`] (i.i.d. data errors, perfect syndrome),
//! [`phenomenological_experiment`] (noisy syndrome rounds, classical
//! sampling), and [`circuit_level_experiment`] — which lowers the code to
//! an executable Clifford circuit ([`SurfaceCode::memory_circuit`]) and
//! runs it through `qsim`'s [`qsim::exec::Executor`] on the
//! stabilizer-tableau backend,
//! so gate-level depolarizing noise propagates through the actual
//! extraction circuit. That path is polynomial in the distance, and
//! outcome words are multi-word, which together make distance-5 (49-qubit)
//! and distance-7 (97-qubit, 97-classical-bit) memory experiments
//! routine where dense simulation — or a one-word classical register — is
//! impossible.

use crate::decoder::{
    Correction, Decoder, DecodingGraph, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use crate::surface::SurfaceCode;
use crate::syndrome;
use qsim::backend::{BackendChoice, SimError};
use qsim::exec::ExecutorConfig;
use qsim::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which decoder implementation to use in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderKind {
    /// Exact lookup (d = 3 only).
    Lookup,
    /// Greedy minimum-weight matching.
    Greedy,
    /// Union-find cluster decoder.
    UnionFind,
}

impl DecoderKind {
    /// All kinds, for sweeps.
    pub const ALL: [DecoderKind; 3] = [
        DecoderKind::Lookup,
        DecoderKind::Greedy,
        DecoderKind::UnionFind,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DecoderKind::Lookup => "lookup-exact",
            DecoderKind::Greedy => "greedy-matching",
            DecoderKind::UnionFind => "union-find",
        }
    }

    /// Instantiates the decoder for `code` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics when `Lookup` is requested for `d != 3`.
    pub fn build(&self, code: &SurfaceCode, graph: DecodingGraph) -> Box<dyn Decoder> {
        match self {
            DecoderKind::Lookup => Box::new(LookupDecoder::new(code)),
            DecoderKind::Greedy => Box::new(GreedyMatchingDecoder::new(graph)),
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
        }
    }
}

/// Result of a logical-memory experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryResult {
    /// Code distance.
    pub distance: usize,
    /// Physical error probability per qubit (per round, if multi-round).
    pub p_physical: f64,
    /// Measured logical error probability.
    pub p_logical: f64,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Decoder used.
    pub decoder: &'static str,
}

impl MemoryResult {
    /// The lifetime-extension factor: how much longer the logical qubit
    /// survives than a bare physical qubit at the same rate (ratio of
    /// error probabilities; >1 means QEC helps).
    pub fn lifetime_extension(&self) -> f64 {
        if self.p_logical <= 0.0 {
            // No observed failures: report the resolution limit.
            return self.p_physical * self.trials as f64;
        }
        self.p_physical / self.p_logical
    }
}

/// Code-capacity experiment: i.i.d. X errors with probability `p`, one
/// perfect syndrome measurement, decode, count logical X flips.
pub fn code_capacity_experiment(
    d: usize,
    p: f64,
    kind: DecoderKind,
    trials: usize,
    seed: u64,
) -> MemoryResult {
    let code = SurfaceCode::new(d);
    let graph = DecodingGraph::code_capacity_x(&code);
    let decoder = kind.build(&code, graph.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errors = vec![false; code.num_data()];
        for e in errors.iter_mut() {
            if rng.gen_bool(p) {
                *e = true;
            }
        }
        let flagged = graph.syndrome_of(&errors);
        let correction = decoder.decode(&flagged);
        correction.apply(&mut errors);
        debug_assert!(code.z_syndrome(&errors).iter().all(|&b| !b));
        if code.is_logical_x_flip(&errors) {
            failures += 1;
        }
    }
    MemoryResult {
        distance: d,
        p_physical: p,
        p_logical: failures as f64 / trials as f64,
        trials,
        decoder: kind.name(),
    }
}

/// Phenomenological experiment: `rounds` rounds of noisy syndrome
/// extraction (data rate `p`, measurement rate `q`), space-time decoding,
/// then a logical-flip check against the final perfect round.
pub fn phenomenological_experiment(
    d: usize,
    p: f64,
    q: f64,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> MemoryResult {
    let code = SurfaceCode::new(d);
    // +1 node layer for the final perfect round.
    let graph = DecodingGraph::spacetime_x(&code, rounds + 1);
    let decoder = GreedyMatchingDecoder::new(graph);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let history = syndrome::extract(&code, p, q, rounds, &mut rng);
        let events = history.detection_events();
        let correction = decoder.decode(&events);
        let mut errors = history.final_errors.clone();
        correction.apply(&mut errors);
        if code.is_logical_x_flip(&errors) {
            failures += 1;
        }
    }
    MemoryResult {
        distance: d,
        p_physical: p,
        p_logical: failures as f64 / trials as f64,
        trials,
        decoder: "greedy-matching(spacetime)",
    }
}

/// Circuit-level experiment: lowers the code to its syndrome-extraction
/// circuit, executes `trials` shots on the tableau backend under the given
/// gate-level noise model, and space-time-decodes each distinct outcome
/// word (decoding is deduplicated across identical shots).
///
/// The reported `p_physical` is the model's two-qubit depolarizing rate,
/// the dominant channel in the extraction circuit.
///
/// # Errors
///
/// Propagates [`SimError`] when the circuit cannot run on the tableau
/// backend (it always can for circuits produced by
/// [`SurfaceCode::memory_circuit`]; classical registers of any width are
/// recorded, so distance-7 and beyond work like distance-3).
pub fn circuit_level_experiment(
    d: usize,
    noise: &NoiseModel,
    rounds: usize,
    trials: u64,
    seed: u64,
) -> Result<MemoryResult, SimError> {
    circuit_level_experiment_threaded(
        d,
        noise,
        rounds,
        trials,
        seed,
        qsim::exec::recommended_threads(),
    )
}

/// [`circuit_level_experiment`] with an explicit simulator thread count.
///
/// Results are thread-count independent (the executor's determinism
/// contract); the knob exists so multi-process drivers like `qugen-shard`
/// can run each worker single-threaded and let process fan-out be the only
/// parallelism, instead of nesting a full-width shot pool per worker.
pub fn circuit_level_experiment_threaded(
    d: usize,
    noise: &NoiseModel,
    rounds: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Result<MemoryResult, SimError> {
    let code = SurfaceCode::new(d);
    let mem = code.memory_circuit(rounds);
    let counts = ExecutorConfig::new()
        .noise(noise.clone())
        .backend(BackendChoice::Tableau)
        .threads(threads.max(1))
        .build()
        .try_run(&mem.circuit, trials, seed)?;
    let graph = DecodingGraph::spacetime_x(&code, rounds + 1);
    let decoder = GreedyMatchingDecoder::new(graph);
    let mut failures = 0u64;
    for (word, count) in counts.iter() {
        let events = mem.detection_events(&code, word);
        let correction = decoder.decode(&events);
        let mut residual = mem.data_readout(word);
        correction.apply(&mut residual);
        if code.is_logical_x_flip(&residual) {
            failures += count;
        }
    }
    Ok(MemoryResult {
        distance: d,
        p_physical: noise.two_qubit_depol,
        p_logical: failures as f64 / counts.shots().max(1) as f64,
        trials: trials as usize,
        decoder: "greedy-matching(circuit-level)",
    })
}

/// Applies a decoder end-to-end to one explicit error pattern (exposed for
/// the Figure 2 bench, which wants the per-piece artifacts).
pub fn decode_once(code: &SurfaceCode, kind: DecoderKind, errors: &[bool]) -> Correction {
    let graph = DecodingGraph::code_capacity_x(code);
    let decoder = kind.build(code, graph.clone());
    let flagged = graph.syndrome_of(errors);
    decoder.decode(&flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_logical_beats_physical() {
        let r = code_capacity_experiment(3, 0.03, DecoderKind::Lookup, 4000, 42);
        assert!(
            r.p_logical < r.p_physical,
            "p_L = {} should beat p = {}",
            r.p_logical,
            r.p_physical
        );
        assert!(r.lifetime_extension() > 1.0);
    }

    #[test]
    fn larger_distance_helps_below_threshold() {
        let d3 = code_capacity_experiment(3, 0.02, DecoderKind::UnionFind, 6000, 1);
        let d5 = code_capacity_experiment(5, 0.02, DecoderKind::UnionFind, 6000, 2);
        assert!(
            d5.p_logical <= d3.p_logical,
            "d5 ({}) should not exceed d3 ({})",
            d5.p_logical,
            d3.p_logical
        );
    }

    #[test]
    fn above_threshold_qec_hurts() {
        // Far above threshold the code amplifies errors.
        let r = code_capacity_experiment(3, 0.4, DecoderKind::Lookup, 3000, 3);
        assert!(r.p_logical > r.p_physical * 0.5, "p_L = {}", r.p_logical);
    }

    #[test]
    fn decoders_agree_on_low_rates() {
        let lookup = code_capacity_experiment(3, 0.01, DecoderKind::Lookup, 5000, 7);
        let greedy = code_capacity_experiment(3, 0.01, DecoderKind::Greedy, 5000, 7);
        let uf = code_capacity_experiment(3, 0.01, DecoderKind::UnionFind, 5000, 7);
        for r in [&greedy, &uf] {
            assert!(
                (r.p_logical - lookup.p_logical).abs() < 0.01,
                "{}: {} vs lookup {}",
                r.decoder,
                r.p_logical,
                lookup.p_logical
            );
        }
    }

    #[test]
    fn phenomenological_below_physical_at_low_noise() {
        let r = phenomenological_experiment(3, 0.004, 0.004, 3, 2000, 9);
        // Accumulated physical rate over the experiment is roughly
        // p * rounds; the decoder must do better than that.
        let accumulated = 0.004 * 3.0;
        assert!(
            r.p_logical < accumulated,
            "p_L = {} vs accumulated physical {}",
            r.p_logical,
            accumulated
        );
    }

    #[test]
    fn zero_noise_never_fails() {
        let r = code_capacity_experiment(3, 0.0, DecoderKind::Greedy, 500, 5);
        assert_eq!(r.p_logical, 0.0);
        let r2 = phenomenological_experiment(3, 0.0, 0.0, 4, 200, 6);
        assert_eq!(r2.p_logical, 0.0);
    }

    #[test]
    fn circuit_level_zero_noise_never_fails() {
        // Noiseless: every shot's detection events are empty and the data
        // readout carries no logical flip, whatever the stabilizer
        // randomness of the X-type projections.
        let r = circuit_level_experiment(3, &NoiseModel::ideal(), 2, 300, 7).unwrap();
        assert_eq!(r.p_logical, 0.0);
        assert_eq!(r.trials, 300);
    }

    #[test]
    fn circuit_level_low_noise_is_mostly_correctable() {
        let noise = NoiseModel::uniform_depolarizing(0.001);
        let r = circuit_level_experiment(3, &noise, 2, 2000, 8).unwrap();
        assert!(
            r.p_logical < 0.05,
            "p_L = {} at p = 0.001 should be small",
            r.p_logical
        );
    }

    #[test]
    fn circuit_level_distance7_crosses_the_word_boundary() {
        // 97 qubits and 97 classical bits at two rounds: the register
        // spans two outcome words, so this end-to-end run (tableau
        // execution, multi-threaded chunk merge, space-time decoding of
        // spilled syndrome bits) is the proof the multi-word register
        // layer works. It was refused outright at the 64-clbit cap.
        let code = SurfaceCode::new(7);
        let mem = code.memory_circuit(2);
        assert!(mem.circuit.num_clbits() > 64);
        let noise = NoiseModel::uniform_depolarizing(0.001);
        let r = circuit_level_experiment(7, &noise, 2, 300, 11).unwrap();
        assert_eq!(r.distance, 7);
        assert_eq!(r.trials, 300);
        assert!(r.p_logical < 0.1, "p_L = {}", r.p_logical);
        // Noiseless distance-7 never fails, whatever the word width.
        let clean = circuit_level_experiment(7, &NoiseModel::ideal(), 2, 100, 12).unwrap();
        assert_eq!(clean.p_logical, 0.0);
    }

    #[test]
    fn circuit_level_distance5_runs_on_the_tableau() {
        // 49 qubits: impossible on the dense backend (2^49 amplitudes), so
        // this test exercising Executor end-to-end is itself the proof that
        // the tableau dispatch works.
        let noise = NoiseModel::uniform_depolarizing(0.001);
        let r = circuit_level_experiment(5, &noise, 2, 400, 9).unwrap();
        assert_eq!(r.distance, 5);
        assert_eq!(r.trials, 400);
        assert!(r.p_logical < 0.1, "p_L = {}", r.p_logical);
    }
}
