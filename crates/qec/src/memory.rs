//! Logical memory experiments: logical error rate vs physical rate and
//! distance, and the qubit-lifetime-extension factor the QEC agent reports.

use crate::decoder::{
    Correction, Decoder, DecodingGraph, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use crate::surface::SurfaceCode;
use crate::syndrome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which decoder implementation to use in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderKind {
    /// Exact lookup (d = 3 only).
    Lookup,
    /// Greedy minimum-weight matching.
    Greedy,
    /// Union-find cluster decoder.
    UnionFind,
}

impl DecoderKind {
    /// All kinds, for sweeps.
    pub const ALL: [DecoderKind; 3] = [
        DecoderKind::Lookup,
        DecoderKind::Greedy,
        DecoderKind::UnionFind,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DecoderKind::Lookup => "lookup-exact",
            DecoderKind::Greedy => "greedy-matching",
            DecoderKind::UnionFind => "union-find",
        }
    }

    /// Instantiates the decoder for `code` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics when `Lookup` is requested for `d != 3`.
    pub fn build(&self, code: &SurfaceCode, graph: DecodingGraph) -> Box<dyn Decoder> {
        match self {
            DecoderKind::Lookup => Box::new(LookupDecoder::new(code)),
            DecoderKind::Greedy => Box::new(GreedyMatchingDecoder::new(graph)),
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
        }
    }
}

/// Result of a logical-memory experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryResult {
    /// Code distance.
    pub distance: usize,
    /// Physical error probability per qubit (per round, if multi-round).
    pub p_physical: f64,
    /// Measured logical error probability.
    pub p_logical: f64,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Decoder used.
    pub decoder: &'static str,
}

impl MemoryResult {
    /// The lifetime-extension factor: how much longer the logical qubit
    /// survives than a bare physical qubit at the same rate (ratio of
    /// error probabilities; >1 means QEC helps).
    pub fn lifetime_extension(&self) -> f64 {
        if self.p_logical <= 0.0 {
            // No observed failures: report the resolution limit.
            return self.p_physical * self.trials as f64;
        }
        self.p_physical / self.p_logical
    }
}

/// Code-capacity experiment: i.i.d. X errors with probability `p`, one
/// perfect syndrome measurement, decode, count logical X flips.
pub fn code_capacity_experiment(
    d: usize,
    p: f64,
    kind: DecoderKind,
    trials: usize,
    seed: u64,
) -> MemoryResult {
    let code = SurfaceCode::new(d);
    let graph = DecodingGraph::code_capacity_x(&code);
    let decoder = kind.build(&code, graph.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut errors = vec![false; code.num_data()];
        for e in errors.iter_mut() {
            if rng.gen_bool(p) {
                *e = true;
            }
        }
        let flagged = graph.syndrome_of(&errors);
        let correction = decoder.decode(&flagged);
        correction.apply(&mut errors);
        debug_assert!(code.z_syndrome(&errors).iter().all(|&b| !b));
        if code.is_logical_x_flip(&errors) {
            failures += 1;
        }
    }
    MemoryResult {
        distance: d,
        p_physical: p,
        p_logical: failures as f64 / trials as f64,
        trials,
        decoder: kind.name(),
    }
}

/// Phenomenological experiment: `rounds` rounds of noisy syndrome
/// extraction (data rate `p`, measurement rate `q`), space-time decoding,
/// then a logical-flip check against the final perfect round.
pub fn phenomenological_experiment(
    d: usize,
    p: f64,
    q: f64,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> MemoryResult {
    let code = SurfaceCode::new(d);
    // +1 node layer for the final perfect round.
    let graph = DecodingGraph::spacetime_x(&code, rounds + 1);
    let decoder = GreedyMatchingDecoder::new(graph);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let history = syndrome::extract(&code, p, q, rounds, &mut rng);
        let events = history.detection_events();
        let correction = decoder.decode(&events);
        let mut errors = history.final_errors.clone();
        correction.apply(&mut errors);
        if code.is_logical_x_flip(&errors) {
            failures += 1;
        }
    }
    MemoryResult {
        distance: d,
        p_physical: p,
        p_logical: failures as f64 / trials as f64,
        trials,
        decoder: "greedy-matching(spacetime)",
    }
}

/// Applies a decoder end-to-end to one explicit error pattern (exposed for
/// the Figure 2 bench, which wants the per-piece artifacts).
pub fn decode_once(code: &SurfaceCode, kind: DecoderKind, errors: &[bool]) -> Correction {
    let graph = DecodingGraph::code_capacity_x(code);
    let decoder = kind.build(code, graph.clone());
    let flagged = graph.syndrome_of(errors);
    decoder.decode(&flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_logical_beats_physical() {
        let r = code_capacity_experiment(3, 0.03, DecoderKind::Lookup, 4000, 42);
        assert!(
            r.p_logical < r.p_physical,
            "p_L = {} should beat p = {}",
            r.p_logical,
            r.p_physical
        );
        assert!(r.lifetime_extension() > 1.0);
    }

    #[test]
    fn larger_distance_helps_below_threshold() {
        let d3 = code_capacity_experiment(3, 0.02, DecoderKind::UnionFind, 6000, 1);
        let d5 = code_capacity_experiment(5, 0.02, DecoderKind::UnionFind, 6000, 2);
        assert!(
            d5.p_logical <= d3.p_logical,
            "d5 ({}) should not exceed d3 ({})",
            d5.p_logical,
            d3.p_logical
        );
    }

    #[test]
    fn above_threshold_qec_hurts() {
        // Far above threshold the code amplifies errors.
        let r = code_capacity_experiment(3, 0.4, DecoderKind::Lookup, 3000, 3);
        assert!(r.p_logical > r.p_physical * 0.5, "p_L = {}", r.p_logical);
    }

    #[test]
    fn decoders_agree_on_low_rates() {
        let lookup = code_capacity_experiment(3, 0.01, DecoderKind::Lookup, 5000, 7);
        let greedy = code_capacity_experiment(3, 0.01, DecoderKind::Greedy, 5000, 7);
        let uf = code_capacity_experiment(3, 0.01, DecoderKind::UnionFind, 5000, 7);
        for r in [&greedy, &uf] {
            assert!(
                (r.p_logical - lookup.p_logical).abs() < 0.01,
                "{}: {} vs lookup {}",
                r.decoder,
                r.p_logical,
                lookup.p_logical
            );
        }
    }

    #[test]
    fn phenomenological_below_physical_at_low_noise() {
        let r = phenomenological_experiment(3, 0.004, 0.004, 3, 2000, 9);
        // Accumulated physical rate over the experiment is roughly
        // p * rounds; the decoder must do better than that.
        let accumulated = 0.004 * 3.0;
        assert!(
            r.p_logical < accumulated,
            "p_L = {} vs accumulated physical {}",
            r.p_logical,
            accumulated
        );
    }

    #[test]
    fn zero_noise_never_fails() {
        let r = code_capacity_experiment(3, 0.0, DecoderKind::Greedy, 500, 5);
        assert_eq!(r.p_logical, 0.0);
        let r2 = phenomenological_experiment(3, 0.0, 0.0, 4, 200, 6);
        assert_eq!(r2.p_logical, 0.0);
    }
}
