//! The rotated surface code.
//!
//! Distance-`d` rotated surface code on a `d x d` data-qubit grid. X-type
//! plaquettes (yellow in the paper's Figure 2) detect Z errors; Z-type
//! plaquettes (blue) detect X errors. Weight-2 boundary stabilizers sit on
//! the top/bottom rows (X-type) and left/right columns (Z-type).
//!
//! [`SurfaceCode::memory_circuit`] lowers the code to an executable
//! Clifford [`Circuit`] (one ancilla per stabilizer, repeated
//! syndrome-extraction rounds, transversal data readout) so logical-memory
//! experiments can run through `qsim`'s tableau backend at distances where
//! dense simulation is impossible.

use qcir::circuit::Circuit;
use qsim::word::OutcomeWord;
use std::fmt;

/// Which Pauli type a stabilizer measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabKind {
    /// X-type plaquette: product of X on its data qubits; detects Z errors.
    X,
    /// Z-type plaquette: product of Z on its data qubits; detects X errors.
    Z,
}

/// One stabilizer generator: its type and data-qubit support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// X or Z type.
    pub kind: StabKind,
    /// Data-qubit indices (2 on the boundary, 4 in the bulk).
    pub support: Vec<usize>,
    /// Plaquette anchor in the vertex grid (row, col), for rendering.
    pub anchor: (usize, usize),
}

/// A rotated surface code lattice.
///
/// ```
/// use qec::surface::SurfaceCode;
/// let code = SurfaceCode::new(5);
/// assert_eq!(code.num_data(), 25);
/// assert_eq!(code.num_stabilizers(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceCode {
    d: usize,
    stabilizers: Vec<Stabilizer>,
}

impl SurfaceCode {
    /// Builds the distance-`d` code.
    ///
    /// # Panics
    ///
    /// Panics unless `d` is odd and at least 3.
    pub fn new(d: usize) -> Self {
        assert!(d >= 3 && d % 2 == 1, "distance must be odd and >= 3");
        let mut stabilizers = Vec::new();
        // Vertex grid (d+1) x (d+1); plaquette (r, c) touches data qubits
        // (r-1, c-1), (r-1, c), (r, c-1), (r, c) clipped to the lattice.
        for r in 0..=d {
            for c in 0..=d {
                let mut support = Vec::new();
                for (dr, dc) in [(0i64, 0i64), (0, -1), (-1, 0), (-1, -1)] {
                    let rr = r as i64 + dr;
                    let cc = c as i64 + dc;
                    if (0..d as i64).contains(&rr) && (0..d as i64).contains(&cc) {
                        support.push((rr as usize) * d + cc as usize);
                    }
                }
                if support.len() < 2 {
                    continue; // corners
                }
                let kind = if (r + c) % 2 == 0 {
                    StabKind::Z
                } else {
                    StabKind::X
                };
                // Boundary rule: weight-2 plaquettes survive only on the
                // matching boundary (X on top/bottom, Z on left/right).
                if support.len() == 2 {
                    let on_top_bottom = r == 0 || r == d;
                    let on_left_right = c == 0 || c == d;
                    let keep = match kind {
                        StabKind::X => on_top_bottom && !on_left_right,
                        StabKind::Z => on_left_right && !on_top_bottom,
                    };
                    if !keep {
                        continue;
                    }
                }
                support.sort_unstable();
                stabilizers.push(Stabilizer {
                    kind,
                    support,
                    anchor: (r, c),
                });
            }
        }
        let code = SurfaceCode { d, stabilizers };
        debug_assert_eq!(code.num_stabilizers(), d * d - 1);
        code
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of data qubits (`d^2`).
    pub fn num_data(&self) -> usize {
        self.d * self.d
    }

    /// Total stabilizer generators (`d^2 - 1`).
    pub fn num_stabilizers(&self) -> usize {
        self.stabilizers.len()
    }

    /// All stabilizers.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// X-type stabilizers only.
    pub fn x_stabilizers(&self) -> Vec<&Stabilizer> {
        self.stabilizers
            .iter()
            .filter(|s| s.kind == StabKind::X)
            .collect()
    }

    /// Z-type stabilizers only.
    pub fn z_stabilizers(&self) -> Vec<&Stabilizer> {
        self.stabilizers
            .iter()
            .filter(|s| s.kind == StabKind::Z)
            .collect()
    }

    /// Data-qubit index at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn data_at(&self, row: usize, col: usize) -> usize {
        assert!(row < self.d && col < self.d);
        row * self.d + col
    }

    /// Support of the logical Z operator: the middle row.
    ///
    /// Interior rows overlap every bulk X plaquette in exactly 0 or 2
    /// qubits and never touch the top/bottom X bumps, so a horizontal Z
    /// string there commutes with the whole stabilizer group. (The
    /// staggered boundary bumps of the rotated layout make the *edge*
    /// rows/columns invalid as straight logicals.)
    pub fn logical_z(&self) -> Vec<usize> {
        let r = self.d / 2;
        (0..self.d).map(|c| self.data_at(r, c)).collect()
    }

    /// Support of the logical X operator: the middle column (overlaps the
    /// logical Z in exactly one qubit, so they anticommute).
    pub fn logical_x(&self) -> Vec<usize> {
        let c = self.d / 2;
        (0..self.d).map(|r| self.data_at(r, c)).collect()
    }

    /// Computes the Z-stabilizer syndrome of an X-error pattern
    /// (bit `i` of the result = parity of errors on Z-stabilizer `i`'s
    /// support, indexing [`SurfaceCode::z_stabilizers`] order).
    pub fn z_syndrome(&self, x_errors: &[bool]) -> Vec<bool> {
        self.z_stabilizers()
            .iter()
            .map(|s| s.support.iter().filter(|&&q| x_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Computes the X-stabilizer syndrome of a Z-error pattern.
    pub fn x_syndrome(&self, z_errors: &[bool]) -> Vec<bool> {
        self.x_stabilizers()
            .iter()
            .map(|s| s.support.iter().filter(|&&q| z_errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Whether an X-error pattern (after correction) implements a logical X
    /// flip: odd overlap with the logical Z support.
    pub fn is_logical_x_flip(&self, x_errors: &[bool]) -> bool {
        self.logical_z().iter().filter(|&&q| x_errors[q]).count() % 2 == 1
    }

    /// Whether a Z-error pattern implements a logical Z flip.
    pub fn is_logical_z_flip(&self, z_errors: &[bool]) -> bool {
        self.logical_x().iter().filter(|&&q| z_errors[q]).count() % 2 == 1
    }

    /// Lowers the code to an executable syndrome-extraction memory circuit
    /// over `num_data + num_stabilizers` qubits (data qubits first, one
    /// ancilla per stabilizer): `rounds` rounds of stabilizer measurement
    /// followed by a transversal Z-basis data readout.
    ///
    /// Per round, every Z-type ancilla is reset, accumulates its support's
    /// X-error parity through data→ancilla CNOTs and is measured into a
    /// classical bit; every X-type ancilla runs the Hadamard-conjugated
    /// extraction and is projected by an unrecorded reset (this experiment
    /// decodes X errors only, but the X-type extraction still participates
    /// so circuit-level noise propagates realistically). The circuit is
    /// Clifford throughout, so the tableau backend simulates it in
    /// polynomial time — a distance-5 circuit needs 49 qubits, far past any
    /// dense cap.
    ///
    /// # Panics
    ///
    /// Panics when `rounds == 0`. The classical register is unbounded —
    /// outcomes travel as multi-word [`OutcomeWord`]s, so distance-7
    /// circuits (97+ classical bits at two rounds) lower like any other;
    /// the pre-multi-word layer refused anything past 64 bits here.
    pub fn memory_circuit(&self, rounds: usize) -> MemoryCircuit {
        assert!(rounds >= 1, "need at least one extraction round");
        let num_data = self.num_data();
        let num_z = self.z_stabilizers().len();
        let num_clbits = rounds * num_z + num_data;
        let mut qc = Circuit::new(num_data + self.num_stabilizers(), num_clbits);
        for t in 0..rounds {
            qc.barrier_all();
            let mut z_idx = 0usize;
            for (i, s) in self.stabilizers.iter().enumerate() {
                let anc = num_data + i;
                match s.kind {
                    StabKind::Z => {
                        qc.reset(anc);
                        for &q in &s.support {
                            qc.cx(q, anc);
                        }
                        qc.measure(anc, t * num_z + z_idx);
                        z_idx += 1;
                    }
                    StabKind::X => {
                        qc.reset(anc);
                        qc.h(anc);
                        for &q in &s.support {
                            qc.cx(anc, q);
                        }
                        qc.h(anc);
                        // Project the X parity without recording it.
                        qc.reset(anc);
                    }
                }
            }
        }
        for q in 0..num_data {
            qc.measure(q, rounds * num_z + q);
        }
        MemoryCircuit {
            circuit: qc,
            rounds,
            num_z,
            num_data,
        }
    }

    /// Renders the lattice with an error/correction overlay for terminal
    /// output (the Figure 2 illustration). `marks[q]`, when set, draws the
    /// given character at data qubit `q`.
    pub fn render(&self, marks: &[Option<char>]) -> String {
        let mut out = String::new();
        for r in 0..self.d {
            for c in 0..self.d {
                let q = self.data_at(r, c);
                let ch = marks.get(q).copied().flatten().unwrap_or('·');
                out.push(ch);
                if c + 1 < self.d {
                    out.push_str("──");
                }
            }
            out.push('\n');
            if r + 1 < self.d {
                for c in 0..self.d {
                    out.push('│');
                    if c + 1 < self.d {
                        out.push_str("  ");
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

/// An executable memory circuit plus its classical-bit layout.
///
/// Outcome words pack, low bits first, the per-round Z-stabilizer readouts
/// (`rounds * num_z` bits, in [`SurfaceCode::z_stabilizers`] order) and
/// then the transversal data readout (`d^2` bits).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryCircuit {
    /// The lowered Clifford circuit.
    pub circuit: Circuit,
    /// Syndrome-extraction rounds.
    pub rounds: usize,
    num_z: usize,
    num_data: usize,
}

impl MemoryCircuit {
    /// Classical bit holding round `t`'s readout of Z stabilizer `s`.
    pub fn z_syndrome_bit(&self, round: usize, stab: usize) -> usize {
        assert!(round < self.rounds && stab < self.num_z);
        round * self.num_z + stab
    }

    /// Classical bit holding data qubit `q`'s final readout.
    pub fn data_bit(&self, q: usize) -> usize {
        assert!(q < self.num_data);
        self.rounds * self.num_z + q
    }

    /// Unpacks the per-round measured Z syndromes from an outcome word.
    pub fn z_syndromes(&self, word: &OutcomeWord) -> Vec<Vec<bool>> {
        (0..self.rounds)
            .map(|t| {
                (0..self.num_z)
                    .map(|s| word.bit(self.z_syndrome_bit(t, s)))
                    .collect()
            })
            .collect()
    }

    /// Unpacks the final transversal data readout from an outcome word.
    pub fn data_readout(&self, word: &OutcomeWord) -> Vec<bool> {
        (0..self.num_data)
            .map(|q| word.bit(self.data_bit(q)))
            .collect()
    }

    /// Detection events for space-time decoding of one outcome word:
    /// round-over-round Z-syndrome differences, with a final layer computed
    /// from the data readout's syndrome (node flattening matches
    /// [`crate::decoder::DecodingGraph::spacetime_x`] over `rounds + 1`
    /// layers).
    pub fn detection_events(&self, code: &SurfaceCode, word: &OutcomeWord) -> Vec<usize> {
        let final_syndrome = code.z_syndrome(&self.data_readout(word));
        let mut events = Vec::new();
        let mut prev = vec![false; self.num_z];
        for (t, cur) in self
            .z_syndromes(word)
            .iter()
            .chain(std::iter::once(&final_syndrome))
            .enumerate()
        {
            for (s, &bit) in cur.iter().enumerate() {
                if bit != prev[s] {
                    events.push(t * self.num_z + s);
                }
            }
            prev.clone_from_slice(cur);
        }
        events
    }
}

impl fmt::Display for SurfaceCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rotated surface code d={} ({} data, {} stabilizers)",
            self.d,
            self.num_data(),
            self.num_stabilizers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizer_counts_for_small_distances() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::new(d);
            assert_eq!(code.num_stabilizers(), d * d - 1, "d = {d}");
            let x = code.x_stabilizers().len();
            let z = code.z_stabilizers().len();
            assert_eq!(x, z, "d = {d}: balanced types");
            assert_eq!(x + z, d * d - 1);
        }
    }

    #[test]
    fn bulk_stabilizers_have_weight_four() {
        let code = SurfaceCode::new(5);
        let bulk = code
            .stabilizers()
            .iter()
            .filter(|s| s.support.len() == 4)
            .count();
        let boundary = code
            .stabilizers()
            .iter()
            .filter(|s| s.support.len() == 2)
            .count();
        assert_eq!(bulk + boundary, code.num_stabilizers());
        // d=5: 2*(d-1)/2 per boundary side * 2 sides per type = 2(d-1) total.
        assert_eq!(boundary, 2 * (5 - 1));
    }

    #[test]
    fn every_data_qubit_is_covered() {
        let code = SurfaceCode::new(3);
        let mut covered = vec![false; code.num_data()];
        for s in code.stabilizers() {
            for &q in &s.support {
                covered[q] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn logical_operators_commute_with_stabilizers() {
        // Logical Z (Z on a column) must share an even number of qubits
        // with every X stabilizer; logical X likewise with Z stabilizers.
        for d in [3usize, 5] {
            let code = SurfaceCode::new(d);
            let lz: std::collections::BTreeSet<usize> = code.logical_z().into_iter().collect();
            for s in code.x_stabilizers() {
                let overlap = s.support.iter().filter(|q| lz.contains(q)).count();
                assert_eq!(
                    overlap % 2,
                    0,
                    "d={d}: logical Z vs X stabilizer {:?}",
                    s.anchor
                );
            }
            let lx: std::collections::BTreeSet<usize> = code.logical_x().into_iter().collect();
            for s in code.z_stabilizers() {
                let overlap = s.support.iter().filter(|q| lx.contains(q)).count();
                assert_eq!(
                    overlap % 2,
                    0,
                    "d={d}: logical X vs Z stabilizer {:?}",
                    s.anchor
                );
            }
        }
    }

    #[test]
    fn logical_operators_anticommute_with_each_other() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::new(d);
            let lz: std::collections::BTreeSet<usize> = code.logical_z().into_iter().collect();
            let overlap = code.logical_x().iter().filter(|q| lz.contains(q)).count();
            assert_eq!(overlap % 2, 1, "d={d}");
        }
    }

    #[test]
    fn single_x_error_flags_adjacent_z_stabilizers() {
        let code = SurfaceCode::new(3);
        let mut errors = vec![false; code.num_data()];
        errors[code.data_at(1, 1)] = true; // bulk qubit
        let syndrome = code.z_syndrome(&errors);
        let flagged = syndrome.iter().filter(|&&b| b).count();
        // A bulk qubit touches exactly 2 Z-type plaquettes.
        assert_eq!(flagged, 2);
    }

    #[test]
    fn stabilizer_pattern_of_x_errors_has_zero_syndrome() {
        // Applying X on a Z-stabilizer support is... wrong test; use an
        // X-stabilizer support: X errors matching an X stabilizer are a
        // stabilizer action and must be syndrome-free AND not logical.
        let code = SurfaceCode::new(3);
        let xs = code.x_stabilizers();
        let s = xs
            .iter()
            .find(|s| s.support.len() == 4)
            .expect("bulk X stab");
        let mut errors = vec![false; code.num_data()];
        for &q in &s.support {
            errors[q] = true;
        }
        let syndrome = code.z_syndrome(&errors);
        assert!(
            syndrome.iter().all(|&b| !b),
            "stabilizer has trivial syndrome"
        );
        assert!(!code.is_logical_x_flip(&errors));
    }

    #[test]
    fn logical_x_support_is_undetected_and_flips() {
        let code = SurfaceCode::new(3);
        let mut errors = vec![false; code.num_data()];
        for q in code.logical_x() {
            errors[q] = true; // X errors along the vertical logical-X string
        }
        let syndrome = code.z_syndrome(&errors);
        assert!(syndrome.iter().all(|&b| !b), "logical op is undetectable");
        assert!(code.is_logical_x_flip(&errors));
    }

    #[test]
    fn any_interior_column_is_an_equivalent_logical_x() {
        let code = SurfaceCode::new(5);
        for col in 1..4 {
            let mut errors = vec![false; code.num_data()];
            for r in 0..5 {
                errors[code.data_at(r, col)] = true;
            }
            let syndrome = code.z_syndrome(&errors);
            assert!(
                syndrome.iter().all(|&b| !b),
                "column {col} should be undetected"
            );
            assert!(code.is_logical_x_flip(&errors), "column {col}");
        }
    }

    #[test]
    fn render_marks_positions() {
        let code = SurfaceCode::new(3);
        let mut marks = vec![None; code.num_data()];
        marks[code.data_at(1, 1)] = Some('X');
        let art = code.render(&marks);
        assert!(art.contains('X'));
        assert!(art.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_distance() {
        SurfaceCode::new(4);
    }

    #[test]
    fn memory_circuit_layout_is_consistent() {
        for d in [3usize, 5] {
            let code = SurfaceCode::new(d);
            let rounds = 2;
            let mem = code.memory_circuit(rounds);
            assert_eq!(
                mem.circuit.num_qubits(),
                code.num_data() + code.num_stabilizers(),
                "d = {d}: data + one ancilla per stabilizer"
            );
            let num_z = code.z_stabilizers().len();
            assert_eq!(
                mem.circuit.num_clbits(),
                rounds * num_z + code.num_data(),
                "d = {d}"
            );
            assert_eq!(mem.data_bit(0), rounds * num_z);
            assert_eq!(mem.z_syndrome_bit(1, 0), num_z);
            // Clifford throughout: tableau-simulable at any distance.
            assert!(qsim::backend::classify(&mem.circuit).is_clifford());
        }
        // Distance 5 is the headline: 49 qubits in one Clifford circuit.
        assert_eq!(
            SurfaceCode::new(5).memory_circuit(2).circuit.num_qubits(),
            49
        );
    }

    #[test]
    fn memory_circuit_word_unpacking_round_trips() {
        let code = SurfaceCode::new(3);
        let mem = code.memory_circuit(2);
        let num_z = code.z_stabilizers().len();
        // Set round-1 syndrome bit 2 and data bit 4.
        let mut word = OutcomeWord::zero();
        word.set_bit(num_z + 2, true);
        word.set_bit(mem.data_bit(4), true);
        let syndromes = mem.z_syndromes(&word);
        assert!(!syndromes[0].iter().any(|&b| b));
        assert!(syndromes[1][2]);
        assert_eq!(syndromes[1].iter().filter(|&&b| b).count(), 1);
        let data = mem.data_readout(&word);
        assert!(data[4]);
        assert_eq!(data.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn memory_circuit_detection_events_flag_syndrome_changes() {
        let code = SurfaceCode::new(3);
        let mem = code.memory_circuit(2);
        let num_z = code.z_stabilizers().len();
        // Clean word: no events.
        assert!(mem.detection_events(&code, &OutcomeWord::zero()).is_empty());
        // A measurement flip in round 0 only: events in layers 0 and 1
        // (appears, then disappears).
        let mut word = OutcomeWord::zero();
        word.set_bit(mem.z_syndrome_bit(0, 1), true);
        assert_eq!(mem.detection_events(&code, &word), vec![1, num_z + 1]);
    }

    #[test]
    fn memory_circuit_crosses_the_64_bit_register_boundary() {
        // d=5 at 4 rounds needs 73 classical bits, d=7 at 2 rounds needs
        // 97 — both refused before the multi-word register layer.
        let mem = SurfaceCode::new(5).memory_circuit(4);
        assert_eq!(mem.circuit.num_clbits(), 73);
        let code = SurfaceCode::new(7);
        let mem = code.memory_circuit(2);
        assert_eq!(mem.circuit.num_clbits(), 2 * 24 + 49);
        assert_eq!(mem.circuit.num_qubits(), 49 + code.num_stabilizers());
        assert!(qsim::backend::classify(&mem.circuit).is_clifford());
        // Spilled bits round-trip through the unpackers.
        let mut word = OutcomeWord::zero();
        word.set_bit(mem.data_bit(48), true);
        assert!(mem.data_bit(48) > 64);
        let data = mem.data_readout(&word);
        assert!(data[48]);
        assert_eq!(data.iter().filter(|&&b| b).count(), 1);
        assert!(mem.z_syndromes(&word).iter().flatten().all(|&b| !b));
    }
}
