//! Quantum phase estimation of a single-qubit phase gate.

use crate::qft::append_iqft;
use qcir::circuit::Circuit;

/// Estimates the phase `phi` of `P(2*pi*phi)` acting on |1>, using
/// `t` counting qubits. The counting register (clbits `0..t`) concentrates
/// on `round(phi * 2^t)` when `phi` has an exact `t`-bit expansion.
///
/// # Panics
///
/// Panics when `t == 0` or `phi` is outside `[0, 1)`.
pub fn phase_estimation(t: usize, phi: f64) -> Circuit {
    assert!(t >= 1, "need at least one counting qubit");
    assert!((0.0..1.0).contains(&phi), "phi must be in [0, 1)");
    let target = t;
    let mut qc = Circuit::new(t + 1, t);
    // Eigenstate |1> of P(theta).
    qc.x(target);
    for q in 0..t {
        qc.h(q);
    }
    // Controlled-P(theta * 2^k) from counting qubit k.
    let theta = 2.0 * std::f64::consts::PI * phi;
    for k in 0..t {
        let angle = theta * (1u64 << k) as f64;
        qc.cp(angle, k, target);
    }
    append_iqft(&mut qc, t);
    for q in 0..t {
        qc.measure(q, q);
    }
    qc
}

/// The expected counting-register word for an exactly-representable phase.
pub fn expected_word(t: usize, phi: f64) -> u64 {
    ((phi * (1u64 << t) as f64).round() as u64) % (1u64 << t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn exact_phases_are_deterministic() {
        for (t, phi) in [(3, 0.125), (3, 0.5), (3, 0.625), (4, 0.3125)] {
            let d = Executor::ideal_distribution(&phase_estimation(t, phi), 0);
            let expected = expected_word(t, phi);
            assert!(
                (d.get(expected) - 1.0).abs() < 1e-6,
                "t={t} phi={phi}: p({expected}) = {}",
                d.get(expected)
            );
        }
    }

    #[test]
    fn inexact_phase_concentrates_near_truth() {
        let t = 4;
        let phi = 0.3; // not exactly representable in 4 bits
        let d = Executor::ideal_distribution(&phase_estimation(t, phi), 0);
        let best = expected_word(t, phi); // round(0.3 * 16) = 5
        assert_eq!(best, 5);
        // The two nearest grid points carry the bulk of the mass.
        let mass = d.get(4) + d.get(5) + d.get(6);
        assert!(mass > 0.8, "mass near truth = {mass}");
    }

    #[test]
    fn zero_phase_reads_zero() {
        let d = Executor::ideal_distribution(&phase_estimation(3, 0.0), 0);
        assert!((d.get(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn rejects_out_of_range_phase() {
        phase_estimation(3, 1.5);
    }
}
