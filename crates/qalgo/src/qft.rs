//! Quantum Fourier transform and its inverse.

use qcir::circuit::Circuit;

/// Appends the QFT over qubits `0..n` of `qc` (with the final bit-reversal
/// swaps, matching the textbook definition).
pub fn append_qft(qc: &mut Circuit, n: usize) {
    for target in (0..n).rev() {
        qc.h(target);
        for control in (0..target).rev() {
            let k = target - control;
            let angle = std::f64::consts::PI / (1u64 << k) as f64;
            qc.cp(angle, control, target);
        }
    }
    for q in 0..n / 2 {
        qc.swap(q, n - 1 - q);
    }
}

/// Appends the inverse QFT over qubits `0..n`.
pub fn append_iqft(qc: &mut Circuit, n: usize) {
    for q in 0..n / 2 {
        qc.swap(q, n - 1 - q);
    }
    for target in 0..n {
        for control in 0..target {
            let k = target - control;
            let angle = -std::f64::consts::PI / (1u64 << k) as f64;
            qc.cp(angle, control, target);
        }
        qc.h(target);
    }
}

/// A standalone measured QFT circuit applied to the basis state `input`.
///
/// # Panics
///
/// Panics when `input >= 2^n`.
pub fn qft_of_basis(n: usize, input: u64) -> Circuit {
    assert!(input < (1 << n), "input out of range");
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        if (input >> q) & 1 == 1 {
            qc.x(q);
        }
    }
    append_qft(&mut qc, n);
    qc.measure_all();
    qc
}

/// QFT followed by inverse QFT on a basis state — identity, used as a
/// self-check workload.
pub fn qft_round_trip(n: usize, input: u64) -> Circuit {
    assert!(input < (1 << n), "input out of range");
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        if (input >> q) & 1 == 1 {
            qc.x(q);
        }
    }
    append_qft(&mut qc, n);
    append_iqft(&mut qc, n);
    qc.measure_all();
    qc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn qft_then_iqft_is_identity() {
        for input in 0..8u64 {
            let d = Executor::ideal_distribution(&qft_round_trip(3, input), 0);
            assert!(
                (d.get(input) - 1.0).abs() < 1e-9,
                "input {input}: p = {}",
                d.get(input)
            );
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let d = Executor::ideal_distribution(&qft_of_basis(3, 0), 0);
        for word in 0..8u64 {
            assert!((d.get(word) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn qft_magnitudes_always_uniform_on_basis_input() {
        // QFT of any basis state has uniform measurement probabilities.
        let d = Executor::ideal_distribution(&qft_of_basis(3, 5), 0);
        for word in 0..8u64 {
            assert!((d.get(word) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn qft_unitary_matches_dft_matrix() {
        use qcir::math::C64;
        let n = 3;
        let mut qc = Circuit::new(n, 0);
        append_qft(&mut qc, n);
        let u = qsim::state::circuit_unitary(&qc);
        let dim = 1 << n;
        let omega = 2.0 * std::f64::consts::PI / dim as f64;
        let norm = 1.0 / (dim as f64).sqrt();
        for row in 0..dim {
            for col in 0..dim {
                let expected = C64::cis(omega * (row * col) as f64) * norm;
                assert!(
                    u.get(row, col).approx_eq(expected, 1e-9),
                    "({row},{col}): {} vs {expected}",
                    u.get(row, col)
                );
            }
        }
    }
}
