//! # qalgo — reference quantum algorithm library
//!
//! Ground-truth circuit constructions for every task in the evaluation
//! suite. These play the role of the paper's "answer" half of its
//! prompt–answer pairs: the grader compares the behaviour of LLM-generated
//! programs against the circuits built here.
//!
//! The catalogue spans the paper's three difficulty bands (§III-B):
//!
//! * **Basic** — circuit construction and measurement: [`basics`].
//! * **Intermediate** — well-known algorithms: [`dj`], [`grover`], [`qft`],
//!   [`simon`], plus Shor order-finding in [`shor`].
//! * **Advanced** — teleportation, quantum walks, annealing, phase
//!   estimation: [`teleport`], [`walk`], [`annealing`], [`qpe`], [`vqe`].
//!
//! # Example
//!
//! ```
//! let bell = qalgo::basics::bell_pair();
//! assert_eq!(bell.num_qubits(), 2);
//! let grover = qalgo::grover::grover(3, 0b101, None);
//! assert!(grover.count_gate("h") > 0);
//! ```

pub mod annealing;
pub mod basics;
pub mod dj;
pub mod grover;
pub mod qft;
pub mod qpe;
pub mod shor;
pub mod simon;
pub mod teleport;
pub mod vqe;
pub mod walk;
