//! Trotterized quantum-annealing schedule for the transverse-field Ising
//! model (TFIM) on a line.
//!
//! Interpolates `H(s) = -(1 - s) * sum_i X_i - s * sum_i Z_i Z_{i+1}` from
//! `s = 0` to `s = 1`. With a slow enough schedule the final state
//! concentrates on the ferromagnetic ground space {|0...0>, |1...1>}.

use qcir::circuit::Circuit;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Trotter steps.
    pub steps: usize,
    /// Time per step.
    pub dt: f64,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            steps: 20,
            dt: 0.35,
        }
    }
}

/// Builds the annealing circuit on `n` qubits with the given schedule,
/// measuring at the end.
///
/// # Panics
///
/// Panics when `n == 0` or `schedule.steps == 0`.
pub fn anneal_tfim(n: usize, schedule: Schedule) -> Circuit {
    assert!(n >= 2, "annealing needs at least two qubits");
    assert!(schedule.steps >= 1, "schedule needs at least one step");
    let mut qc = Circuit::new(n, n);
    // Start in the ground state of -sum X: |+...+>.
    for q in 0..n {
        qc.h(q);
    }
    for k in 1..=schedule.steps {
        let s = k as f64 / schedule.steps as f64;
        // ZZ coupling term: exp(i s dt Z Z) via CX - RZ - CX.
        let zz_angle = -2.0 * s * schedule.dt;
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
            qc.rz(zz_angle, q + 1);
            qc.cx(q, q + 1);
        }
        // Transverse-field term: exp(i (1-s) dt X).
        let x_angle = -2.0 * (1.0 - s) * schedule.dt;
        for q in 0..n {
            qc.rx(x_angle, q);
        }
    }
    qc.measure_all();
    qc
}

/// Fraction of probability mass on the two ferromagnetic ground states.
pub fn ground_state_mass(dist: &qsim::dist::Distribution, n: usize) -> f64 {
    dist.get(0) + dist.get((1u64 << n) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn slow_anneal_finds_ferromagnetic_ground_space() {
        let qc = anneal_tfim(4, Schedule { steps: 30, dt: 0.4 });
        let d = Executor::ideal_distribution(&qc, 0);
        let mass = ground_state_mass(&d, 4);
        assert!(mass > 0.6, "ground-space mass = {mass}");
    }

    #[test]
    fn fast_anneal_is_worse_than_slow() {
        let fast = Executor::ideal_distribution(&anneal_tfim(4, Schedule { steps: 2, dt: 0.4 }), 0);
        let slow =
            Executor::ideal_distribution(&anneal_tfim(4, Schedule { steps: 30, dt: 0.4 }), 0);
        assert!(
            ground_state_mass(&slow, 4) > ground_state_mass(&fast, 4),
            "adiabaticity should matter"
        );
    }

    #[test]
    fn symmetric_between_both_ground_states() {
        let d = Executor::ideal_distribution(&anneal_tfim(3, Schedule::default()), 0);
        let p0 = d.get(0);
        let p7 = d.get(7);
        assert!((p0 - p7).abs() < 1e-6, "p0 = {p0}, p7 = {p7}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_qubit() {
        anneal_tfim(1, Schedule::default());
    }
}
