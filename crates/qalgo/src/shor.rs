//! Shor order-finding for N = 15 (the standard compiled instance).
//!
//! The work register holds `|1>` (4 qubits) and the counting register drives
//! controlled modular multiplications by `a^(2^k) mod 15`, followed by an
//! inverse QFT. For `a = 7` the order is 4, so the 3-bit counting register
//! collapses onto {0, 2, 4, 6} (phases k/4).

use crate::qft::append_iqft;
use qcir::circuit::Circuit;

/// Valid coprime bases for N = 15.
pub const VALID_BASES: [u64; 8] = [2, 4, 7, 8, 11, 13, 14, 1];

/// Multiplicative order of `a` modulo 15.
///
/// # Panics
///
/// Panics when `gcd(a, 15) != 1`.
pub fn order_mod_15(a: u64) -> u64 {
    assert!(
        !a.is_multiple_of(3) && !a.is_multiple_of(5) && !a.is_multiple_of(15),
        "a must be coprime to 15"
    );
    let mut x = a % 15;
    let mut r = 1;
    while x != 1 {
        x = (x * a) % 15;
        r += 1;
    }
    r
}

/// Appends the controlled map `|y> -> |a * y mod 15>` on the 4 work qubits
/// `work[0..4]`, controlled by `ctrl`, for `a` in the coprime set.
///
/// Uses the textbook permutation decomposition into controlled swaps and
/// controlled X gates.
///
/// # Panics
///
/// Panics for unsupported `a`.
fn controlled_mul_mod15(qc: &mut Circuit, ctrl: usize, work: [usize; 4], a: u64) {
    match a {
        1 => {}
        2 | 13 => {
            qc.cswap(ctrl, work[2], work[3]);
            qc.cswap(ctrl, work[1], work[2]);
            qc.cswap(ctrl, work[0], work[1]);
            if a == 13 {
                for w in work {
                    qc.cx(ctrl, w);
                }
            }
        }
        7 | 8 => {
            qc.cswap(ctrl, work[0], work[1]);
            qc.cswap(ctrl, work[1], work[2]);
            qc.cswap(ctrl, work[2], work[3]);
            if a == 7 {
                for w in work {
                    qc.cx(ctrl, w);
                }
            }
        }
        4 | 11 => {
            qc.cswap(ctrl, work[1], work[3]);
            qc.cswap(ctrl, work[0], work[2]);
            if a == 11 {
                for w in work {
                    qc.cx(ctrl, w);
                }
            }
        }
        14 => {
            // 14 = 15 - 1: x -> -x mod 15 = bitwise complement on [1..14].
            for w in work {
                qc.cx(ctrl, w);
            }
        }
        other => panic!("unsupported base {other} for mod-15 multiplication"),
    }
}

/// Builds the order-finding circuit for `a` mod 15 with `t` counting qubits.
///
/// Counting qubits are `0..t` (measured into clbits `0..t`); work qubits are
/// `t..t+4`.
///
/// # Panics
///
/// Panics when `a` is not coprime to 15 or `t == 0`.
pub fn order_finding(a: u64, t: usize) -> Circuit {
    assert!(t >= 1);
    let _ = order_mod_15(a); // validates coprimality
    let work = [t, t + 1, t + 2, t + 3];
    let mut qc = Circuit::new(t + 4, t);
    // Work register starts in |1>.
    qc.x(work[0]);
    for q in 0..t {
        qc.h(q);
    }
    qc.barrier_all();
    // Controlled-multiplications by a^(2^k).
    let mut power = a % 15;
    for k in 0..t {
        controlled_mul_mod15(&mut qc, k, work, power);
        power = (power * power) % 15;
    }
    qc.barrier_all();
    append_iqft(&mut qc, t);
    for q in 0..t {
        qc.measure(q, q);
    }
    qc
}

/// The standard instance the suite grades: a = 7, t = 3.
pub fn shor_15_standard() -> Circuit {
    order_finding(7, 3)
}

/// Extracts candidate orders from a measured counting word via the
/// continued-fraction step (here: denominator of word/2^t in lowest terms).
pub fn candidate_order(word: u64, t: usize) -> u64 {
    if word == 0 {
        return 1;
    }
    let denom = 1u64 << t;
    let g = gcd(word, denom);
    denom / g
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn orders_mod_15() {
        assert_eq!(order_mod_15(7), 4);
        assert_eq!(order_mod_15(2), 4);
        assert_eq!(order_mod_15(4), 2);
        assert_eq!(order_mod_15(11), 2);
        assert_eq!(order_mod_15(14), 2);
    }

    #[test]
    fn a7_counting_register_hits_quarters() {
        let d = Executor::ideal_distribution(&shor_15_standard(), 0);
        // Order 4 -> phases k/4 -> words {0, 2, 4, 6} each with p = 1/4.
        for word in [0u64, 2, 4, 6] {
            assert!(
                (d.get(word) - 0.25).abs() < 1e-6,
                "word {word}: p = {}",
                d.get(word)
            );
        }
        for word in [1u64, 3, 5, 7] {
            assert!(d.get(word) < 1e-9, "word {word} should be empty");
        }
    }

    #[test]
    fn a4_has_order_two_peaks() {
        let d = Executor::ideal_distribution(&order_finding(4, 3), 0);
        // Order 2 -> phases {0, 1/2} -> words {0, 4}.
        assert!((d.get(0) - 0.5).abs() < 1e-6);
        assert!((d.get(4) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn candidate_order_recovers_four() {
        assert_eq!(candidate_order(2, 3), 4); // 2/8 = 1/4
        assert_eq!(candidate_order(6, 3), 4); // 6/8 = 3/4
        assert_eq!(candidate_order(4, 3), 2); // 4/8 = 1/2
        assert_eq!(candidate_order(0, 3), 1);
    }

    #[test]
    fn order_divides_measured_candidates() {
        let d = Executor::ideal_distribution(&shor_15_standard(), 0);
        let r = order_mod_15(7);
        for (word, p) in d.iter() {
            if p > 1e-9 {
                assert_eq!(r % candidate_order(word.low64(), 3), 0, "word {word}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn rejects_non_coprime_base() {
        order_finding(5, 3);
    }
}
