//! Hardware-efficient VQE ansatz and an Ising-energy estimator.

use qcir::circuit::Circuit;
use qsim::state::StateVector;

/// Number of parameters for [`ansatz`] with `n` qubits and `layers` layers.
pub fn param_count(n: usize, layers: usize) -> usize {
    2 * n * layers
}

/// Builds a hardware-efficient ansatz: per layer, RY+RZ on every qubit
/// followed by a linear CX entangler chain. No measurements are appended
/// (the energy estimator works on the state vector).
///
/// # Panics
///
/// Panics when `params.len() != param_count(n, layers)`.
pub fn ansatz(n: usize, layers: usize, params: &[f64]) -> Circuit {
    assert_eq!(
        params.len(),
        param_count(n, layers),
        "wrong parameter count"
    );
    let mut qc = Circuit::new(n, 0);
    let mut it = params.iter();
    for layer in 0..layers {
        for q in 0..n {
            qc.ry(*it.next().expect("count checked"), q);
            qc.rz(*it.next().expect("count checked"), q);
        }
        if layer + 1 < layers || layers == 1 {
            for q in 0..n.saturating_sub(1) {
                qc.cx(q, q + 1);
            }
        }
    }
    qc
}

/// Energy of the ferromagnetic Ising Hamiltonian
/// `H = -sum Z_i Z_{i+1} - h * sum Z_i` in the ansatz state, computed via
/// Pauli-string expectations ([`qsim::observable`]).
pub fn ising_energy(state: &StateVector, h: f64) -> f64 {
    use qsim::observable::{Hamiltonian, PauliOp, PauliString};
    let n = state.num_qubits();
    let mut ham = Hamiltonian::new();
    for q in 0..n - 1 {
        let mut f = vec![PauliOp::I; n];
        f[q] = PauliOp::Z;
        f[q + 1] = PauliOp::Z;
        ham = ham.term(-1.0, PauliString::new(f));
    }
    for q in 0..n {
        let mut f = vec![PauliOp::I; n];
        f[q] = PauliOp::Z;
        ham = ham.term(-h, PauliString::new(f));
    }
    ham.expectation(state)
}

/// One coordinate-descent sweep over the parameters (a minimal classical
/// optimizer so examples can show a full VQE loop without an external dep).
pub fn optimize_sweep(n: usize, layers: usize, params: &mut [f64], h: f64, step: f64) -> f64 {
    let energy_of = |p: &[f64]| {
        let qc = ansatz(n, layers, p);
        let sv = qsim::exec::Executor::statevector(&qc);
        ising_energy(&sv, h)
    };
    let mut best = energy_of(params);
    for i in 0..params.len() {
        for delta in [step, -step] {
            params[i] += delta;
            let e = energy_of(params);
            if e < best {
                best = e;
            } else {
                params[i] -= delta;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn param_count_matches_ansatz() {
        let params = vec![0.1; param_count(3, 2)];
        let qc = ansatz(3, 2, &params);
        assert_eq!(qc.count_gate("ry"), 6);
        assert_eq!(qc.count_gate("rz"), 6);
    }

    #[test]
    #[should_panic(expected = "wrong parameter count")]
    fn rejects_wrong_param_count() {
        ansatz(3, 2, &[0.0; 5]);
    }

    #[test]
    fn ground_state_energy_of_aligned_spins() {
        // |00..0> has all Z_i = +1: E = -(n-1) - h*n.
        let qc = ansatz(4, 1, &vec![0.0; param_count(4, 1)]);
        let sv = Executor::statevector(&qc);
        let e = ising_energy(&sv, 0.5);
        assert!((e - (-(3.0) - 0.5 * 4.0)).abs() < 1e-9, "E = {e}");
    }

    #[test]
    fn optimizer_decreases_energy() {
        let n = 3;
        let layers = 1;
        let mut params = vec![0.8; param_count(n, layers)];
        let qc = ansatz(n, layers, &params);
        let sv = Executor::statevector(&qc);
        let before = ising_energy(&sv, 0.3);
        let mut after = before;
        for _ in 0..5 {
            after = optimize_sweep(n, layers, &mut params, 0.3, 0.2);
        }
        assert!(after < before, "before {before}, after {after}");
    }
}
