//! Quantum teleportation with mid-circuit measurement and classically
//! controlled corrections.

use qcir::circuit::Circuit;
use qcir::gate::Gate;

/// Teleports the state `prep|0>` from qubit 0 to qubit 2.
///
/// Classical bits: `c0`/`c1` hold Alice's Bell-measurement outcomes, `c2`
/// holds the final measurement of Bob's (teleported) qubit. Marginalized
/// over `c0`/`c1`, the distribution of `c2` equals that of measuring
/// `prep|0>` directly.
///
/// # Panics
///
/// Panics when `prep` is not a single-qubit gate.
pub fn teleport(prep: Gate) -> Circuit {
    assert_eq!(
        prep.num_qubits(),
        1,
        "preparation gate must be single-qubit"
    );
    let mut qc = Circuit::new(3, 3);
    // State to teleport.
    qc.push_gate(prep, &[0]);
    qc.barrier_all();
    // Shared Bell pair between qubits 1 (Alice) and 2 (Bob).
    qc.h(1).cx(1, 2);
    qc.barrier_all();
    // Alice's Bell measurement.
    qc.cx(0, 1).h(0);
    qc.measure(0, 0).measure(1, 1);
    // Bob's corrections.
    qc.cond_gate(Gate::X, &[2], 1, true);
    qc.cond_gate(Gate::Z, &[2], 0, true);
    qc.measure(2, 2);
    qc
}

/// Teleports |1> — the deterministic grading workload (c2 is always 1).
pub fn teleport_one() -> Circuit {
    teleport(Gate::X)
}

/// Teleports |+> — c2 is uniform, but c0/c1 remain uniform too.
pub fn teleport_plus() -> Circuit {
    teleport(Gate::H)
}

/// Probability that classical bit 2 reads 1, marginalizing over c0/c1.
pub fn prob_c2_one(counts: &qsim::dist::Counts) -> f64 {
    let mut ones = 0u64;
    for (word, count) in counts.iter() {
        if word.bit(2) {
            ones += count;
        }
    }
    ones as f64 / counts.shots().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn teleporting_one_always_delivers_one() {
        let counts = Executor::ideal()
            .try_run(&teleport_one(), 2000, 17)
            .expect("teleport circuits are dense-simulable");
        assert!((prob_c2_one(&counts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn teleporting_zero_always_delivers_zero() {
        let counts = Executor::ideal()
            .try_run(&teleport(Gate::Id), 2000, 18)
            .expect("teleport circuits are dense-simulable");
        assert!(prob_c2_one(&counts) < 1e-12);
    }

    #[test]
    fn teleporting_plus_is_unbiased() {
        let counts = Executor::ideal()
            .try_run(&teleport_plus(), 20_000, 19)
            .expect("teleport circuits are dense-simulable");
        let p = prob_c2_one(&counts);
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn teleporting_ry_preserves_amplitude() {
        let theta = 1.234_f64;
        let counts = Executor::ideal()
            .try_run(&teleport(Gate::RY(theta)), 40_000, 20)
            .expect("teleport circuits are dense-simulable");
        let p = prob_c2_one(&counts);
        let expected = (theta / 2.0).sin().powi(2);
        assert!((p - expected).abs() < 0.02, "p = {p}, expected {expected}");
    }

    #[test]
    fn bell_measurement_outcomes_are_uniform() {
        let counts = Executor::ideal()
            .try_run(&teleport_one(), 20_000, 21)
            .expect("teleport circuits are dense-simulable");
        for c0c1 in 0..4u64 {
            let mass: u64 = counts
                .iter()
                .filter(|(w, _)| w.low64() & 0b11 == c0c1)
                .map(|(_, c)| c)
                .sum();
            let p = mass as f64 / counts.shots() as f64;
            assert!((p - 0.25).abs() < 0.02, "c1c0={c0c1:02b}: p = {p}");
        }
    }
}
