//! Basic circuits: entangled-pair preparation, GHZ states, superposition,
//! Bernstein–Vazirani and superdense coding.
//!
//! These back the "Basic" band of the evaluation suite (47% of tasks in the
//! paper's split): circuit construction, simple entanglement and running on
//! a device.

use qcir::circuit::Circuit;

/// A measured Bell pair: `H(0); CX(0,1); measure`.
pub fn bell_pair() -> Circuit {
    let mut qc = Circuit::new(2, 2);
    qc.h(0).cx(0, 1).measure_all();
    qc
}

/// An `n`-qubit GHZ state, measured.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 1, "ghz needs at least one qubit");
    let mut qc = Circuit::new(n, n);
    qc.h(0);
    for q in 0..n - 1 {
        qc.cx(q, q + 1);
    }
    qc.measure_all();
    qc
}

/// Uniform superposition over `n` qubits, measured: every outcome equally
/// likely.
pub fn uniform_superposition(n: usize) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    qc.measure_all();
    qc
}

/// Prepares the computational basis state `value` on `n` qubits and
/// measures (tests device X calibration / basic encoding).
///
/// # Panics
///
/// Panics when `value >= 2^n`.
pub fn basis_state(n: usize, value: u64) -> Circuit {
    assert!(value < (1 << n), "value out of range");
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        if (value >> q) & 1 == 1 {
            qc.x(q);
        }
    }
    qc.measure_all();
    qc
}

/// Bernstein–Vazirani: recovers the secret mask `s` in one query.
///
/// Uses the phase-oracle form (CZ-free): the oracle is `CX(i, anc)` for
/// every set bit of `s`, with the ancilla in |->. The top `n` bits measure
/// to exactly `s`.
///
/// # Panics
///
/// Panics when `secret >= 2^n`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(secret < (1 << n), "secret out of range");
    let anc = n;
    let mut qc = Circuit::new(n + 1, n);
    // Ancilla in |->.
    qc.x(anc).h(anc);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier_all();
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            qc.cx(q, anc);
        }
    }
    qc.barrier_all();
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    qc
}

/// Superdense coding of the two-bit message `(b1, b0)`.
///
/// Alice and Bob share a Bell pair; Alice encodes two classical bits with
/// one of {I, X, Z, XZ} on her half; Bob decodes. Measurement yields
/// `b1 b0` deterministically.
pub fn superdense(b1: bool, b0: bool) -> Circuit {
    let mut qc = Circuit::new(2, 2);
    // Shared entanglement.
    qc.h(0).cx(0, 1);
    qc.barrier_all();
    // Alice encodes on qubit 0.
    if b0 {
        qc.x(0);
    }
    if b1 {
        qc.z(0);
    }
    qc.barrier_all();
    // Bob decodes.
    qc.cx(0, 1).h(0);
    qc.measure(0, 1); // phase bit
    qc.measure(1, 0); // parity bit
    qc
}

/// A parity (even-weight repetition) check: entangles `n` data qubits with
/// one ancilla computing their parity.
pub fn parity_check(n: usize) -> Circuit {
    let anc = n;
    let mut qc = Circuit::new(n + 1, 1);
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.cx(q, anc);
    }
    qc.measure(anc, 0);
    qc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn bell_pair_only_correlated_outcomes() {
        let d = Executor::ideal_distribution(&bell_pair(), 0);
        assert!((d.get(0b00) - 0.5).abs() < 1e-10);
        assert!((d.get(0b11) - 0.5).abs() < 1e-10);
        assert_eq!(d.get(0b01), 0.0);
    }

    #[test]
    fn ghz_extremes_only() {
        let d = Executor::ideal_distribution(&ghz(4), 0);
        assert!((d.get(0b0000) - 0.5).abs() < 1e-10);
        assert!((d.get(0b1111) - 0.5).abs() < 1e-10);
        assert!((d.total_mass() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn uniform_superposition_is_flat() {
        let d = Executor::ideal_distribution(&uniform_superposition(3), 0);
        for word in 0..8u64 {
            assert!((d.get(word) - 0.125).abs() < 1e-10, "word {word}");
        }
    }

    #[test]
    fn basis_state_is_deterministic() {
        let d = Executor::ideal_distribution(&basis_state(4, 0b1010), 0);
        assert!((d.get(0b1010) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for secret in [0b000u64, 0b101, 0b111, 0b010] {
            let d = Executor::ideal_distribution(&bernstein_vazirani(3, secret), 0);
            assert!(
                (d.get(secret) - 1.0).abs() < 1e-9,
                "secret {secret:03b}: prob {}",
                d.get(secret)
            );
        }
    }

    #[test]
    fn superdense_transmits_both_bits() {
        for (b1, b0) in [(false, false), (false, true), (true, false), (true, true)] {
            let d = Executor::ideal_distribution(&superdense(b1, b0), 0);
            let word = ((b1 as u64) << 1) | b0 as u64;
            assert!(
                (d.get(word) - 1.0).abs() < 1e-9,
                "message ({b1},{b0}): dist {:?}",
                d.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "secret out of range")]
    fn bv_rejects_oversized_secret() {
        bernstein_vazirani(2, 0b100);
    }

    #[test]
    fn parity_check_balanced() {
        let d = Executor::ideal_distribution(&parity_check(3), 0);
        assert!((d.get(0) - 0.5).abs() < 1e-9);
        assert!((d.get(1) - 0.5).abs() < 1e-9);
    }
}
