//! Discrete-time coined quantum walk on a 4-node cycle.
//!
//! One coin qubit plus two position qubits. Each step applies a Hadamard
//! coin flip, then a conditional increment (coin = 1) or decrement
//! (coin = 0) of the position modulo 4. The characteristic asymmetric
//! spreading distinguishes it from a classical random walk.

use qcir::circuit::Circuit;

/// Coin qubit index.
pub const COIN: usize = 2;

/// Builds a `steps`-step walk starting at position 0 with coin |0>,
/// measuring the two position qubits into clbits 0..2.
pub fn quantum_walk(steps: usize) -> Circuit {
    let mut qc = Circuit::new(3, 2);
    for _ in 0..steps {
        step(&mut qc);
    }
    qc.measure(0, 0).measure(1, 1);
    qc
}

/// Appends one walk step: coin flip + controlled shift.
pub fn step(qc: &mut Circuit) {
    qc.h(COIN);
    // Increment position when coin = 1: (p1 p0) += 1 mod 4.
    qc.ccx(COIN, 0, 1);
    qc.cx(COIN, 0);
    // Decrement when coin = 0: conjugate by X on the coin.
    qc.x(COIN);
    qc.cx(COIN, 0);
    qc.ccx(COIN, 0, 1);
    qc.x(COIN);
    qc.barrier_all();
}

/// The classical-walk position distribution after `steps` steps on the
/// 4-cycle starting at 0 (for comparison plots).
pub fn classical_walk_distribution(steps: usize) -> [f64; 4] {
    let mut dist = [0.0f64; 4];
    dist[0] = 1.0;
    for _ in 0..steps {
        let mut next = [0.0f64; 4];
        for (pos, p) in dist.iter().enumerate() {
            next[(pos + 1) % 4] += 0.5 * p;
            next[(pos + 3) % 4] += 0.5 * p;
        }
        dist = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn zero_steps_stays_home() {
        let d = Executor::ideal_distribution(&quantum_walk(0), 0);
        assert!((d.get(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_step_splits_to_neighbours() {
        let d = Executor::ideal_distribution(&quantum_walk(1), 0);
        // Position 1 (coin=1 branch) and position 3 (coin=0 branch).
        assert!((d.get(1) - 0.5).abs() < 1e-9, "p1 = {}", d.get(1));
        assert!((d.get(3) - 0.5).abs() < 1e-9, "p3 = {}", d.get(3));
        assert!(d.get(0) < 1e-9);
        assert!(d.get(2) < 1e-9);
    }

    #[test]
    fn walk_spreads_differently_from_classical() {
        // After 2 steps the interfering paths still carry orthogonal coin
        // states, so the walk looks classical; by step 3 interference makes
        // the distributions diverge.
        let quantum = Executor::ideal_distribution(&quantum_walk(3), 0);
        let classical = classical_walk_distribution(3);
        let mut max_diff = 0.0f64;
        for pos in 0..4u64 {
            max_diff = max_diff.max((quantum.get(pos) - classical[pos as usize]).abs());
        }
        assert!(
            max_diff > 0.05,
            "quantum and classical too similar: {max_diff}"
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        for steps in 0..6 {
            let d = Executor::ideal_distribution(&quantum_walk(steps), 0);
            assert!((d.total_mass() - 1.0).abs() < 1e-9, "steps {steps}");
        }
    }

    #[test]
    fn classical_distribution_is_stochastic() {
        for steps in 0..8 {
            let d = classical_walk_distribution(steps);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }
}
