//! Deutsch–Jozsa: decide whether an n-bit oracle is constant or balanced in
//! one query. The constant-oracle instance is the Figure 4 workload of the
//! reproduced paper (expected outcome |000>).

use qcir::circuit::Circuit;

/// The oracle family for Deutsch–Jozsa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjOracle {
    /// f(x) = 0 for all x.
    ConstantZero,
    /// f(x) = 1 for all x.
    ConstantOne,
    /// f(x) = parity of (x AND mask) — balanced when `mask != 0`.
    BalancedMask(u64),
}

impl DjOracle {
    /// `true` when the oracle is constant.
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            DjOracle::ConstantZero | DjOracle::ConstantOne | DjOracle::BalancedMask(0)
        )
    }
}

/// Builds the Deutsch–Jozsa circuit over `n` input qubits plus one ancilla.
///
/// Measuring all input qubits yields |0...0> iff the oracle is constant.
///
/// # Panics
///
/// Panics when a balanced mask has bits outside the input register.
pub fn deutsch_jozsa(n: usize, oracle: DjOracle) -> Circuit {
    if let DjOracle::BalancedMask(mask) = oracle {
        assert!(mask < (1 << n), "balanced mask out of range");
    }
    let anc = n;
    let mut qc = Circuit::new(n + 1, n);
    qc.x(anc).h(anc);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier_all();
    match oracle {
        DjOracle::ConstantZero => {
            // Identity oracle: nothing to apply.
        }
        DjOracle::ConstantOne => {
            qc.x(anc);
        }
        DjOracle::BalancedMask(mask) => {
            for q in 0..n {
                if (mask >> q) & 1 == 1 {
                    qc.cx(q, anc);
                }
            }
        }
    }
    qc.barrier_all();
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    qc
}

/// Convenience: the paper's Figure 4 workload — 3 input qubits, constant
/// oracle; expected result |000>.
pub fn figure4_circuit() -> Circuit {
    deutsch_jozsa(3, DjOracle::ConstantZero)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn constant_zero_yields_all_zeros() {
        let d = Executor::ideal_distribution(&deutsch_jozsa(3, DjOracle::ConstantZero), 0);
        assert!((d.get(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_one_yields_all_zeros() {
        let d = Executor::ideal_distribution(&deutsch_jozsa(3, DjOracle::ConstantOne), 0);
        assert!((d.get(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_never_yields_all_zeros() {
        for mask in [0b001u64, 0b011, 0b111, 0b100] {
            let d =
                Executor::ideal_distribution(&deutsch_jozsa(3, DjOracle::BalancedMask(mask)), 0);
            assert!(d.get(0) < 1e-9, "mask {mask:03b}: p(000) = {}", d.get(0));
            // In the parity-oracle family the result is exactly the mask.
            assert!((d.get(mask) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn oracle_classification() {
        assert!(DjOracle::ConstantZero.is_constant());
        assert!(DjOracle::ConstantOne.is_constant());
        assert!(!DjOracle::BalancedMask(0b101).is_constant());
        assert!(DjOracle::BalancedMask(0).is_constant());
    }

    #[test]
    fn figure4_is_three_qubit_constant() {
        let qc = figure4_circuit();
        assert_eq!(qc.num_qubits(), 4); // 3 inputs + ancilla
        assert_eq!(qc.num_clbits(), 3);
        let d = Executor::ideal_distribution(&qc, 0);
        assert!((d.get(0b000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn works_across_sizes() {
        for n in 1..=5 {
            let d = Executor::ideal_distribution(&deutsch_jozsa(n, DjOracle::ConstantOne), 0);
            assert!((d.get(0) - 1.0).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "mask out of range")]
    fn rejects_oversized_mask() {
        deutsch_jozsa(2, DjOracle::BalancedMask(0b100));
    }
}
