//! Simon's problem: find the hidden XOR mask `s` with O(n) quantum queries.

use qcir::circuit::Circuit;

/// Builds one Simon-sampling circuit for an `n`-bit secret `s`.
///
/// Input register: qubits `0..n`; output register: `n..2n`. The standard
/// two-to-one oracle copies `x` into the output register, then — for
/// non-zero `s` — erases the bit at the lowest set position of `s`,
/// XOR-ing `s` in when that bit was 1 (giving `f(x) = f(x xor s)`).
/// Measuring the input register after the final Hadamards yields `y` with
/// `y . s = 0 (mod 2)` uniformly.
///
/// # Panics
///
/// Panics when `secret >= 2^n`.
pub fn simon(n: usize, secret: u64) -> Circuit {
    assert!(secret < (1 << n), "secret out of range");
    let mut qc = Circuit::new(2 * n, n);
    for q in 0..n {
        qc.h(q);
    }
    qc.barrier_all();
    // Copy x into the output register.
    for q in 0..n {
        qc.cx(q, n + q);
    }
    if secret != 0 {
        let pivot = secret.trailing_zeros() as usize;
        // XOR s into the output conditioned on x_pivot, which collapses the
        // two preimages {x, x^s} onto the same image.
        for q in 0..n {
            if (secret >> q) & 1 == 1 {
                qc.cx(pivot, n + q);
            }
        }
    }
    qc.barrier_all();
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.measure(q, q);
    }
    qc
}

/// Parity of `a & b` (the dot product mod 2 Simon's constraint uses).
pub fn dot_mod2(a: u64, b: u64) -> u64 {
    (a & b).count_ones() as u64 % 2
}

/// Solves for the secret from a set of measured constraint words by
/// brute-force over all non-zero candidates (fine for suite-sized `n`).
///
/// Returns `None` when more than one non-zero candidate is consistent.
pub fn solve_secret(n: usize, samples: &[u64]) -> Option<u64> {
    let mut candidates: Vec<u64> = (1..(1u64 << n))
        .filter(|&s| samples.iter().all(|&y| dot_mod2(y, s) == 0))
        .collect();
    if candidates.len() == 1 {
        candidates.pop()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn all_outcomes_orthogonal_to_secret() {
        for secret in [0b11u64, 0b10, 0b01] {
            let d = Executor::ideal_distribution(&simon(2, secret), 0);
            for (word, p) in d.iter() {
                if p > 1e-9 {
                    assert_eq!(
                        dot_mod2(word.low64(), secret),
                        0,
                        "secret {secret:02b}, word {word}"
                    );
                }
            }
        }
    }

    #[test]
    fn three_bit_secret_constraints() {
        let secret = 0b101u64;
        let d = Executor::ideal_distribution(&simon(3, secret), 0);
        let valid: Vec<u64> = d
            .iter()
            .filter(|(_, p)| *p > 1e-9)
            .map(|(w, _)| w.low64())
            .collect();
        // Exactly half the words satisfy y.s = 0.
        assert_eq!(valid.len(), 4);
        for w in valid {
            assert_eq!(dot_mod2(w, secret), 0);
        }
    }

    #[test]
    fn zero_secret_gives_uniform_outcomes() {
        let d = Executor::ideal_distribution(&simon(2, 0), 0);
        for word in 0..4u64 {
            assert!((d.get(word) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn solver_recovers_secret_from_support() {
        let secret = 0b110u64;
        let d = Executor::ideal_distribution(&simon(3, secret), 0);
        let samples: Vec<u64> = d
            .iter()
            .filter(|(_, p)| *p > 1e-9)
            .map(|(w, _)| w.low64())
            .collect();
        assert_eq!(solve_secret(3, &samples), Some(secret));
    }

    #[test]
    fn solver_reports_ambiguity() {
        // A single zero sample constrains nothing.
        assert_eq!(solve_secret(3, &[0]), None);
    }
}
