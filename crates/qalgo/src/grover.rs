//! Grover search over 2- and 3-qubit registers.

use qcir::circuit::Circuit;

/// Number of Grover iterations that maximizes success probability for one
/// marked state among `2^n`.
pub fn optimal_iterations(n: usize) -> usize {
    let amp = 1.0 / ((1 << n) as f64).sqrt();
    let theta = amp.asin();
    ((std::f64::consts::FRAC_PI_2 / (2.0 * theta) - 0.5).round() as usize).max(1)
}

/// Builds a Grover circuit marking the single basis state `marked`.
///
/// `iterations` defaults to [`optimal_iterations`]. Only `n ∈ {2, 3}` is
/// supported: those are the sizes the evaluation suite uses, and they avoid
/// ancilla-based multi-controlled decompositions.
///
/// # Panics
///
/// Panics when `n` is not 2 or 3, or `marked >= 2^n`.
pub fn grover(n: usize, marked: u64, iterations: Option<usize>) -> Circuit {
    assert!(n == 2 || n == 3, "grover supports 2 or 3 qubits");
    assert!(marked < (1 << n), "marked state out of range");
    let iters = iterations.unwrap_or_else(|| optimal_iterations(n));
    let mut qc = Circuit::new(n, n);
    for q in 0..n {
        qc.h(q);
    }
    for _ in 0..iters {
        qc.barrier_all();
        oracle(&mut qc, n, marked);
        diffuser(&mut qc, n);
    }
    qc.measure_all();
    qc
}

/// Phase oracle: flips the sign of |marked>.
fn oracle(qc: &mut Circuit, n: usize, marked: u64) {
    for q in 0..n {
        if (marked >> q) & 1 == 0 {
            qc.x(q);
        }
    }
    mcz(qc, n);
    for q in 0..n {
        if (marked >> q) & 1 == 0 {
            qc.x(q);
        }
    }
}

/// The Grover diffuser (inversion about the mean).
fn diffuser(qc: &mut Circuit, n: usize) {
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n {
        qc.x(q);
    }
    mcz(qc, n);
    for q in 0..n {
        qc.x(q);
    }
    for q in 0..n {
        qc.h(q);
    }
}

/// Multi-controlled Z over all `n` qubits (n = 2: CZ; n = 3: CCZ via H·CCX·H).
fn mcz(qc: &mut Circuit, n: usize) {
    match n {
        2 => {
            qc.cz(0, 1);
        }
        3 => {
            qc.h(2);
            qc.ccx(0, 1, 2);
            qc.h(2);
        }
        _ => unreachable!("caller validated n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::exec::Executor;

    #[test]
    fn two_qubit_grover_is_exact() {
        // One iteration on 2 qubits finds the marked state with certainty.
        for marked in 0..4u64 {
            let d = Executor::ideal_distribution(&grover(2, marked, None), 0);
            assert!(
                (d.get(marked) - 1.0).abs() < 1e-9,
                "marked {marked}: p = {}",
                d.get(marked)
            );
        }
    }

    #[test]
    fn three_qubit_grover_amplifies() {
        for marked in [0b000u64, 0b101, 0b111] {
            let d = Executor::ideal_distribution(&grover(3, marked, None), 0);
            let p = d.get(marked);
            // Optimal 2 iterations give ~0.945 success on 3 qubits.
            assert!(p > 0.9, "marked {marked:03b}: p = {p}");
        }
    }

    #[test]
    fn optimal_iteration_counts() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(3), 2);
    }

    #[test]
    fn too_few_iterations_underperform() {
        let one = Executor::ideal_distribution(&grover(3, 0b010, Some(1)), 0).get(0b010);
        let two = Executor::ideal_distribution(&grover(3, 0b010, Some(2)), 0).get(0b010);
        assert!(two > one, "two iterations ({two}) must beat one ({one})");
    }

    #[test]
    #[should_panic(expected = "supports 2 or 3")]
    fn rejects_large_registers() {
        grover(4, 0, None);
    }
}
