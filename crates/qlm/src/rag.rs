//! Retrieval-augmented generation over a simulated documentation corpus.
//!
//! The corpus mirrors the paper's two RAG datasets (§IV-C): (1) library
//! API documentation — a mixture of *current* (2.1) and *stale* (1.x/2.0)
//! pages, because "the documentation available for Qiskit is not up to
//! date" (§V-E); and (2) algorithm guides explaining the structure of
//! common quantum algorithms.
//!
//! Retrieval is real TF-IDF cosine ranking, and the effect on generation
//! is mediated entirely by *what was retrieved*: current API chunks
//! suppress the import/deprecation channels; a matching algorithm guide
//! nudges structural knowledge.

use qcir::api::{ApiRegistry, Version};
use std::collections::BTreeMap;

/// What kind of documentation a chunk is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// API reference page for a library version.
    Api {
        /// The version the page documents.
        version: Version,
    },
    /// An algorithm tutorial/guide.
    Guide,
}

/// One retrievable chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct Doc {
    /// Stable identifier.
    pub id: String,
    /// Chunk text.
    pub text: String,
    /// Kind and provenance.
    pub kind: DocKind,
    /// Topic key for guides (matches [`crate::spec::TaskSpec::topic`]).
    pub topic: Option<&'static str>,
}

/// Corpus construction options.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Fraction of API pages documenting *old* versions (the staleness the
    /// paper blames for RAG's weak results). 0.0 = all current.
    pub staleness: f64,
    /// Whether algorithm guides are included (dataset 2).
    pub include_guides: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            staleness: 0.5,
            include_guides: true,
        }
    }
}

/// A TF-IDF vector store over the documentation corpus.
#[derive(Debug, Clone)]
pub struct VectorStore {
    docs: Vec<Doc>,
    /// term -> document frequency
    df: BTreeMap<String, usize>,
    /// per-doc term frequencies
    tf: Vec<BTreeMap<String, f64>>,
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_string)
        .collect()
}

impl VectorStore {
    /// Builds the standard corpus with the given configuration.
    pub fn build(config: &CorpusConfig) -> Self {
        let registry = ApiRegistry::standard();
        let mut docs = Vec::new();
        // API pages: one chunk per symbol per documented version. The
        // staleness knob controls how many old-version pages survive in
        // the corpus (weighted duplication of stale pages).
        let current = qcir::api::CURRENT;
        for &version in &qcir::api::RELEASES {
            let is_current = version == current;
            if is_current && config.staleness >= 1.0 {
                continue;
            }
            for (idx, symbol) in registry.symbols_at(version).into_iter().enumerate() {
                // Old-version pages survive in proportion to the staleness
                // knob (deterministic subsample so builds are reproducible).
                if !is_current {
                    let keep = ((idx * 7919 + 13) % 100) as f64 / 100.0 < config.staleness;
                    if !keep {
                        continue;
                    }
                }
                let text = format!(
                    "qasmlite {version} api reference gate {symbol} usage syntax example circuit import qasmlite {version}"
                );
                docs.push(Doc {
                    id: format!("api-{version}-{symbol}"),
                    text,
                    kind: DocKind::Api { version },
                    topic: None,
                });
            }
        }
        if config.include_guides {
            for (topic, text) in guide_pages() {
                docs.push(Doc {
                    id: format!("guide-{topic}"),
                    text: text.to_string(),
                    kind: DocKind::Guide,
                    topic: Some(topic),
                });
            }
        }
        Self::from_docs(docs)
    }

    /// Builds a store from explicit documents (used by ablations).
    pub fn from_docs(docs: Vec<Doc>) -> Self {
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        let mut tf: Vec<BTreeMap<String, f64>> = Vec::with_capacity(docs.len());
        for doc in &docs {
            let tokens = tokenize(&doc.text);
            let mut counts: BTreeMap<String, f64> = BTreeMap::new();
            for t in &tokens {
                *counts.entry(t.clone()).or_insert(0.0) += 1.0;
            }
            let norm = tokens.len().max(1) as f64;
            for v in counts.values_mut() {
                *v /= norm;
            }
            for term in counts.keys() {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
            tf.push(counts);
        }
        VectorStore { docs, df, tf }
    }

    /// Number of chunks in the store.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    fn idf(&self, term: &str) -> f64 {
        let n = self.docs.len() as f64;
        let df = self.df.get(term).copied().unwrap_or(0) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    /// TF-IDF cosine retrieval of the top-`k` chunks for a query.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<&Doc> {
        let q_tokens = tokenize(query);
        let mut q_tf: BTreeMap<String, f64> = BTreeMap::new();
        for t in &q_tokens {
            *q_tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
        let mut scored: Vec<(f64, usize)> = self
            .tf
            .iter()
            .enumerate()
            .map(|(i, doc_tf)| {
                let mut dot = 0.0;
                let mut d_norm = 0.0;
                for (term, &w) in doc_tf {
                    let tfidf = w * self.idf(term);
                    d_norm += tfidf * tfidf;
                    if let Some(&qw) = q_tf.get(term) {
                        dot += tfidf * qw * self.idf(term);
                    }
                }
                let score = if d_norm > 0.0 {
                    dot / d_norm.sqrt()
                } else {
                    0.0
                };
                (score, i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .filter(|(s, _)| *s > 0.0)
            .map(|(_, i)| &self.docs[i])
            .collect()
    }
}

/// What retrieval contributed to a generation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalEffect {
    /// Fraction of retrieved API chunks documenting the current version.
    pub current_api_fraction: f64,
    /// Whether a guide matching the task topic was retrieved.
    pub matched_guide: bool,
    /// Retrieved chunk ids (for transcripts).
    pub chunk_ids: Vec<String>,
}

impl VectorStore {
    /// Fraction of API pages in the corpus documenting the current
    /// release. Retrieval over the API dataset returns chunks in this
    /// proportion (queries like "how do I apply cx" cannot distinguish
    /// version freshness, which is the paper's stale-docs problem).
    pub fn current_api_share(&self) -> f64 {
        let api: Vec<&Doc> = self
            .docs
            .iter()
            .filter(|d| matches!(d.kind, DocKind::Api { .. }))
            .collect();
        if api.is_empty() {
            return 0.0;
        }
        let current = api
            .iter()
            .filter(|d| matches!(d.kind, DocKind::Api { version } if version == qcir::api::CURRENT))
            .count();
        current as f64 / api.len() as f64
    }
}

/// Runs retrieval for a task prompt and summarizes its effect.
///
/// Two retrievals, matching the paper's two RAG datasets: the API dataset
/// contributes freshness (its corpus share of current pages — version
/// freshness is invisible to content queries), and the guide dataset is
/// queried with the actual prompt via TF-IDF.
pub fn retrieval_effect(
    store: &VectorStore,
    prompt: &str,
    topic: &str,
    k: usize,
) -> RetrievalEffect {
    let query = format!("{prompt} guide algorithm structure {topic}");
    let retrieved = store.retrieve(&query, k);
    let matched_guide = retrieved
        .iter()
        .any(|d| d.kind == DocKind::Guide && d.topic == Some(topic));
    RetrievalEffect {
        current_api_fraction: store.current_api_share(),
        matched_guide,
        chunk_ids: retrieved.iter().map(|d| d.id.clone()).collect(),
    }
}

/// The algorithm-guide pages (dataset 2 of §IV-C).
fn guide_pages() -> Vec<(&'static str, &'static str)> {
    vec![
        ("bell", "bell pair entanglement guide hadamard cx measure two qubits correlated outcomes"),
        ("ghz", "ghz state guide multi qubit entanglement hadamard chain of cx gates measure all"),
        ("superposition", "uniform superposition guide hadamard on every qubit equal probability sampling"),
        ("deutsch-jozsa", "deutsch jozsa algorithm guide oracle constant balanced ancilla minus state hadamard sandwich measure zero"),
        ("grover", "grover search algorithm guide amplitude amplification oracle phase flip diffuser iterations optimal sqrt"),
        ("qft", "quantum fourier transform guide controlled phase rotations swap qubits inverse qft"),
        ("phase-estimation", "quantum phase estimation guide counting qubits controlled unitary powers inverse fourier transform eigenphase"),
        ("teleportation", "quantum teleportation guide bell pair mid circuit measurement classical corrections conditional x z gates"),
        ("quantum-walk", "quantum walk guide coin qubit position register conditional increment decrement cycle interference"),
        ("shor", "shor order finding guide modular multiplication controlled swaps counting register inverse qft period"),
        ("simon", "simon algorithm guide hidden xor mask two to one oracle orthogonal constraints linear algebra"),
        ("annealing", "quantum annealing guide transverse field ising trotterized schedule adiabatic ground state zz coupling"),
        ("bernstein-vazirani", "bernstein vazirani guide secret mask phase kickback ancilla minus hadamard single query"),
        ("superdense", "superdense coding guide bell pair encode two classical bits pauli operations decode"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_with_expected_composition() {
        let store = VectorStore::build(&CorpusConfig::default());
        assert!(store.len() > 40, "corpus size {}", store.len());
        let all_current = VectorStore::build(&CorpusConfig {
            staleness: 0.0,
            include_guides: false,
        });
        // Only 2.1 pages survive.
        assert!(all_current.len() < store.len());
    }

    #[test]
    fn retrieval_finds_topic_guides() {
        let store = VectorStore::build(&CorpusConfig::default());
        let effect = retrieval_effect(
            &store,
            "Generate a quantum program using Grover's algorithm to find a marked state",
            "grover",
            8,
        );
        assert!(
            effect.matched_guide,
            "grover guide should be retrieved: {:?}",
            effect.chunk_ids
        );
    }

    #[test]
    fn stale_corpus_retrieves_old_api_pages() {
        let stale = VectorStore::build(&CorpusConfig {
            staleness: 1.0,
            include_guides: false,
        });
        let effect = retrieval_effect(&stale, "how do i apply a cx gate", "bell", 6);
        assert_eq!(effect.current_api_fraction, 0.0);
    }

    #[test]
    fn fresh_corpus_retrieves_current_api_pages() {
        let fresh = VectorStore::build(&CorpusConfig {
            staleness: 0.0,
            include_guides: false,
        });
        let effect = retrieval_effect(&fresh, "how do i apply a cx gate", "bell", 6);
        assert_eq!(effect.current_api_fraction, 1.0);
    }

    #[test]
    fn retrieve_ranks_relevant_first() {
        let store = VectorStore::build(&CorpusConfig::default());
        let top = store.retrieve("teleportation bell pair classical corrections", 3);
        assert!(!top.is_empty());
        assert!(
            top.iter().any(|d| d.topic == Some("teleportation")),
            "top-3: {:?}",
            top.iter().map(|d| &d.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_query_retrieves_nothing() {
        let store = VectorStore::build(&CorpusConfig::default());
        assert!(store.retrieve("", 5).is_empty());
    }

    #[test]
    fn tokenizer_drops_punctuation_and_short_tokens() {
        let tokens = tokenize("Apply CX(0, 1); a q[0]!");
        assert!(tokens.contains(&"cx".to_string()));
        assert!(!tokens.iter().any(|t| t == "a"));
    }
}
