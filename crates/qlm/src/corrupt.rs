//! Corruption channels: the failure modes of the simulated LLM.
//!
//! Each channel corresponds to an error class the paper observes in
//! LLM-generated Qiskit code. Channels are sampled independently per
//! generation; when a channel fires, a concrete source-level operator
//! mutates the emitted program so that the *checker and simulator* — not a
//! table — decide what the consequence is. (A deprecated alias under an
//! old import is merely a warning; the same alias under the current import
//! is a hard error. An off-by-one index may be out of range, or may be
//! silently wrong semantics. This matches reality.)

use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// The failure channels of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Channel {
    /// Forgets the import line entirely.
    ImportOmission,
    /// Pins an old library version (training data predates the release).
    StaleImport,
    /// Emits deprecated/removed API names (`cnot`, `toffoli`, `u1`, ...).
    DeprecatedApi,
    /// Drops a delimiter or mangles a token.
    SyntaxError,
    /// Off-by-one qubit index.
    IndexError,
    /// Forgets the measurement statements.
    MissingMeasure,
    /// Perturbs a gate angle.
    WrongParams,
    /// Stops generating early (context/length limit).
    Truncation,
    /// Emits a wrong algorithm altogether (structure unknown or bad plan).
    WrongStructure,
}

impl Channel {
    /// All channels except `WrongStructure` (which is governed by the
    /// knowledge base / CoT plan rather than a flat rate).
    pub const SURFACE: [Channel; 8] = [
        Channel::ImportOmission,
        Channel::StaleImport,
        Channel::DeprecatedApi,
        Channel::SyntaxError,
        Channel::IndexError,
        Channel::MissingMeasure,
        Channel::WrongParams,
        Channel::Truncation,
    ];

    /// `true` for channels whose consequence is (usually) a compile-time
    /// diagnostic rather than silently wrong behaviour.
    pub fn is_syntactic(&self) -> bool {
        matches!(
            self,
            Channel::ImportOmission
                | Channel::StaleImport
                | Channel::DeprecatedApi
                | Channel::SyntaxError
                | Channel::Truncation
        )
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Channel::ImportOmission => "import-omission",
            Channel::StaleImport => "stale-import",
            Channel::DeprecatedApi => "deprecated-api",
            Channel::SyntaxError => "syntax-error",
            Channel::IndexError => "index-error",
            Channel::MissingMeasure => "missing-measure",
            Channel::WrongParams => "wrong-params",
            Channel::Truncation => "truncation",
            Channel::WrongStructure => "wrong-structure",
        };
        write!(f, "{name}")
    }
}

/// Per-channel firing probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRates {
    rates: BTreeMap<Channel, f64>,
}

impl ChannelRates {
    /// The base (pre-trained only) model's rates. Import/deprecation
    /// channels dominate — the paper's central observation about stale
    /// training data.
    pub fn base() -> Self {
        let mut rates = BTreeMap::new();
        rates.insert(Channel::ImportOmission, 0.14);
        rates.insert(Channel::StaleImport, 0.32);
        rates.insert(Channel::DeprecatedApi, 0.36);
        rates.insert(Channel::SyntaxError, 0.30);
        rates.insert(Channel::IndexError, 0.14);
        rates.insert(Channel::MissingMeasure, 0.14);
        rates.insert(Channel::WrongParams, 0.16);
        rates.insert(Channel::Truncation, 0.18);
        ChannelRates { rates }
    }

    /// Fine-tuned model's rates: every surface channel improves, syntax
    /// most (the model saw well-formed recent code), deprecation least
    /// (even post-Feb-2024 scrapes contain stale API, §III-B).
    pub fn fine_tuned() -> Self {
        let mut r = Self::base();
        r.scale(Channel::ImportOmission, 0.55);
        r.scale(Channel::StaleImport, 0.75);
        r.scale(Channel::DeprecatedApi, 0.85);
        r.scale(Channel::SyntaxError, 0.48);
        r.scale(Channel::IndexError, 0.65);
        r.scale(Channel::MissingMeasure, 0.55);
        r.scale(Channel::WrongParams, 0.72);
        r.scale(Channel::Truncation, 0.62);
        r
    }

    /// The rate of a channel.
    pub fn rate(&self, channel: Channel) -> f64 {
        self.rates.get(&channel).copied().unwrap_or(0.0)
    }

    /// Multiplies a channel's rate by `factor` (clamped to [0, 1]).
    pub fn scale(&mut self, channel: Channel, factor: f64) {
        let r = self.rate(channel);
        self.rates.insert(channel, (r * factor).clamp(0.0, 1.0));
    }

    /// Sets a channel's rate to zero.
    pub fn suppress(&mut self, channel: Channel) {
        self.rates.insert(channel, 0.0);
    }

    /// Probability that *no* surface channel fires.
    pub fn clean_probability(&self) -> f64 {
        Channel::SURFACE
            .iter()
            .map(|c| 1.0 - self.rate(*c))
            .product()
    }

    /// Samples the set of channels that fire this generation.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<Channel> {
        Channel::SURFACE
            .iter()
            .copied()
            .filter(|c| {
                let r = self.rate(*c);
                r > 0.0 && rng.gen_bool(r)
            })
            .collect()
    }
}

/// Applies one channel's source-level mutation.
///
/// Operators are deliberately "realistic": they produce the same textual
/// artifacts an LLM with stale knowledge produces, and their consequences
/// are determined downstream by the checker/simulator.
pub fn apply(channel: Channel, source: &str, rng: &mut impl Rng) -> String {
    match channel {
        Channel::ImportOmission => source
            .lines()
            .filter(|l| !l.trim_start().starts_with("import"))
            .map(|l| format!("{l}\n"))
            .collect(),
        Channel::StaleImport => {
            let stale = ["1.0", "1.1", "2.0"][rng.gen_range(0..3)];
            source.replace("import qasmlite 2.1;", &format!("import qasmlite {stale};"))
        }
        Channel::DeprecatedApi => {
            // Substitute legacy aliases for modern names, token-wise.
            let mut out = source.to_string();
            for (new, old) in [("cx ", "cnot "), ("ccx ", "toffoli "), ("p(", "u1(")] {
                if rng.gen_bool(0.8) {
                    out = out.replace(&format!("\n{new}"), &format!("\n{old}"));
                    // Also at line starts after statements on same line form.
                    out = out.replace(&format!("; {new}"), &format!("; {old}"));
                }
            }
            out
        }
        Channel::SyntaxError => {
            let semis: Vec<usize> = source
                .char_indices()
                .filter_map(|(i, c)| (c == ';').then_some(i))
                .collect();
            if semis.is_empty() {
                return source.to_string();
            }
            let victim = semis[rng.gen_range(0..semis.len())];
            let mut out = String::with_capacity(source.len());
            out.push_str(&source[..victim]);
            out.push_str(&source[victim + 1..]);
            out
        }
        Channel::IndexError => {
            // Bump the index in one random `q[i]` occurrence.
            let mut occurrences = Vec::new();
            let bytes = source.as_bytes();
            let mut i = 0;
            while let Some(pos) = source[i..].find("q[") {
                let start = i + pos + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end > start {
                    occurrences.push((start, end));
                }
                i = start;
            }
            // Skip the register declaration (first occurrence is `qreg q[n]`
            // which we must keep intact — index errors hit *usages*).
            if occurrences.len() <= 1 {
                return source.to_string();
            }
            let (start, end) = occurrences[rng.gen_range(1..occurrences.len())];
            let old: usize = source[start..end].parse().unwrap_or(0);
            format!("{}{}{}", &source[..start], old + 1, &source[end..])
        }
        Channel::MissingMeasure => source
            .lines()
            .filter(|l| !l.trim_start().starts_with("measure"))
            .map(|l| format!("{l}\n"))
            .collect(),
        Channel::WrongParams => {
            // Find a floating-point literal inside parentheses and scale it.
            let Some(open) = source.find('(') else {
                return source.to_string();
            };
            let Some(close_rel) = source[open..].find(')') else {
                return source.to_string();
            };
            let close = open + close_rel;
            let inner = &source[open + 1..close];
            if let Ok(v) = inner.trim().parse::<f64>() {
                let factor = [2.0, 0.5, -1.0][rng.gen_range(0..3)];
                return format!(
                    "{}({}){}",
                    &source[..open],
                    v * factor,
                    &source[close + 1..]
                );
            }
            source.to_string()
        }
        Channel::Truncation => {
            let lines: Vec<&str> = source.lines().collect();
            if lines.len() <= 4 {
                return source.to_string();
            }
            let keep = rng.gen_range(lines.len() / 2..lines.len() - 1);
            lines[..keep].iter().map(|l| format!("{l}\n")).collect()
        }
        Channel::WrongStructure => {
            // Handled by the model via `template::confabulated_source`.
            source.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SAMPLE: &str = "import qasmlite 2.1;\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0], q[1];\nrz(0.5) q[2];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\nmeasure q[2] -> c[2];\n";

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn import_omission_strips_imports() {
        let out = apply(Channel::ImportOmission, SAMPLE, &mut rng());
        assert!(!out.contains("import"));
        assert!(out.contains("qreg"));
    }

    #[test]
    fn stale_import_changes_version() {
        let out = apply(Channel::StaleImport, SAMPLE, &mut rng());
        assert!(!out.contains("2.1"));
        assert!(out.contains("import qasmlite"));
    }

    #[test]
    fn deprecated_api_swaps_aliases() {
        let mut any = false;
        let mut r = rng();
        for _ in 0..20 {
            let out = apply(Channel::DeprecatedApi, SAMPLE, &mut r);
            if out.contains("cnot") {
                any = true;
                assert!(!out.contains("\ncx "));
            }
        }
        assert!(any, "cnot substitution should fire at 80% per alias");
    }

    #[test]
    fn syntax_error_breaks_parsing() {
        let out = apply(Channel::SyntaxError, SAMPLE, &mut rng());
        assert!(qcir::dsl::parse(&out).is_err());
    }

    #[test]
    fn index_error_changes_a_usage_not_the_declaration() {
        let out = apply(Channel::IndexError, SAMPLE, &mut rng());
        assert!(out.contains("qreg q[3]"), "declaration preserved: {out}");
        assert_ne!(out, SAMPLE);
    }

    #[test]
    fn missing_measure_strips_measures() {
        let out = apply(Channel::MissingMeasure, SAMPLE, &mut rng());
        assert!(!out.contains("measure"));
    }

    #[test]
    fn wrong_params_perturbs_angle() {
        let out = apply(Channel::WrongParams, SAMPLE, &mut rng());
        assert!(!out.contains("rz(0.5)"), "angle should change: {out}");
        assert!(qcir::dsl::parse(&out).is_ok(), "still parses: {out}");
    }

    #[test]
    fn truncation_shortens() {
        let out = apply(Channel::Truncation, SAMPLE, &mut rng());
        assert!(out.lines().count() < SAMPLE.lines().count());
    }

    #[test]
    fn rates_scale_and_suppress() {
        let mut r = ChannelRates::base();
        let before = r.rate(Channel::SyntaxError);
        r.scale(Channel::SyntaxError, 0.5);
        assert!((r.rate(Channel::SyntaxError) - before * 0.5).abs() < 1e-12);
        r.suppress(Channel::SyntaxError);
        assert_eq!(r.rate(Channel::SyntaxError), 0.0);
    }

    #[test]
    fn fine_tuned_rates_are_uniformly_lower() {
        let base = ChannelRates::base();
        let tuned = ChannelRates::fine_tuned();
        for c in Channel::SURFACE {
            assert!(
                tuned.rate(c) < base.rate(c),
                "{c}: {} !< {}",
                tuned.rate(c),
                base.rate(c)
            );
        }
        assert!(tuned.clean_probability() > base.clean_probability());
    }

    #[test]
    fn sampling_respects_rates() {
        let mut r = ChannelRates::base();
        for c in Channel::SURFACE {
            r.suppress(c);
        }
        let mut rng = rng();
        assert!(r.sample(&mut rng).is_empty());
    }

    #[test]
    fn syntactic_classification() {
        assert!(Channel::DeprecatedApi.is_syntactic());
        assert!(Channel::Truncation.is_syntactic());
        assert!(!Channel::WrongParams.is_syntactic());
        assert!(!Channel::IndexError.is_syntactic());
    }
}
