//! Fine-tuning configuration and its effect on generation quality.
//!
//! Records the paper's training setup (§III-B, §V-A) as a provenance
//! artifact: 3M scraped tokens upsampled to 9M, FIM rate 0.1, LoRA, 1500
//! steps, batch 4, linear warm-up to 3e-4 then cosine decay. The
//! *mechanistic* effect in this reproduction is a set of multipliers on
//! the corruption-channel rates (see [`crate::corrupt`]) plus the
//! familiarity shift in [`crate::knowledge`].

/// Whether the generator behaves like the base or the fine-tuned model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingLevel {
    /// Pre-trained model only.
    Base,
    /// Fine-tuned on the scraped QasmLite (paper: Qiskit) corpus.
    FineTuned,
}

/// The paper's dataset and optimizer hyperparameters, kept for provenance
/// and for the ablation bench that sweeps the FIM rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetDescriptor {
    /// Raw scraped tokens after filtering.
    pub raw_tokens: u64,
    /// Tokens after upsampling official sources.
    pub upsampled_tokens: u64,
    /// Fill-in-the-middle transformation rate.
    pub fim_rate: f64,
    /// Training steps.
    pub steps: u32,
    /// Batch size.
    pub batch_size: u32,
    /// Peak learning rate.
    pub peak_lr: f64,
    /// Warm-up steps.
    pub warmup_steps: u32,
}

impl DatasetDescriptor {
    /// The configuration reported in the paper.
    pub fn paper_default() -> Self {
        DatasetDescriptor {
            raw_tokens: 3_000_000,
            upsampled_tokens: 9_000_000,
            fim_rate: 0.1,
            steps: 1500,
            batch_size: 4,
            peak_lr: 3e-4,
            warmup_steps: 100,
        }
    }

    /// A crude effectiveness score in [0, 1] for ablations: how much of
    /// the full fine-tuning benefit this dataset realizes. Peaks at the
    /// paper's FIM rate of 0.1 (their reported optimum) and grows
    /// logarithmically in token count.
    pub fn effectiveness(&self) -> f64 {
        // 10M tokens -> 1.0
        let token_factor = ((self.upsampled_tokens as f64).log10() / 7.0).clamp(0.0, 1.0);
        // Quadratic penalty away from the optimal FIM rate 0.1.
        let fim_penalty = ((self.fim_rate - 0.1) * 2.5).powi(2);
        (token_factor * (1.0 - fim_penalty)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_text() {
        let d = DatasetDescriptor::paper_default();
        assert_eq!(d.raw_tokens, 3_000_000);
        assert_eq!(d.upsampled_tokens, 9_000_000);
        assert!((d.fim_rate - 0.1).abs() < 1e-12);
        assert_eq!(d.steps, 1500);
        assert_eq!(d.batch_size, 4);
    }

    #[test]
    fn fim_rate_is_optimal_at_paper_value() {
        let base = DatasetDescriptor::paper_default();
        let mut high = base.clone();
        high.fim_rate = 0.5;
        let mut zero = base.clone();
        zero.fim_rate = 0.0;
        assert!(base.effectiveness() > high.effectiveness());
        assert!(base.effectiveness() > zero.effectiveness());
    }

    #[test]
    fn more_tokens_help() {
        let base = DatasetDescriptor::paper_default();
        let mut small = base.clone();
        small.upsampled_tokens = 100_000;
        assert!(base.effectiveness() > small.effectiveness());
    }
}
