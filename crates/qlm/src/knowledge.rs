//! The model's algorithmic knowledge base.
//!
//! Familiarity is the probability that the model knows an algorithm's
//! *structure* well enough to emit the right program shape. The paper's
//! premise (§III-B): the base model "would have no knowledge of" the
//! advanced algorithms, fine-tuning on scraped Qiskit repositories helps
//! mostly the common ones.

use crate::finetune::TrainingLevel;
use crate::spec::{Difficulty, TaskSpec};

/// Per-topic structural familiarity under a training level.
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgeBase {
    _private: (),
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    /// The standard knowledge base.
    pub fn new() -> Self {
        KnowledgeBase { _private: () }
    }

    /// Probability the model knows the task's algorithmic structure.
    pub fn familiarity(&self, spec: &TaskSpec, training: TrainingLevel) -> f64 {
        // Band baselines, then per-topic adjustments: ubiquitous circuits
        // (bell/ghz) are near-saturated even for the base model; topics
        // that are rare in public Qiskit code sit below their band.
        let band = match (spec.difficulty(), training) {
            (Difficulty::Basic, TrainingLevel::Base) => 0.78,
            (Difficulty::Basic, TrainingLevel::FineTuned) => 0.86,
            (Difficulty::Intermediate, TrainingLevel::Base) => 0.36,
            (Difficulty::Intermediate, TrainingLevel::FineTuned) => 0.46,
            (Difficulty::Advanced, TrainingLevel::Base) => 0.08,
            (Difficulty::Advanced, TrainingLevel::FineTuned) => 0.20,
        };
        let adjust: f64 = match spec.topic() {
            "bell" | "superposition" => 0.10,
            "ghz" | "basis-state" => 0.05,
            "grover" | "qft" => 0.06,
            "shor" => -0.08,
            "simon" => -0.06,
            "quantum-walk" => -0.03,
            "annealing" => -0.02,
            _ => 0.0,
        };
        (band + adjust).clamp(0.01, 0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qalgo::dj::DjOracle;

    #[test]
    fn fine_tuning_never_hurts_familiarity() {
        let kb = KnowledgeBase::new();
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Grover { n: 3, marked: 1 },
            TaskSpec::Shor,
            TaskSpec::Walk { steps: 2 },
        ];
        for spec in specs {
            let base = kb.familiarity(&spec, TrainingLevel::Base);
            let tuned = kb.familiarity(&spec, TrainingLevel::FineTuned);
            assert!(tuned > base, "{spec}: {tuned} vs {base}");
        }
    }

    #[test]
    fn advanced_topics_are_nearly_unknown_to_base() {
        let kb = KnowledgeBase::new();
        let walk = kb.familiarity(&TaskSpec::Walk { steps: 2 }, TrainingLevel::Base);
        assert!(
            walk < 0.15,
            "base model should not know quantum walks: {walk}"
        );
        let bell = kb.familiarity(&TaskSpec::BellPair, TrainingLevel::Base);
        assert!(bell > 0.8, "bell pairs are everywhere: {bell}");
    }

    #[test]
    fn difficulty_ordering_holds() {
        let kb = KnowledgeBase::new();
        let basic = kb.familiarity(&TaskSpec::Ghz { n: 3 }, TrainingLevel::FineTuned);
        let mid = kb.familiarity(
            &TaskSpec::DeutschJozsa {
                n: 3,
                oracle: DjOracle::ConstantZero,
            },
            TrainingLevel::FineTuned,
        );
        let adv = kb.familiarity(&TaskSpec::Qpe { t: 3, phi: 0.25 }, TrainingLevel::FineTuned);
        assert!(basic > mid && mid > adv, "{basic} > {mid} > {adv}");
    }

    #[test]
    fn familiarity_is_a_probability() {
        let kb = KnowledgeBase::new();
        for training in [TrainingLevel::Base, TrainingLevel::FineTuned] {
            for spec in [
                TaskSpec::BellPair,
                TaskSpec::Shor,
                TaskSpec::Annealing { n: 4 },
            ] {
                let f = kb.familiarity(&spec, training);
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
