//! Task specifications: what the user asks the framework to generate.
//!
//! A [`TaskSpec`] carries everything the pipeline needs: the natural-
//! language prompt a developer would type, the difficulty band (the
//! paper's basic/intermediate/advanced split), and the ground-truth
//! reference circuit the grader compares against.

use qalgo::dj::DjOracle;
use qcir::circuit::Circuit;
use std::fmt;

/// Difficulty bands from the paper's test-suite design (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Difficulty {
    /// Basic circuit generation and measurement (47% of the suite).
    Basic,
    /// Well-known algorithms: Grover, Shor, QFT... (24%).
    Intermediate,
    /// Teleportation, walks, annealing, QPE (29%).
    Advanced,
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Difficulty::Basic => write!(f, "basic"),
            Difficulty::Intermediate => write!(f, "intermediate"),
            Difficulty::Advanced => write!(f, "advanced"),
        }
    }
}

/// State preparations a teleportation task can request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TeleportPrep {
    /// Teleport |1>.
    One,
    /// Teleport |+>.
    Plus,
    /// Teleport `RY(theta)|0>`.
    Ry(f64),
}

/// A generation task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Prepare and measure a Bell pair.
    BellPair,
    /// Prepare and measure an `n`-qubit GHZ state.
    Ghz { n: usize },
    /// Uniform superposition over `n` qubits.
    Superposition { n: usize },
    /// Encode a computational basis state.
    BasisState { n: usize, value: u64 },
    /// Bernstein–Vazirani with the given secret.
    BernsteinVazirani { n: usize, secret: u64 },
    /// Superdense coding of two bits.
    Superdense { b1: bool, b0: bool },
    /// Parity check of `n` qubits onto an ancilla.
    ParityCheck { n: usize },
    /// Deutsch–Jozsa over `n` inputs.
    DeutschJozsa { n: usize, oracle: DjOracle },
    /// Grover search for a marked state.
    Grover { n: usize, marked: u64 },
    /// QFT applied to a basis state.
    QftBasis { n: usize, input: u64 },
    /// QFT followed by inverse QFT (identity check).
    QftRoundTrip { n: usize, input: u64 },
    /// Phase estimation of `P(2 pi phi)`.
    Qpe { t: usize, phi: f64 },
    /// Quantum teleportation.
    Teleport { prep: TeleportPrep },
    /// Coined quantum walk on the 4-cycle.
    Walk { steps: usize },
    /// Shor order finding for a=7 mod 15.
    Shor,
    /// Simon's algorithm with the given secret.
    Simon { n: usize, secret: u64 },
    /// Trotterized TFIM annealing.
    Annealing { n: usize },
}

impl TaskSpec {
    /// The difficulty band this task belongs to.
    pub fn difficulty(&self) -> Difficulty {
        use TaskSpec::*;
        match self {
            BellPair
            | Ghz { .. }
            | Superposition { .. }
            | BasisState { .. }
            | BernsteinVazirani { .. }
            | Superdense { .. }
            | ParityCheck { .. } => Difficulty::Basic,
            DeutschJozsa { .. }
            | Grover { .. }
            | QftBasis { .. }
            | QftRoundTrip { .. }
            | Shor
            | Simon { .. } => Difficulty::Intermediate,
            Qpe { .. } | Teleport { .. } | Walk { .. } | Annealing { .. } => Difficulty::Advanced,
        }
    }

    /// A stable topic key used by the knowledge base and RAG retrieval.
    pub fn topic(&self) -> &'static str {
        use TaskSpec::*;
        match self {
            BellPair => "bell",
            Ghz { .. } => "ghz",
            Superposition { .. } => "superposition",
            BasisState { .. } => "basis-state",
            BernsteinVazirani { .. } => "bernstein-vazirani",
            Superdense { .. } => "superdense",
            ParityCheck { .. } => "parity",
            DeutschJozsa { .. } => "deutsch-jozsa",
            Grover { .. } => "grover",
            QftBasis { .. } | QftRoundTrip { .. } => "qft",
            Qpe { .. } => "phase-estimation",
            Teleport { .. } => "teleportation",
            Walk { .. } => "quantum-walk",
            Shor => "shor",
            Simon { .. } => "simon",
            Annealing { .. } => "annealing",
        }
    }

    /// The natural-language prompt a developer would write.
    pub fn prompt_text(&self) -> String {
        use TaskSpec::*;
        match self {
            BellPair => "Generate a quantum program that prepares a Bell pair and measures both qubits.".into(),
            Ghz { n } => format!("Generate a quantum program preparing an {n}-qubit GHZ state and measuring every qubit."),
            Superposition { n } => format!("Generate a quantum program that puts {n} qubits into a uniform superposition and samples them."),
            BasisState { n, value } => format!("Generate a quantum program encoding the basis state {value} on {n} qubits and measuring it."),
            BernsteinVazirani { n, secret } => format!("Generate a quantum program implementing Bernstein-Vazirani over {n} bits for the secret mask {secret}."),
            Superdense { b1, b0 } => format!("Generate a quantum program implementing superdense coding of the bits ({}, {}).", *b1 as u8, *b0 as u8),
            ParityCheck { n } => format!("Generate a quantum program computing the parity of {n} superposed qubits onto an ancilla and measuring it."),
            DeutschJozsa { n, oracle } => {
                let kind = match oracle {
                    DjOracle::ConstantZero => "a constant-zero".to_string(),
                    DjOracle::ConstantOne => "a constant-one".to_string(),
                    DjOracle::BalancedMask(m) => format!("a balanced (mask {m})"),
                };
                format!("Generate a quantum program running the Deutsch-Jozsa algorithm on {n} input qubits with {kind} oracle.")
            }
            Grover { n, marked } => format!("Generate a quantum program using Grover's algorithm to find the marked state {marked} among {n} qubits."),
            QftBasis { n, input } => format!("Generate a quantum program applying the quantum Fourier transform to the {n}-qubit basis state {input} and measuring."),
            QftRoundTrip { n, input } => format!("Generate a quantum program applying the QFT and inverse QFT to the {n}-qubit basis state {input}, verifying the identity."),
            Qpe { t, phi } => format!("Generate a quantum program performing quantum phase estimation of a phase gate with phase {phi} using {t} counting qubits."),
            Teleport { .. } => "Generate a quantum program implementing quantum teleportation with mid-circuit measurement and classical corrections.".into(),
            Walk { steps } => format!("Generate a quantum program running a {steps}-step coined quantum walk on a 4-node cycle."),
            Shor => "Generate a quantum program performing Shor order finding for a = 7 modulo 15 with 3 counting qubits.".into(),
            Simon { n, secret } => format!("Generate a quantum program implementing Simon's algorithm over {n} bits with hidden mask {secret}."),
            Annealing { n } => format!("Generate a quantum program running a trotterized quantum annealing schedule on a {n}-qubit transverse-field Ising chain."),
        }
    }

    /// The ground-truth reference circuit for grading.
    pub fn reference_circuit(&self) -> Circuit {
        use TaskSpec::*;
        match self {
            BellPair => qalgo::basics::bell_pair(),
            Ghz { n } => qalgo::basics::ghz(*n),
            Superposition { n } => qalgo::basics::uniform_superposition(*n),
            BasisState { n, value } => qalgo::basics::basis_state(*n, *value),
            BernsteinVazirani { n, secret } => qalgo::basics::bernstein_vazirani(*n, *secret),
            Superdense { b1, b0 } => qalgo::basics::superdense(*b1, *b0),
            ParityCheck { n } => qalgo::basics::parity_check(*n),
            DeutschJozsa { n, oracle } => qalgo::dj::deutsch_jozsa(*n, *oracle),
            Grover { n, marked } => qalgo::grover::grover(*n, *marked, None),
            QftBasis { n, input } => qalgo::qft::qft_of_basis(*n, *input),
            QftRoundTrip { n, input } => qalgo::qft::qft_round_trip(*n, *input),
            Qpe { t, phi } => qalgo::qpe::phase_estimation(*t, *phi),
            Teleport { prep } => match prep {
                TeleportPrep::One => qalgo::teleport::teleport_one(),
                TeleportPrep::Plus => qalgo::teleport::teleport_plus(),
                TeleportPrep::Ry(theta) => qalgo::teleport::teleport(qcir::gate::Gate::RY(*theta)),
            },
            Walk { steps } => qalgo::walk::quantum_walk(*steps),
            Shor => qalgo::shor::shor_15_standard(),
            Simon { n, secret } => qalgo::simon::simon(*n, *secret),
            Annealing { n } => {
                qalgo::annealing::anneal_tfim(*n, qalgo::annealing::Schedule::default())
            }
        }
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.topic(), self.difficulty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<TaskSpec> {
        vec![
            TaskSpec::BellPair,
            TaskSpec::Ghz { n: 4 },
            TaskSpec::DeutschJozsa {
                n: 3,
                oracle: DjOracle::ConstantZero,
            },
            TaskSpec::Grover { n: 3, marked: 5 },
            TaskSpec::Teleport {
                prep: TeleportPrep::One,
            },
            TaskSpec::Shor,
            TaskSpec::Annealing { n: 4 },
        ]
    }

    #[test]
    fn difficulty_bands() {
        assert_eq!(TaskSpec::BellPair.difficulty(), Difficulty::Basic);
        assert_eq!(TaskSpec::Shor.difficulty(), Difficulty::Intermediate);
        assert_eq!(
            TaskSpec::Walk { steps: 2 }.difficulty(),
            Difficulty::Advanced
        );
    }

    #[test]
    fn every_spec_has_a_reference_circuit() {
        for spec in sample_specs() {
            let c = spec.reference_circuit();
            assert!(c.num_qubits() > 0, "{spec}");
            assert!(!c.is_empty(), "{spec}");
        }
    }

    #[test]
    fn prompts_are_nonempty_and_distinct() {
        let prompts: Vec<String> = sample_specs().iter().map(|s| s.prompt_text()).collect();
        for p in &prompts {
            assert!(p.len() > 20);
        }
        let unique: std::collections::BTreeSet<&String> = prompts.iter().collect();
        assert_eq!(unique.len(), prompts.len());
    }

    #[test]
    fn topics_are_stable_keys() {
        assert_eq!(TaskSpec::BellPair.topic(), "bell");
        assert_eq!(
            TaskSpec::QftBasis { n: 3, input: 1 }.topic(),
            TaskSpec::QftRoundTrip { n: 3, input: 1 }.topic()
        );
    }
}
