//! Program templates: the "gold" QasmLite source the model emits when it
//! knows an algorithm, and the plausible-but-wrong sources it emits when
//! it does not.

use crate::spec::TaskSpec;
use qcir::fmt::to_qasmlite;
use rand::Rng;

/// The correct program for a task: the reference circuit, rendered to
/// canonical QasmLite.
pub fn gold_source(spec: &TaskSpec) -> String {
    to_qasmlite(&spec.reference_circuit())
}

/// A syntactically valid but semantically wrong program for the task — the
/// paper's "syntactically correct but nonsensical code" failure mode.
///
/// The wrong program keeps the right register shape (the model usually gets
/// the interface right) but substitutes a generic structure: a partial
/// superposition with some entanglers, or a mis-parameterized variant of
/// the right algorithm.
pub fn confabulated_source(spec: &TaskSpec, rng: &mut impl Rng) -> String {
    let gold = gold_source(spec);
    let first = rng.gen_range(0..3);
    // A confabulation that happens to coincide with the right program is
    // not a confabulation; rotate variants until the text differs (the
    // rotation-soup variant always does).
    for offset in 0..3 {
        let candidate = confabulation_variant(spec, (first + offset) % 3);
        if candidate != gold {
            return candidate;
        }
    }
    unreachable!("rotation-soup variant always differs from gold");
}

fn confabulation_variant(spec: &TaskSpec, variant: usize) -> String {
    let reference = spec.reference_circuit();
    let n = reference.num_qubits();
    let c = reference.num_clbits().max(1);
    let mut qc = qcir::circuit::Circuit::new(n, c);
    match variant {
        0 => {
            // Partial superposition + stray flip: "looks quantum".
            for q in 0..n.div_ceil(2) {
                qc.h(q);
            }
            if n > 1 {
                qc.x(n - 1);
            }
        }
        1 => {
            // Entangler chain without the oracle/algorithm body.
            qc.h(0);
            for q in 0..n.saturating_sub(1) {
                qc.cx(q, q + 1);
            }
        }
        _ => {
            // Rotation soup: plausible parameterized structure.
            for q in 0..n {
                qc.ry(0.3 + 0.41 * q as f64, q);
            }
            for q in 0..n.saturating_sub(1) {
                qc.cz(q, q + 1);
            }
            for q in 0..n {
                qc.rz(0.7, q);
            }
        }
    }
    for bit in 0..c {
        let q = bit.min(n.saturating_sub(1));
        qc.measure(q, bit);
    }
    to_qasmlite(&qc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gold_source_parses_and_checks() {
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Grover { n: 3, marked: 2 },
            TaskSpec::Shor,
            TaskSpec::Teleport {
                prep: crate::spec::TeleportPrep::One,
            },
        ];
        for spec in specs {
            let src = gold_source(&spec);
            let program = qcir::dsl::parse(&src).expect("gold source parses");
            let circuit = qcir::check::lower(&program).expect("gold source checks");
            assert_eq!(circuit.num_qubits(), spec.reference_circuit().num_qubits());
        }
    }

    #[test]
    fn confabulated_source_is_valid_but_different() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = TaskSpec::Grover { n: 3, marked: 2 };
        for _ in 0..10 {
            let src = confabulated_source(&spec, &mut rng);
            let program = qcir::dsl::parse(&src).expect("confabulation parses");
            let circuit = qcir::check::lower(&program).expect("confabulation checks");
            assert_eq!(circuit.num_qubits(), 3);
            assert_ne!(src, gold_source(&spec), "must differ from gold");
        }
    }

    #[test]
    fn confabulation_keeps_register_interface() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = TaskSpec::DeutschJozsa {
            n: 3,
            oracle: qalgo::dj::DjOracle::ConstantZero,
        };
        let src = confabulated_source(&spec, &mut rng);
        let circuit = qcir::check::lower(&qcir::dsl::parse(&src).unwrap()).unwrap();
        let reference = spec.reference_circuit();
        assert_eq!(circuit.num_qubits(), reference.num_qubits());
        assert_eq!(circuit.num_clbits(), reference.num_clbits());
    }
}
