//! The simulated code LLM: generation and trace-driven repair.

use crate::corrupt::{self, Channel, ChannelRates};
use crate::cot::{self, CotKind, Plan};
use crate::finetune::TrainingLevel;
use crate::knowledge::KnowledgeBase;
use crate::rag::{self, CorpusConfig, RetrievalEffect, VectorStore};
use crate::spec::TaskSpec;
use crate::template;
use qcir::diag::DiagCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generation-time configuration: which techniques are active.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Base or fine-tuned model.
    pub training: TrainingLevel,
    /// RAG retrieval depth (`None` disables RAG).
    pub rag_top_k: Option<usize>,
    /// CoT flavour (`None` disables CoT).
    pub cot: Option<CotKind>,
    /// How API-specific the benchmark's tasks are: multiplies the
    /// import/deprecation/syntax channel rates. The Qiskit-HumanEval-like
    /// benchmark uses > 1 (library-heavy prompts), the custom suite 1.0
    /// (paper §V-C: QHE "tests Qiskit specific syntax").
    pub api_difficulty: f64,
    /// Model capability scale: 1.0 is StarCoder-class; larger means a
    /// stronger model (the Granite-20B comparison row of Table I).
    /// Scales down every channel rate and scales up familiarity.
    pub model_strength: f64,
    /// Label for reports.
    pub label: &'static str,
}

impl GenConfig {
    /// Pre-trained model only.
    pub fn base() -> Self {
        GenConfig {
            training: TrainingLevel::Base,
            rag_top_k: None,
            cot: None,
            api_difficulty: 1.0,
            model_strength: 1.0,
            label: "base",
        }
    }

    /// Fine-tuned model (the paper's `-QK` suffix).
    pub fn fine_tuned() -> Self {
        GenConfig {
            training: TrainingLevel::FineTuned,
            rag_top_k: None,
            cot: None,
            api_difficulty: 1.0,
            model_strength: 1.0,
            label: "fine-tuned",
        }
    }

    /// Fine-tuned + RAG.
    pub fn with_rag() -> Self {
        GenConfig {
            training: TrainingLevel::FineTuned,
            rag_top_k: Some(8),
            cot: None,
            api_difficulty: 1.0,
            model_strength: 1.0,
            label: "fine-tuned+rag",
        }
    }

    /// Fine-tuned + manual CoT.
    pub fn with_cot() -> Self {
        GenConfig {
            training: TrainingLevel::FineTuned,
            rag_top_k: None,
            cot: Some(CotKind::Manual),
            api_difficulty: 1.0,
            model_strength: 1.0,
            label: "fine-tuned+cot",
        }
    }

    /// Fine-tuned + structured CoT.
    pub fn with_scot() -> Self {
        GenConfig {
            training: TrainingLevel::FineTuned,
            rag_top_k: None,
            cot: Some(CotKind::Structured),
            api_difficulty: 1.0,
            model_strength: 1.0,
            label: "fine-tuned+scot",
        }
    }
}

/// One generated program plus the provenance the agents need.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// The emitted QasmLite source.
    pub source: String,
    /// Surface corruption channels that fired.
    pub applied: Vec<Channel>,
    /// Whether the model emitted the correct algorithm structure.
    pub structure_known: bool,
    /// The CoT plan used, when CoT was active.
    pub plan: Option<Plan>,
    /// Retrieval summary, when RAG was active.
    pub retrieval: Option<RetrievalEffect>,
    /// Seed for the corruption realization (repair re-renders with it).
    corruption_seed: u64,
}

/// The simulated LLM.
#[derive(Debug, Clone)]
pub struct CodeLlm {
    knowledge: KnowledgeBase,
    store: VectorStore,
}

impl Default for CodeLlm {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeLlm {
    /// A model over the default documentation corpus (staleness 0.5 — the
    /// paper's "docs are not up to date" regime).
    pub fn new() -> Self {
        CodeLlm {
            knowledge: KnowledgeBase::new(),
            store: VectorStore::build(&CorpusConfig::default()),
        }
    }

    /// A model with a custom RAG corpus (used by the staleness ablation).
    pub fn with_corpus(config: &CorpusConfig) -> Self {
        CodeLlm {
            knowledge: KnowledgeBase::new(),
            store: VectorStore::build(config),
        }
    }

    /// Effective channel rates and structure probability for a task under
    /// a configuration (exposed for the ablation benches).
    pub fn effective_rates(
        &self,
        spec: &TaskSpec,
        config: &GenConfig,
        rng: &mut StdRng,
    ) -> (ChannelRates, f64, Option<Plan>, Option<RetrievalEffect>) {
        let mut rates = match config.training {
            TrainingLevel::Base => ChannelRates::base(),
            TrainingLevel::FineTuned => ChannelRates::fine_tuned(),
        };
        let mut structure_prob = self.knowledge.familiarity(spec, config.training);

        let retrieval = config
            .rag_top_k
            .map(|k| rag::retrieval_effect(&self.store, &spec.prompt_text(), spec.topic(), k));
        if let Some(effect) = &retrieval {
            let cf = effect.current_api_fraction;
            rates.scale(Channel::StaleImport, 1.0 - 0.80 * cf);
            rates.scale(Channel::DeprecatedApi, 1.0 - 0.70 * cf);
            rates.scale(Channel::ImportOmission, 1.0 - 0.70 * cf);
            if effect.matched_guide {
                // A thin guide paragraph nudges structure, nothing more —
                // the paper's "RAG shows limited improvement".
                structure_prob += 0.06 * (1.0 - structure_prob);
            }
        }

        let plan = config.cot.map(|kind| cot::synthesize_plan(spec, kind, rng));
        if let Some(p) = &plan {
            if p.correct {
                // The plan hands the model the structure outright.
                structure_prob = structure_prob.max(0.97);
            } else {
                // A wrong plan overrides the model's own knowledge: it
                // dutifully implements the bad plan (§V-E).
                structure_prob = 0.03;
            }
            let stab = p.kind.syntax_stabilization();
            rates.scale(Channel::SyntaxError, stab);
            rates.scale(Channel::Truncation, stab);
        }

        // Benchmark API-specificity: library-heavy prompts exercise more
        // of the (partly stale) API surface.
        if (config.api_difficulty - 1.0).abs() > 1e-12 {
            for ch in [
                Channel::ImportOmission,
                Channel::StaleImport,
                Channel::DeprecatedApi,
                Channel::SyntaxError,
            ] {
                rates.scale(ch, config.api_difficulty);
            }
        }
        // Model capability: a stronger model errs less everywhere and
        // knows more algorithms.
        if (config.model_strength - 1.0).abs() > 1e-12 {
            let s = config.model_strength.max(0.1);
            let rate_factor = 1.0 / (s * s);
            for ch in Channel::SURFACE {
                rates.scale(ch, rate_factor);
            }
            structure_prob = structure_prob.powf(1.0 / s);
        }

        (rates, structure_prob, plan, retrieval)
    }

    /// Generates a program for `spec` under `config`, deterministically in
    /// `seed`.
    pub fn generate(&self, spec: &TaskSpec, config: &GenConfig, seed: u64) -> Generation {
        let mut rng = StdRng::seed_from_u64(mix(seed, spec.topic()));
        let (rates, structure_prob, plan, retrieval) = self.effective_rates(spec, config, &mut rng);
        let structure_known = rng.gen_bool(structure_prob.clamp(0.0, 1.0));
        let applied = rates.sample(&mut rng);
        let corruption_seed = rng.r#gen();
        let source = render(spec, structure_known, &applied, corruption_seed);
        Generation {
            source,
            applied,
            structure_known,
            plan,
            retrieval,
            corruption_seed,
        }
    }

    /// Attempts a repair pass: given the previous generation and the
    /// diagnostic codes from its error trace, the model retries. Repair
    /// succeeds per-channel with a probability that reflects *why* the
    /// channel fired: syntax slips are easy to fix from a trace; stale
    /// API knowledge is not (the model re-emits the same deprecated
    /// symbol), which is exactly the saturation the paper reports in §V-D.
    pub fn repair(
        &self,
        spec: &TaskSpec,
        config: &GenConfig,
        prev: &Generation,
        trace_codes: &[DiagCode],
        semantic_feedback: bool,
        seed: u64,
    ) -> Generation {
        let mut rng = StdRng::seed_from_u64(mix(seed, "repair"));
        let addressed = channels_addressed(trace_codes);
        let mut applied: Vec<Channel> = Vec::new();
        for &ch in &prev.applied {
            let keep = if addressed.contains(&ch) {
                !rng.gen_bool(repair_success_probability(ch))
            } else {
                true
            };
            if keep {
                applied.push(ch);
            }
        }
        let mut structure_known = prev.structure_known;
        if !structure_known && semantic_feedback {
            // Semantic feedback ("output distribution wrong") rarely
            // teaches the model an algorithm it does not know; a CoT plan
            // gives it another chance at the structure.
            let p = match config.cot {
                Some(kind) => 0.22 * kind.plan_quality(),
                None => 0.03,
            };
            if rng.gen_bool(p) {
                structure_known = true;
            }
        }
        let source = render(spec, structure_known, &applied, prev.corruption_seed);
        Generation {
            source,
            applied,
            structure_known,
            plan: prev.plan.clone(),
            retrieval: prev.retrieval.clone(),
            corruption_seed: prev.corruption_seed,
        }
    }
}

/// Maps diagnostic codes in an error trace to the corruption channels the
/// model will try to address.
pub fn channels_addressed(codes: &[DiagCode]) -> BTreeSet<Channel> {
    let mut set = BTreeSet::new();
    for code in codes {
        match code {
            DiagCode::UnknownImport | DiagCode::MissingImport => {
                set.insert(Channel::StaleImport);
                set.insert(Channel::ImportOmission);
            }
            DiagCode::DeprecatedSymbol | DiagCode::RemovedSymbol | DiagCode::UnknownGate => {
                set.insert(Channel::DeprecatedApi);
            }
            DiagCode::LexError | DiagCode::ParseError => {
                set.insert(Channel::SyntaxError);
                set.insert(Channel::Truncation);
            }
            DiagCode::QubitOutOfRange
            | DiagCode::ClbitOutOfRange
            | DiagCode::UndeclaredRegister
            | DiagCode::DuplicateQubit => {
                set.insert(Channel::IndexError);
                set.insert(Channel::Truncation);
            }
            DiagCode::NoMeasurement | DiagCode::MeasureSizeMismatch => {
                set.insert(Channel::MissingMeasure);
                set.insert(Channel::Truncation);
            }
            DiagCode::ParamCountMismatch => {
                set.insert(Channel::WrongParams);
                set.insert(Channel::DeprecatedApi);
            }
            DiagCode::ArityMismatch
            | DiagCode::DuplicateRegister
            | DiagCode::UndefinedSubroutine
            | DiagCode::SubroutineArityMismatch => {
                set.insert(Channel::SyntaxError);
            }
        }
    }
    set
}

/// Per-channel repair success probability given a pointed error trace.
pub fn repair_success_probability(channel: Channel) -> f64 {
    match channel {
        Channel::SyntaxError => 0.42,
        Channel::Truncation => 0.36,
        Channel::ImportOmission => 0.45,
        Channel::MissingMeasure => 0.38,
        Channel::IndexError => 0.30,
        // The model's knowledge is the bottleneck: it keeps producing the
        // same deprecated names / stale pins (§V-D).
        Channel::StaleImport => 0.11,
        Channel::DeprecatedApi => 0.09,
        Channel::WrongParams => 0.12,
        Channel::WrongStructure => 0.05,
    }
}

/// Deterministic render of a generation: gold or confabulated body, then
/// the corruption operators in canonical channel order.
fn render(
    spec: &TaskSpec,
    structure_known: bool,
    applied: &[Channel],
    corruption_seed: u64,
) -> String {
    let mut rng = StdRng::seed_from_u64(corruption_seed);
    let mut source = if structure_known {
        template::gold_source(spec)
    } else {
        template::confabulated_source(spec, &mut rng)
    };
    for ch in Channel::SURFACE {
        if applied.contains(&ch) {
            source = corrupt::apply(ch, &source, &mut rng);
        }
    }
    source
}

/// Mixes a seed with a string tag (stable across runs).
fn mix(seed: u64, tag: &str) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in tag.bytes() {
        h = h.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::check;
    use qcir::dsl;

    fn validity(config: &GenConfig, spec: &TaskSpec, trials: u64) -> f64 {
        let llm = CodeLlm::new();
        let mut ok = 0u64;
        for seed in 0..trials {
            let g = llm.generate(spec, config, seed);
            if let Ok(program) = dsl::parse(&g.source) {
                if check::lower(&program).is_ok() && g.structure_known {
                    ok += 1;
                }
            }
        }
        ok as f64 / trials as f64
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let llm = CodeLlm::new();
        let a = llm.generate(&TaskSpec::BellPair, &GenConfig::fine_tuned(), 5);
        let b = llm.generate(&TaskSpec::BellPair, &GenConfig::fine_tuned(), 5);
        assert_eq!(a, b);
        // Over many seeds the corruption realizations must vary.
        let distinct: std::collections::BTreeSet<String> = (0..50)
            .map(|s| {
                llm.generate(&TaskSpec::BellPair, &GenConfig::fine_tuned(), s)
                    .source
            })
            .collect();
        assert!(distinct.len() > 1, "seeds should vary the generation");
    }

    #[test]
    fn clean_generation_matches_gold() {
        let llm = CodeLlm::new();
        // Find a seed with no corruption and known structure.
        for seed in 0..200 {
            let g = llm.generate(&TaskSpec::BellPair, &GenConfig::with_scot(), seed);
            if g.applied.is_empty() && g.structure_known {
                assert_eq!(g.source, template::gold_source(&TaskSpec::BellPair));
                return;
            }
        }
        panic!("no clean generation in 200 seeds");
    }

    #[test]
    fn fine_tuning_beats_base() {
        let spec = TaskSpec::Ghz { n: 3 };
        let base = validity(&GenConfig::base(), &spec, 300);
        let tuned = validity(&GenConfig::fine_tuned(), &spec, 300);
        assert!(tuned > base + 0.05, "tuned {tuned} vs base {base}");
    }

    #[test]
    fn cot_rescues_unknown_algorithms() {
        let spec = TaskSpec::Walk { steps: 2 };
        let llm = CodeLlm::new();
        let mut known_ft = 0;
        let mut known_cot = 0;
        for seed in 0..400 {
            if llm
                .generate(&spec, &GenConfig::fine_tuned(), seed)
                .structure_known
            {
                known_ft += 1;
            }
            if llm
                .generate(&spec, &GenConfig::with_scot(), seed)
                .structure_known
            {
                known_cot += 1;
            }
        }
        assert!(
            known_cot > known_ft * 2,
            "scot structure {known_cot} vs ft {known_ft}"
        );
    }

    #[test]
    fn bad_plans_override_known_structure() {
        // On a topic the model knows well, CoT occasionally *hurts* via a
        // bad plan — the paper's observed failure mode.
        let llm = CodeLlm::new();
        let spec = TaskSpec::BellPair;
        let mut overridden = 0;
        for seed in 0..800 {
            let g = llm.generate(&spec, &GenConfig::with_cot(), seed);
            if let Some(plan) = &g.plan {
                if !plan.correct && !g.structure_known {
                    overridden += 1;
                }
            }
        }
        assert!(overridden > 0, "bad plans must sometimes override");
    }

    #[test]
    fn rag_reduces_api_error_channels() {
        let llm = CodeLlm::new();
        let spec = TaskSpec::BellPair;
        let mut rng = StdRng::seed_from_u64(0);
        let (ft_rates, ..) = llm.effective_rates(&spec, &GenConfig::fine_tuned(), &mut rng);
        let (rag_rates, ..) = llm.effective_rates(&spec, &GenConfig::with_rag(), &mut rng);
        assert!(rag_rates.rate(Channel::DeprecatedApi) < ft_rates.rate(Channel::DeprecatedApi));
        assert!(rag_rates.rate(Channel::StaleImport) < ft_rates.rate(Channel::StaleImport));
        // RAG does not touch the syntax channel.
        assert_eq!(
            rag_rates.rate(Channel::SyntaxError),
            ft_rates.rate(Channel::SyntaxError)
        );
    }

    #[test]
    fn repair_fixes_syntax_more_often_than_api_errors() {
        let llm = CodeLlm::new();
        let config = GenConfig::fine_tuned();
        let spec = TaskSpec::Ghz { n: 3 };
        let mut syntax_fixed = 0u32;
        let mut syntax_total = 0u32;
        let mut api_fixed = 0u32;
        let mut api_total = 0u32;
        for seed in 0..3000 {
            let g = llm.generate(&spec, &config, seed);
            if g.applied.contains(&Channel::SyntaxError) {
                syntax_total += 1;
                let r = llm.repair(&spec, &config, &g, &[DiagCode::ParseError], false, seed + 1);
                if !r.applied.contains(&Channel::SyntaxError) {
                    syntax_fixed += 1;
                }
            }
            if g.applied.contains(&Channel::DeprecatedApi) {
                api_total += 1;
                let r = llm.repair(
                    &spec,
                    &config,
                    &g,
                    &[DiagCode::RemovedSymbol],
                    false,
                    seed + 1,
                );
                if !r.applied.contains(&Channel::DeprecatedApi) {
                    api_fixed += 1;
                }
            }
        }
        assert!(
            syntax_total > 20 && api_total > 20,
            "{syntax_total}/{api_total}"
        );
        let syntax_rate = syntax_fixed as f64 / syntax_total as f64;
        let api_rate = api_fixed as f64 / api_total as f64;
        assert!(
            syntax_rate > api_rate + 0.2,
            "syntax {syntax_rate} vs api {api_rate}"
        );
    }

    #[test]
    fn repair_does_not_touch_unaddressed_channels() {
        let llm = CodeLlm::new();
        let config = GenConfig::base();
        let spec = TaskSpec::BellPair;
        for seed in 0..500 {
            let g = llm.generate(&spec, &config, seed);
            if g.applied.contains(&Channel::MissingMeasure) {
                // Trace about syntax only: measure channel must survive.
                let r = llm.repair(&spec, &config, &g, &[DiagCode::ParseError], false, seed);
                assert!(r.applied.contains(&Channel::MissingMeasure));
                return;
            }
        }
        panic!("no missing-measure generation found");
    }

    #[test]
    fn channels_addressed_mapping() {
        let set = channels_addressed(&[DiagCode::RemovedSymbol, DiagCode::ParseError]);
        assert!(set.contains(&Channel::DeprecatedApi));
        assert!(set.contains(&Channel::SyntaxError));
        assert!(!set.contains(&Channel::MissingMeasure));
    }
}
