//! # qlm — a mechanistic simulated code LLM
//!
//! The reproduced paper fine-tunes StarCoder on scraped Qiskit code and
//! studies how inference-time techniques (RAG, CoT, SCoT, multi-pass
//! repair) change the validity of generated quantum programs. We cannot run
//! StarCoder here, so this crate builds the closest mechanistic equivalent:
//! a generator that really emits QasmLite programs and whose failure modes
//! are *explicit, independently-sampled corruption channels* — import
//! omissions, stale version pins, deprecated API usage, syntax slips,
//! index errors, dropped measurements, parameter noise, truncation and
//! wrong-algorithm structure.
//!
//! Every optimization technique in the paper maps onto this model the same
//! way it acts on a real LLM:
//!
//! * **Fine-tuning** ([`finetune`]) raises API familiarity and lowers
//!   syntax-channel rates (it saw more recent Qiskit code).
//! * **RAG** ([`rag`]) retrieves documentation chunks; retrieved *current*
//!   API chunks suppress import/deprecation channels, but a stale corpus
//!   (configurable staleness, the paper's stated problem) caps the benefit.
//! * **CoT / SCoT** ([`cot`]) synthesize an algorithm plan; a good plan
//!   supplies the structure the model lacks, while an imperfect plan
//!   (paper §V-E: "incorrect CoT prompt generation") corrupts structure
//!   even when the model knew it.
//! * **Multi-pass repair** ([`model::CodeLlm::repair`]) consumes an error
//!   trace and retries; repair success probability depends on the
//!   diagnostic class — high for syntax, low for import/deprecation
//!   (the model's knowledge is the problem, exactly the paper's §V-D
//!   finding), near-zero for structure.
//!
//! Accuracy numbers are *measured* by compiling and simulating the emitted
//! programs, never asserted.
//!
//! # Example
//!
//! ```
//! use qlm::model::{CodeLlm, GenConfig};
//! use qlm::spec::TaskSpec;
//!
//! let llm = CodeLlm::new();
//! let config = GenConfig::fine_tuned();
//! let generation = llm.generate(&TaskSpec::BellPair, &config, 7);
//! assert!(generation.source.contains("qreg"));
//! ```

pub mod corrupt;
pub mod cot;
pub mod finetune;
pub mod knowledge;
pub mod model;
pub mod rag;
pub mod spec;
pub mod template;

pub use model::{CodeLlm, GenConfig, Generation};
pub use spec::{Difficulty, TaskSpec};
