//! Chain-of-Thought and Structured Chain-of-Thought prompting.
//!
//! The paper hand-writes the first five CoT exemplars and generates the
//! rest with GPT-4o (§IV-C), noting that "some of the errors occur due to
//! incorrect CoT prompt generation" (§V-E). We model a plan generator
//! with a per-kind quality: a good plan supplies algorithm structure the
//! model lacks; a bad plan *overrides* the model's own (possibly correct)
//! structure with a wrong one — reproducing both the large benefit and the
//! residual failure mode.

use crate::spec::TaskSpec;
use rand::Rng;

/// Which CoT flavour is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CotKind {
    /// Zero-shot "think step by step".
    ZeroShot,
    /// Manual CoT with generated exemplars (the paper's "CoT").
    Manual,
    /// Structured CoT (program-structure-aware pseudocode plans).
    Structured,
}

impl CotKind {
    /// Probability the synthesized plan is structurally correct.
    pub fn plan_quality(&self) -> f64 {
        match self {
            CotKind::ZeroShot => 0.55,
            CotKind::Manual => 0.82,
            CotKind::Structured => 0.92,
        }
    }

    /// Multiplier on the truncation/syntax channels: working through a
    /// plan stabilizes generation slightly (SCoT most, since the plan
    /// mirrors program structure).
    pub fn syntax_stabilization(&self) -> f64 {
        match self {
            CotKind::ZeroShot => 0.95,
            CotKind::Manual => 0.85,
            CotKind::Structured => 0.70,
        }
    }
}

/// A synthesized plan for a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The plan text (rendered into the augmented prompt / transcripts).
    pub steps: Vec<String>,
    /// Whether the plan is structurally correct for the task.
    pub correct: bool,
    /// The flavour that produced it.
    pub kind: CotKind,
}

/// Synthesizes a plan for `spec`. Correctness is sampled from the kind's
/// plan quality; incorrect plans contain a realistic structural mistake
/// (wrong oracle, missing uncompute, wrong iteration count).
pub fn synthesize_plan(spec: &TaskSpec, kind: CotKind, rng: &mut impl Rng) -> Plan {
    let correct = rng.gen_bool(kind.plan_quality());
    let mut steps = skeleton_steps(spec);
    if !correct && !steps.is_empty() {
        // Damage the plan: drop or garble a load-bearing step.
        let victim = rng.gen_range(0..steps.len());
        match rng.gen_range(0..3) {
            0 => {
                steps.remove(victim);
            }
            1 => steps[victim] = "apply hadamard gates to all qubits".to_string(),
            _ => steps[victim] = "repeat the previous step once more".to_string(),
        }
    }
    Plan {
        steps,
        correct,
        kind,
    }
}

/// The correct high-level plan skeleton per topic.
fn skeleton_steps(spec: &TaskSpec) -> Vec<String> {
    let steps: &[&str] = match spec.topic() {
        "bell" => &[
            "allocate 2 qubits",
            "hadamard qubit 0",
            "cx 0 -> 1",
            "measure all",
        ],
        "ghz" => &[
            "allocate n qubits",
            "hadamard qubit 0",
            "cx chain",
            "measure all",
        ],
        "superposition" => &["allocate n qubits", "hadamard every qubit", "measure all"],
        "basis-state" => &["allocate n qubits", "x gates on set bits", "measure all"],
        "bernstein-vazirani" => &[
            "prepare ancilla in minus state",
            "hadamard inputs",
            "oracle: cx from mask bits to ancilla",
            "hadamard inputs",
            "measure inputs",
        ],
        "superdense" => &[
            "share bell pair",
            "encode bits with x/z",
            "decode with cx and h",
            "measure",
        ],
        "parity" => &[
            "hadamard data",
            "cx every data qubit to ancilla",
            "measure ancilla",
        ],
        "deutsch-jozsa" => &[
            "prepare ancilla in minus state",
            "hadamard inputs",
            "apply the oracle",
            "hadamard inputs",
            "measure inputs: all zero means constant",
        ],
        "grover" => &[
            "hadamard all qubits",
            "oracle: phase flip the marked state",
            "diffuser: invert about the mean",
            "repeat optimal number of iterations",
            "measure",
        ],
        "qft" => &[
            "hadamard + controlled phases per target",
            "swap for bit reversal",
            "measure",
        ],
        "phase-estimation" => &[
            "prepare eigenstate on target",
            "hadamard counting register",
            "controlled powers of the unitary",
            "inverse qft on counting register",
            "measure counting register",
        ],
        "teleportation" => &[
            "prepare payload state",
            "share bell pair",
            "bell measurement on payload and alice half",
            "classically controlled x and z on bob half",
            "measure bob",
        ],
        "quantum-walk" => &[
            "coin qubit + position register",
            "per step: hadamard coin",
            "conditional increment when coin 1",
            "conditional decrement when coin 0",
            "measure position",
        ],
        "shor" => &[
            "work register starts at one",
            "hadamard counting register",
            "controlled modular multiplications by a^(2^k)",
            "inverse qft on counting register",
            "measure counting register",
        ],
        "simon" => &[
            "hadamard inputs",
            "oracle copies input and collapses preimages",
            "hadamard inputs",
            "measure constraints",
        ],
        "annealing" => &[
            "start in plus states",
            "per trotter step: zz couplings then transverse field",
            "ramp the schedule from transverse to ising",
            "measure all",
        ],
        _ => &[],
    };
    steps.iter().map(|s| s.to_string()).collect()
}

/// Renders the plan into the prompt-augmentation block.
pub fn render_plan(plan: &Plan) -> String {
    let mut out = String::from("Let's think step by step:\n");
    for (i, step) in plan.steps.iter().enumerate() {
        out.push_str(&format!("{}. {step}\n", i + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_quality_ordering() {
        assert!(CotKind::Structured.plan_quality() > CotKind::Manual.plan_quality());
        assert!(CotKind::Manual.plan_quality() > CotKind::ZeroShot.plan_quality());
    }

    #[test]
    fn plans_have_steps_for_every_topic() {
        let mut rng = StdRng::seed_from_u64(0);
        let specs = [
            TaskSpec::BellPair,
            TaskSpec::Grover { n: 3, marked: 1 },
            TaskSpec::Shor,
            TaskSpec::Walk { steps: 2 },
            TaskSpec::Annealing { n: 4 },
        ];
        for spec in specs {
            let plan = synthesize_plan(&spec, CotKind::Structured, &mut rng);
            assert!(!plan.steps.is_empty(), "{spec}");
        }
    }

    #[test]
    fn incorrect_plans_happen_at_roughly_the_configured_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 5000;
        let bad = (0..trials)
            .filter(|_| !synthesize_plan(&TaskSpec::BellPair, CotKind::Manual, &mut rng).correct)
            .count();
        let rate = bad as f64 / trials as f64;
        let expected = 1.0 - CotKind::Manual.plan_quality();
        assert!((rate - expected).abs() < 0.02, "rate {rate} vs {expected}");
    }

    #[test]
    fn bad_plans_differ_from_good_ones() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_bad = false;
        for _ in 0..100 {
            let plan = synthesize_plan(&TaskSpec::Shor, CotKind::ZeroShot, &mut rng);
            if !plan.correct {
                seen_bad = true;
                let gold = skeleton_steps(&TaskSpec::Shor);
                assert_ne!(plan.steps, gold);
            }
        }
        assert!(seen_bad);
    }

    #[test]
    fn render_is_numbered() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = synthesize_plan(&TaskSpec::BellPair, CotKind::Structured, &mut rng);
        let text = render_plan(&plan);
        assert!(text.contains("1. "));
        assert!(text.starts_with("Let's think"));
    }
}
