//! Circuit execution: shots, trajectories, conditionals.

use crate::dist::{Counts, Distribution};
use crate::noise::NoiseModel;
use crate::state::StateVector;
use qcir::circuit::{Circuit, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Executes circuits against a noise model.
///
/// For noiseless circuits whose measurements all come last, the executor
/// evolves the state once and samples outcomes from the exact distribution;
/// otherwise it runs one Monte-Carlo trajectory per shot (required for
/// mid-circuit measurement, conditionals, resets and noise).
#[derive(Debug, Clone, Default)]
pub struct Executor {
    noise: NoiseModel,
}

impl Executor {
    /// A noiseless executor.
    pub fn ideal() -> Self {
        Executor {
            noise: NoiseModel::ideal(),
        }
    }

    /// An executor with the given noise model.
    pub fn with_noise(noise: NoiseModel) -> Self {
        Executor { noise }
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs `shots` shots with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics when the circuit exceeds the dense-simulation qubit cap.
    pub fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Counts {
        let mut rng = StdRng::seed_from_u64(seed);
        if !self.noise.is_noisy() && measures_only_at_end(circuit) {
            return self.run_fast(circuit, shots, &mut rng);
        }
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let outcome = self.run_trajectory(circuit, &mut rng);
            counts.record(outcome);
        }
        counts
    }

    /// Evolves the unitary prefix once, then samples measured qubits.
    fn run_fast(&self, circuit: &Circuit, shots: u64, rng: &mut StdRng) -> Counts {
        let mut sv = StateVector::zero(circuit.num_qubits());
        let mut measure_map: Vec<(usize, usize)> = Vec::new();
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => sv.apply_gate(*gate, qubits),
                Op::Measure { qubit, clbit } => measure_map.push((*qubit, *clbit)),
                Op::Barrier { .. } => {}
                _ => unreachable!("fast path precondition violated"),
            }
        }
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let basis = sv.sample(rng);
            let mut word = 0u64;
            for &(q, c) in &measure_map {
                if (basis >> q) & 1 == 1 {
                    word |= 1 << c;
                }
            }
            counts.record(word);
        }
        counts
    }

    /// One full Monte-Carlo trajectory; returns the classical outcome word.
    fn run_trajectory(&self, circuit: &Circuit, rng: &mut StdRng) -> u64 {
        let mut sv = StateVector::zero(circuit.num_qubits());
        let mut clbits = 0u64;
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    sv.apply_gate(*gate, qubits);
                    for (q, pauli) in self.noise.sample_gate_errors(gate, qubits, rng) {
                        pauli.apply(&mut sv, q);
                    }
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    let bit = (clbits >> clbit) & 1 == 1;
                    if bit == *value {
                        sv.apply_gate(*gate, qubits);
                        for (q, pauli) in self.noise.sample_gate_errors(gate, qubits, rng) {
                            pauli.apply(&mut sv, q);
                        }
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let raw = sv.measure(*qubit, rng);
                    let reported = self.noise.sample_readout(raw, rng);
                    if reported {
                        clbits |= 1 << clbit;
                    } else {
                        clbits &= !(1 << clbit);
                    }
                }
                Op::Reset { qubit } => {
                    sv.reset(*qubit, rng);
                }
                Op::Barrier { .. } => {
                    for (q, pauli) in self.noise.sample_idle_errors(sv.num_qubits(), rng) {
                        pauli.apply(&mut sv, q);
                    }
                }
            }
        }
        clbits
    }

    /// The exact noiseless outcome distribution for circuits whose
    /// measurements all come last; falls back to a 16384-shot estimate for
    /// circuits with mid-circuit measurement or conditionals.
    pub fn ideal_distribution(circuit: &Circuit, seed: u64) -> Distribution {
        if measures_only_at_end(circuit) {
            let mut sv = StateVector::zero(circuit.num_qubits());
            let mut measure_map: Vec<(usize, usize)> = Vec::new();
            for op in circuit.ops() {
                match op {
                    Op::Gate { gate, qubits } => sv.apply_gate(*gate, qubits),
                    Op::Measure { qubit, clbit } => measure_map.push((*qubit, *clbit)),
                    Op::Barrier { .. } => {}
                    _ => unreachable!(),
                }
            }
            let mut dist = Distribution::new(circuit.num_clbits());
            for (basis, p) in sv.probabilities().into_iter().enumerate() {
                if p <= 1e-15 {
                    continue;
                }
                let mut word = 0u64;
                for &(q, c) in &measure_map {
                    if (basis >> q) & 1 == 1 {
                        word |= 1 << c;
                    }
                }
                let existing = dist.get(word);
                dist.set(word, existing + p);
            }
            dist
        } else {
            Executor::ideal()
                .run(circuit, 16_384, seed)
                .to_distribution()
        }
    }

    /// Runs the unitary portion only and returns the final state.
    ///
    /// # Panics
    ///
    /// Panics when the circuit contains measurements, resets or conditional
    /// gates.
    pub fn statevector(circuit: &Circuit) -> StateVector {
        assert!(
            circuit.is_unitary_only(),
            "statevector() requires a measurement-free circuit"
        );
        let mut sv = StateVector::zero(circuit.num_qubits());
        for op in circuit.ops() {
            if let Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        sv
    }
}

/// `true` when the circuit has no conditionals/resets and every measurement
/// comes after the last gate.
pub fn measures_only_at_end(circuit: &Circuit) -> bool {
    let mut seen_measure = false;
    for op in circuit.ops() {
        match op {
            Op::CondGate { .. } | Op::Reset { .. } => return false,
            Op::Measure { .. } => seen_measure = true,
            Op::Gate { .. } => {
                if seen_measure {
                    return false;
                }
            }
            Op::Barrier { .. } => {}
        }
    }
    true
}

/// Convenience: sample a random `u64` stream deterministically from a seed
/// plus an index (used by benches to decorrelate sweeps).
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    // SplitMix64 step.
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples `n` outcomes from an arbitrary discrete distribution (utility for
/// synthetic workloads).
pub fn sample_distribution(dist: &Distribution, n: u64, seed: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(u64, f64)> = dist.iter().collect();
    let mut counts = Counts::new(dist.num_clbits());
    for _ in 0..n {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = pairs.last().map(|&(o, _)| o).unwrap_or(0);
        for &(o, p) in &pairs {
            acc += p;
            if r < acc {
                chosen = o;
                break;
            }
        }
        counts.record(chosen);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use qcir::gate::Gate;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn ideal_bell_is_correlated() {
        let counts = Executor::ideal().run(&bell(), 2000, 9);
        assert_eq!(counts.shots(), 2000);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn fast_and_trajectory_paths_agree() {
        let qc = bell();
        let fast = Executor::ideal().run(&qc, 4000, 1).to_distribution();
        // Force the trajectory path with a zero-rate "noisy" model.
        let mut zero = NoiseModel::uniform_depolarizing(0.0);
        zero.idle_error = 0.0;
        zero.readout_error = 1e-300; // non-zero flag, negligible effect
        let slow = Executor::with_noise(zero)
            .run(&qc, 4000, 1)
            .to_distribution();
        assert!(fast.tvd(&slow) < 0.05);
    }

    #[test]
    fn ideal_distribution_is_exact() {
        let dist = Executor::ideal_distribution(&bell(), 0);
        assert!((dist.get(0b00) - 0.5).abs() < 1e-12);
        assert!((dist.get(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Executor::ideal().run(&bell(), 100, 42);
        let b = Executor::ideal().run(&bell(), 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn readout_noise_pollutes_deterministic_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let nm = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.2,
            idle_error: 0.0,
            label: "ro".into(),
        };
        let counts = Executor::with_noise(nm).run(&qc, 20_000, 5);
        let p_wrong = counts.probability(0b0);
        assert!((p_wrong - 0.2).abs() < 0.02, "p_wrong = {p_wrong}");
    }

    #[test]
    fn conditional_teleport_like_correction_works() {
        // Prepare |1> on q0, measure into c0, then conditionally flip q1.
        let mut qc = Circuit::new(2, 2);
        qc.x(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        let counts = Executor::ideal().run(&qc, 200, 3);
        assert_eq!(counts.count(0b11), 200);
    }

    #[test]
    fn reset_mid_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).reset(0).measure(0, 0);
        let counts = Executor::ideal().run(&qc, 100, 4);
        assert_eq!(counts.count(0), 100);
    }

    #[test]
    fn depolarizing_noise_reduces_fidelity() {
        let qc = bell();
        let noisy = Executor::with_noise(profiles::noisy_nisq()).run(&qc, 5000, 6);
        let ideal = Executor::ideal_distribution(&qc, 0);
        let tvd = noisy.to_distribution().tvd(&ideal);
        assert!(tvd > 0.02, "noise should be visible, tvd = {tvd}");
        assert!(tvd < 0.6, "noise should not destroy the state, tvd = {tvd}");
    }

    #[test]
    fn measures_only_at_end_detection() {
        assert!(measures_only_at_end(&bell()));
        let mut mid = Circuit::new(2, 2);
        mid.h(0).measure(0, 0).x(1).measure(1, 1);
        assert!(!measures_only_at_end(&mid));
        let mut cond = Circuit::new(1, 1);
        cond.measure(0, 0);
        cond.cond_gate(Gate::X, &[0], 0, true);
        assert!(!measures_only_at_end(&cond));
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(derive_seed(1, 0), a);
    }

    #[test]
    fn sample_distribution_matches_probabilities() {
        let mut d = Distribution::new(1);
        d.set(0, 0.25);
        d.set(1, 0.75);
        let counts = sample_distribution(&d, 20_000, 8);
        assert!((counts.probability(1) - 0.75).abs() < 0.02);
    }
}
