//! Circuit execution: shots, trajectories, conditionals, backend dispatch
//! and multi-threaded shot batching.
//!
//! # Shot chunking and determinism
//!
//! Shots are partitioned into fixed [`SHOT_CHUNK`]-sized chunks; chunk `i`
//! draws from its own RNG seeded with [`derive_seed`]`(seed, i)`, and the
//! per-chunk [`Counts`] are merged by commutative outcome-wise addition.
//! Because the partition and the seeds depend only on `(shots, seed)` —
//! never on thread scheduling or merge order — a run with
//! [`ExecutorConfig::threads`]`(n)` is bit-identical to the
//! single-threaded run for every `n`.

use crate::backend::{self, BackendChoice, BackendKind, BackendState, SimError};
use crate::dist::{Counts, Distribution};
use crate::job::JobSpec;
use crate::mps::{MpsSampler, MpsState};
use crate::noise::NoiseModel;
use crate::plan::{self, CircuitPlan, PlanCache, PlanCacheStats};
use crate::replay::NoisyPlan;
use crate::state::StateVector;
use crate::word::OutcomeWord;
use qcir::circuit::{Circuit, Op};
use qugen_telemetry::metrics::{self as tmetrics, Counter, Histogram};
use qugen_telemetry::trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Interned registry handles for the executor layer: per-job wall time by
/// resolved backend, shot/chunk volume, and truncation-budget consumption.
struct ExecMetrics {
    jobs: &'static Counter,
    job_failures: &'static Counter,
    shots: &'static Counter,
    chunks: &'static Counter,
    batches: &'static Counter,
    /// Exact (probability-vector) distribution computations; sampled
    /// fallbacks count as ordinary jobs instead.
    distributions: &'static Counter,
    job_us_dense: &'static Histogram,
    job_us_tableau: &'static Histogram,
    job_us_mps: &'static Histogram,
    /// Worst observed truncation error as ‰ of the budget (only finite
    /// positive budgets record; >1000 means the budget was blown).
    truncation_permille: &'static Histogram,
    truncation_exceeded: &'static Counter,
}

impl ExecMetrics {
    fn job_us(&self, kind: BackendKind) -> &'static Histogram {
        match kind {
            BackendKind::Dense => self.job_us_dense,
            BackendKind::Tableau => self.job_us_tableau,
            BackendKind::Mps { .. } => self.job_us_mps,
        }
    }
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ExecMetrics {
        jobs: tmetrics::counter("exec.jobs"),
        job_failures: tmetrics::counter("exec.job_failures"),
        shots: tmetrics::counter("exec.shots"),
        chunks: tmetrics::counter("exec.chunks"),
        batches: tmetrics::counter("exec.batches"),
        distributions: tmetrics::counter("exec.distributions"),
        job_us_dense: tmetrics::histogram("exec.job_us.dense"),
        job_us_tableau: tmetrics::histogram("exec.job_us.tableau"),
        job_us_mps: tmetrics::histogram("exec.job_us.mps"),
        truncation_permille: tmetrics::histogram("exec.truncation_permille"),
        truncation_exceeded: tmetrics::counter("exec.truncation_exceeded"),
    })
}

/// Shots per RNG chunk (see the module docs on determinism).
pub const SHOT_CHUNK: u64 = 1024;

/// Default cap on the truncation error an MPS run may accumulate before
/// the executor refuses its counts with
/// [`SimError::TruncationBudgetExceeded`]. The gated quantity is the
/// rigorous per-trajectory infidelity bound `(Σ√(2δ))²` over the
/// trajectory's discarded weights δ, so counts that pass the default are
/// genuinely high-fidelity; override with
/// [`ExecutorConfig::truncation_budget`] (e.g. `f64::INFINITY` for
/// best-effort runs) or per job with [`JobSpec::with_budget`].
pub const DEFAULT_TRUNCATION_BUDGET: f64 = 1e-2;

/// Shots used by the sampled [`Executor::ideal_distribution`] fallback.
const DISTRIBUTION_SHOTS: u64 = 16_384;

/// A reasonable worker count for parallel shot execution on this host.
///
/// Results never depend on the thread count (see the module docs), so this
/// is purely a throughput knob.
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How an executor sources its compiled-plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanCacheMode {
    /// Share the process-wide [`plan::shared_cache`] (the default): even
    /// short-lived executors — the grader builds a fresh one per call —
    /// reuse warm plans.
    #[default]
    Shared,
    /// A private LRU per built executor, for benchmarks and tests that
    /// need cold-start compile behavior on demand.
    Private,
}

/// Typed executor configuration: every knob in one place, replacing the
/// accreting `with_*` builder chain on [`Executor`] itself.
///
/// All fields are public and `Default` matches [`Executor::ideal`], so
/// struct-update syntax, the chainable setters, and
/// [`ExecutorConfig::from_env`] all compose:
///
/// ```
/// use qsim::backend::BackendChoice;
/// use qsim::exec::ExecutorConfig;
///
/// let exec = ExecutorConfig::new()
///     .backend(BackendChoice::Dense)
///     .threads(4)
///     .build();
/// assert_eq!(exec.threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Noise model applied per gate/idle/readout (default: ideal).
    pub noise: NoiseModel,
    /// Backend dispatch choice (default: [`BackendChoice::Auto`]). Jobs
    /// may override it per spec ([`JobSpec::with_backend`]).
    pub backend: BackendChoice,
    /// Worker threads for shot execution (clamped to ≥ 1 at build time).
    /// Results never depend on this; see the module docs.
    pub threads: usize,
    /// MPS truncation budget: the worst rigorous truncation-infidelity
    /// bound any trajectory may reach before the run fails with
    /// [`SimError::TruncationBudgetExceeded`]. Default
    /// [`DEFAULT_TRUNCATION_BUDGET`]; `f64::INFINITY` means best-effort.
    /// Jobs may override it per spec ([`JobSpec::with_budget`]).
    pub truncation_budget: f64,
    /// Compiled-plan cache mode (default: the shared process-wide LRU).
    pub plan_cache: PlanCacheMode,
    /// Capacity of a [`PlanCacheMode::Private`] cache, clamped to ≥ 1 at
    /// build time (default: [`plan::PLAN_CACHE_CAPACITY`]). The shared
    /// cache sizes itself once from `QUGEN_PLAN_CACHE` at first use
    /// instead; see [`plan::shared_cache`].
    pub plan_cache_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            noise: NoiseModel::ideal(),
            backend: BackendChoice::Auto,
            threads: 1,
            truncation_budget: DEFAULT_TRUNCATION_BUDGET,
            plan_cache: PlanCacheMode::Shared,
            plan_cache_capacity: plan::PLAN_CACHE_CAPACITY,
        }
    }
}

impl ExecutorConfig {
    /// The default configuration (ideal noise, auto backend, one thread).
    pub fn new() -> Self {
        ExecutorConfig::default()
    }

    /// Reads the execution environment in one place: `QUGEN_BACKEND`
    /// (`auto|dense|tableau|mps[:χ]`), `QUGEN_THREADS` (positive integer),
    /// `QUGEN_TRUNCATION_BUDGET` (`f64`; `inf` for best-effort), and
    /// `QUGEN_PLAN_CACHE` (positive integer). Malformed values warn to
    /// stderr and keep the default, so a typo in a deployment environment
    /// cannot abort a long batch run.
    pub fn from_env() -> Self {
        let mut config = ExecutorConfig::new();
        config.backend = backend::choice_from_env();
        config.plan_cache_capacity = plan::capacity_from_env();
        if let Ok(raw) = std::env::var("QUGEN_THREADS") {
            match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => config.threads = n,
                _ => eprintln!(
                    "warning: QUGEN_THREADS: `{raw}` is not a positive integer; keeping {}",
                    config.threads
                ),
            }
        }
        if let Ok(raw) = std::env::var("QUGEN_TRUNCATION_BUDGET") {
            match raw.trim().parse::<f64>() {
                Ok(b) if b >= 0.0 => config.truncation_budget = b,
                _ => eprintln!(
                    "warning: QUGEN_TRUNCATION_BUDGET: `{raw}` is not a non-negative float; \
                     keeping {}",
                    config.truncation_budget
                ),
            }
        }
        config
    }

    /// Sets the noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the backend dispatch choice.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the MPS truncation budget.
    pub fn truncation_budget(mut self, budget: f64) -> Self {
        self.truncation_budget = budget;
        self
    }

    /// Sets the compiled-plan cache mode.
    pub fn plan_cache(mut self, mode: PlanCacheMode) -> Self {
        self.plan_cache = mode;
        self
    }

    /// Sets the capacity used when [`PlanCacheMode::Private`] builds its
    /// cache (clamped to ≥ 1 at build time).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Builds the executor.
    pub fn build(self) -> Executor {
        Executor::new(self)
    }
}

/// Executes circuits against a noise model on an automatically or
/// explicitly chosen simulation backend.
///
/// For noiseless circuits whose measurements all come last on the dense
/// backend, the executor evolves the state once and samples outcomes from
/// the exact distribution; otherwise it runs one Monte-Carlo trajectory per
/// shot (required for mid-circuit measurement, conditionals, resets and
/// noise). Clifford circuits dispatch to the stabilizer tableau per the
/// rules in [`crate::backend`], which keeps large QEC workloads polynomial.
#[derive(Debug, Clone)]
pub struct Executor {
    config: ExecutorConfig,
    /// Compiled-plan LRU driving the noiseless dense paths. Under
    /// [`PlanCacheMode::Shared`] this is the process-wide
    /// [`plan::shared_cache`]; clones share the same cache either way.
    plan_cache: Arc<Mutex<PlanCache>>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::ideal()
    }
}

impl Executor {
    /// Builds an executor from a typed configuration (the threads field is
    /// clamped to ≥ 1).
    pub fn new(mut config: ExecutorConfig) -> Self {
        config.threads = config.threads.max(1);
        let plan_cache = match config.plan_cache {
            PlanCacheMode::Shared => plan::shared_cache(),
            PlanCacheMode::Private => {
                Arc::new(Mutex::new(PlanCache::new(config.plan_cache_capacity)))
            }
        };
        Executor { config, plan_cache }
    }

    /// A noiseless executor (auto backend, single-threaded) — shorthand
    /// for `ExecutorConfig::new().build()`.
    pub fn ideal() -> Self {
        ExecutorConfig::new().build()
    }

    /// An executor with the given noise model — shorthand for
    /// `ExecutorConfig::new().noise(noise).build()`.
    pub fn with_noise(noise: NoiseModel) -> Self {
        ExecutorConfig::new().noise(noise).build()
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.config.noise
    }

    /// The configured backend choice.
    pub fn backend_choice(&self) -> BackendChoice {
        self.config.backend
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The configured MPS truncation budget.
    pub fn truncation_budget(&self) -> f64 {
        self.config.truncation_budget
    }

    /// The cached compiled plan for `circuit` (compiling on first sight).
    pub fn plan_for(&self, circuit: &Circuit) -> Arc<CircuitPlan> {
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .get_or_compile(circuit)
    }

    /// The cached noisy replay plan for `circuit` under this executor's
    /// noise model (compiling on first sight).
    fn noisy_plan_for(&self, circuit: &Circuit) -> Arc<NoisyPlan> {
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .get_or_compile_noisy(circuit, &self.config.noise)
    }

    /// A snapshot of this executor's plan cache counters. With
    /// [`PlanCacheMode::Shared`] (the default) these cover every sharing
    /// executor in the process, not just this one.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.lock().expect("plan cache poisoned").stats()
    }

    /// Runs `shots` shots with a deterministic seed.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no admissible backend can run the
    /// circuit (qubit caps, or non-Clifford gates on a forced tableau) —
    /// conditions the pre-backend-layer API turned into panics — or when
    /// an MPS run truncates past the configured
    /// [`ExecutorConfig::truncation_budget`]. Classical-register width is
    /// unbounded: outcomes are multi-word.
    pub fn try_run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        // Same two phases as the batch path, for a batch of one: the
        // backend/fast-path dispatch rule lives in `prepare` alone.
        let task = self.prepare(
            circuit,
            shots,
            seed,
            self.config.backend,
            self.config.truncation_budget,
        )?;
        self.run_task_timed(&task)
    }

    /// Runs one [`JobSpec`], honoring its per-job backend and truncation-
    /// budget overrides (falling back to this executor's configuration).
    /// Equivalent to [`Executor::try_run`] when the spec carries no
    /// overrides.
    pub fn try_run_job(&self, spec: &JobSpec) -> Result<Counts, SimError> {
        let task = self.prepare(
            spec.circuit(),
            spec.shots(),
            spec.seed(),
            spec.effective_backend(self.config.backend),
            spec.effective_budget(self.config.truncation_budget),
        )?;
        self.run_task_timed(&task)
    }

    /// Runs a batch of [`JobSpec`]s, resolving each job's backend once and
    /// driving every job's shot chunks through one shared worker pool — so
    /// a suite of small jobs amortizes thread spin-up instead of paying it
    /// per circuit, and a straggler job keeps all workers busy rather than
    /// serializing behind it. Per-job backend and budget overrides are
    /// honored, so heterogeneous batches (the grader's candidate/reference
    /// pairs) share one pool.
    ///
    /// Each job's counts are bit-identical to running
    /// [`Executor::try_run_job`] on it alone, for every thread count: chunk
    /// seeds depend only on the job's own `(seed, chunk index)` and merges
    /// are commutative.
    pub fn try_run_batch(&self, tasks: &[JobSpec]) -> Vec<Result<Counts, SimError>> {
        if self.config.threads <= 1 || tasks.len() <= 1 {
            return tasks.iter().map(|spec| self.try_run_job(spec)).collect();
        }
        // Pooled jobs share the worker pool, so per-job wall time is
        // meaningless; the batch gets one span covering prepare + execute
        // and per-job volume counters at fold time instead.
        exec_metrics().batches.inc();
        let _batch_span = trace::span("executor", "batch").int("jobs", tasks.len() as i128);
        // Phase 1: resolve every backend and evolve every fast-path prefix
        // exactly once per task. Prefix evolution is the dominant cost for
        // sampling-path tasks (one full dense/MPS pass over the circuit),
        // so tasks prepare on the worker pool too; each prepare is
        // deterministic in isolation, keeping results thread-independent.
        let prepared: Vec<Result<BatchTask, SimError>> = {
            let slots: Vec<Mutex<Option<Result<BatchTask, SimError>>>> =
                tasks.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let prep_threads = self.config.threads.min(tasks.len());
            std::thread::scope(|scope| {
                for _ in 0..prep_threads {
                    scope.spawn(|| loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() {
                            break;
                        }
                        let spec = &tasks[t];
                        *slots[t].lock().expect("prepare slot poisoned") = Some(self.prepare(
                            spec.circuit(),
                            spec.shots(),
                            spec.seed(),
                            spec.effective_backend(self.config.backend),
                            spec.effective_budget(self.config.truncation_budget),
                        ));
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("prepare slot poisoned")
                        .expect("every task index was claimed by a worker")
                })
                .collect()
        };
        // Phase 2 (parallel): one global queue of (task, chunk) items.
        let items: Vec<(usize, usize)> = prepared
            .iter()
            .enumerate()
            .filter_map(|(t, p)| p.as_ref().ok().map(|p| (t, p.shots)))
            .flat_map(|(t, shots)| (0..shots.div_ceil(SHOT_CHUNK) as usize).map(move |c| (t, c)))
            .collect();
        let slots: Vec<Mutex<Option<Counts>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
        let worst_truncation: Vec<Mutex<f64>> = tasks.iter().map(|_| Mutex::new(0.0)).collect();
        // Per-task early-abort flags: once one worker's state blows the
        // truncation budget, the whole task is doomed to return the typed
        // error, so remaining chunks are skipped instead of burning the
        // rest of the shot budget. Successful tasks never set their flag,
        // keeping results bit-identical to the serial path.
        let cancelled: Vec<AtomicBool> = tasks.iter().map(|_| AtomicBool::new(false)).collect();
        let next = AtomicUsize::new(0);
        let threads = self.config.threads.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut states: Vec<Option<WorkerCtx>> = tasks.iter().map(|_| None).collect();
                    let mut locals: Vec<Option<Counts>> = tasks.iter().map(|_| None).collect();
                    loop {
                        let w = next.fetch_add(1, Ordering::Relaxed);
                        if w >= items.len() {
                            break;
                        }
                        let (t, chunk) = items[w];
                        if cancelled[t].load(Ordering::Relaxed) {
                            continue;
                        }
                        let task = prepared[t].as_ref().expect("only Ok tasks enqueue items");
                        let chunk_shots = (task.shots - chunk as u64 * SHOT_CHUNK).min(SHOT_CHUNK);
                        let mut rng = StdRng::seed_from_u64(derive_seed(task.seed, chunk as u64));
                        let counts = match &task.plan {
                            BatchPlan::Sampling {
                                sampler,
                                measure_map,
                            } => sample_chunk(
                                task.num_clbits,
                                chunk_shots,
                                &mut rng,
                                measure_map,
                                |rng, basis| sampler.draw_into(rng, basis),
                            ),
                            BatchPlan::PlannedTrajectory { plan } => {
                                let ctx = states[t].get_or_insert_with(|| {
                                    WorkerCtx::Dense(StateVector::zero(plan.num_qubits()))
                                });
                                let WorkerCtx::Dense(sv) = ctx else {
                                    unreachable!("planned tasks only build dense contexts")
                                };
                                plan_trajectory_chunk(
                                    plan,
                                    sv,
                                    task.num_clbits,
                                    chunk_shots,
                                    &mut rng,
                                )
                            }
                            BatchPlan::NoisyReplay { plan } => {
                                let ctx = states[t].get_or_insert_with(|| {
                                    WorkerCtx::Dense(StateVector::zero(plan.num_qubits()))
                                });
                                let WorkerCtx::Dense(sv) = ctx else {
                                    unreachable!("replay tasks only build dense contexts")
                                };
                                noisy_replay_chunk(
                                    plan,
                                    &self.config.noise,
                                    sv,
                                    task.num_clbits,
                                    chunk_shots,
                                    &mut rng,
                                )
                            }
                            BatchPlan::Trajectory { kind, circuit } => {
                                let ctx = states[t].get_or_insert_with(|| {
                                    WorkerCtx::Engine(
                                        kind.build()
                                            .init(circuit.num_qubits())
                                            .expect("backend capacity pre-validated by resolve()"),
                                    )
                                });
                                let WorkerCtx::Engine(state) = ctx else {
                                    unreachable!("trajectory tasks only build engine contexts")
                                };
                                let counts = self.trajectory_chunk(
                                    circuit,
                                    state.as_mut(),
                                    task.num_clbits,
                                    chunk_shots,
                                    &mut rng,
                                );
                                if state.truncation_error() > task.budget {
                                    cancelled[t].store(true, Ordering::Relaxed);
                                }
                                counts
                            }
                        };
                        locals[t]
                            .get_or_insert_with(|| Counts::new(task.num_clbits))
                            .merge(&counts);
                    }
                    // Retire: fold local counts and truncation high-water
                    // marks into the shared per-task slots.
                    for (t, local) in locals.into_iter().enumerate() {
                        if let Some(local) = local {
                            let mut slot = slots[t].lock().expect("batch slot poisoned");
                            match slot.as_mut() {
                                Some(existing) => existing.merge(&local),
                                None => *slot = Some(local),
                            }
                        }
                    }
                    for (t, state) in states.into_iter().enumerate() {
                        if let Some(WorkerCtx::Engine(state)) = state {
                            let mut w = worst_truncation[t]
                                .lock()
                                .expect("truncation slot poisoned");
                            *w = w.max(state.truncation_error());
                        }
                    }
                });
            }
        });
        prepared
            .into_iter()
            .enumerate()
            .map(|(t, p)| {
                let m = exec_metrics();
                m.jobs.inc();
                let result = (|| {
                    let task = p?;
                    m.shots.add(task.shots);
                    m.chunks.add(task.shots.div_ceil(SHOT_CHUNK));
                    if let BatchPlan::Trajectory {
                        kind: BackendKind::Mps { max_bond },
                        ..
                    } = task.plan
                    {
                        let worst = *worst_truncation[t]
                            .lock()
                            .expect("truncation slot poisoned");
                        check_truncation(task.budget, max_bond, worst)?;
                    }
                    let counts = slots[t]
                        .lock()
                        .expect("batch slot poisoned")
                        .take()
                        .unwrap_or_else(|| Counts::new(task.num_clbits));
                    Ok(counts)
                })();
                if result.is_err() {
                    m.job_failures.inc();
                }
                result
            })
            .collect()
    }

    /// Resolves one batch task's backend and evolves its fast-path prefix.
    /// `choice` and `budget` are the task's *effective* backend choice and
    /// truncation budget (per-job overrides already folded in).
    fn prepare<'c>(
        &self,
        circuit: &'c Circuit,
        shots: u64,
        seed: u64,
        choice: BackendChoice,
        budget: f64,
    ) -> Result<BatchTask<'c>, SimError> {
        let kind = backend::resolve(choice, circuit)?;
        let sampling_ok = !self.config.noise.is_noisy() && measures_only_at_end(circuit);
        let plan = match kind {
            BackendKind::Dense if sampling_ok => {
                let plan = self.plan_for(circuit);
                let mut sv = StateVector::zero(circuit.num_qubits());
                plan.apply_unitary(&mut sv);
                BatchPlan::Sampling {
                    sampler: Sampler::Dense(sv),
                    measure_map: plan.measure_map().to_vec(),
                }
            }
            // Noiseless dense circuits with mid-circuit measurement,
            // conditionals or resets: per-shot trajectories, but driven by
            // the cached fused plan instead of per-gate classification.
            BackendKind::Dense if !self.config.noise.is_noisy() => BatchPlan::PlannedTrajectory {
                plan: self.plan_for(circuit),
            },
            // Noisy dense circuits: gate kernels are precompiled once into
            // segments split at the live noise attachment sites and
            // replayed per shot — bit-identical (state, clbits, RNG
            // stream) to per-gate dispatch, minus the per-shot
            // classification cost. Fusion would reassociate the noise
            // channels, so this path precompiles dispatch, not algebra.
            BackendKind::Dense => BatchPlan::NoisyReplay {
                plan: self.noisy_plan_for(circuit),
            },
            // Basis words are multi-word `OutcomeWord`s, so measure-at-end
            // MPS circuits keep the O(n·χ²)-per-shot sampling fast path at
            // any width (the old sampler packed a `u64` and fell back to
            // per-shot trajectory replay past 64 qubits).
            BackendKind::Mps { max_bond } if sampling_ok => {
                let (state, measure_map) = evolve_mps_prefix(circuit, max_bond);
                check_truncation(budget, max_bond, state.truncation_error())?;
                BatchPlan::Sampling {
                    sampler: Sampler::Mps(state.into_sampler()),
                    measure_map,
                }
            }
            _ => BatchPlan::Trajectory { kind, circuit },
        };
        Ok(BatchTask {
            plan,
            kind,
            num_clbits: circuit.num_clbits(),
            shots,
            seed,
            budget,
        })
    }

    /// Executes one prepared task through its plan (the single-task twin
    /// of the batch worker loop; both paths share the chunk partition and
    /// seeding, so their counts are bit-identical).
    fn run_task(&self, task: &BatchTask) -> Result<Counts, SimError> {
        match &task.plan {
            BatchPlan::Sampling {
                sampler,
                measure_map,
            } => Ok(self.chunked_counts(
                task.num_clbits,
                task.shots,
                task.seed,
                || (),
                |(), chunk_shots, rng| {
                    sample_chunk(
                        task.num_clbits,
                        chunk_shots,
                        rng,
                        measure_map,
                        |rng, basis| sampler.draw_into(rng, basis),
                    )
                },
                |()| {},
                &AtomicBool::new(false),
            )),
            BatchPlan::PlannedTrajectory { plan } => Ok(self.chunked_counts(
                task.num_clbits,
                task.shots,
                task.seed,
                || StateVector::zero(plan.num_qubits()),
                |sv, chunk_shots, rng| {
                    plan_trajectory_chunk(plan, sv, task.num_clbits, chunk_shots, rng)
                },
                |_| {},
                &AtomicBool::new(false),
            )),
            BatchPlan::NoisyReplay { plan } => Ok(self.chunked_counts(
                task.num_clbits,
                task.shots,
                task.seed,
                || StateVector::zero(plan.num_qubits()),
                |sv, chunk_shots, rng| {
                    noisy_replay_chunk(
                        plan,
                        &self.config.noise,
                        sv,
                        task.num_clbits,
                        chunk_shots,
                        rng,
                    )
                },
                |_| {},
                &AtomicBool::new(false),
            )),
            BatchPlan::Trajectory { kind, circuit } => {
                self.run_trajectories(*kind, circuit, task.shots, task.seed, task.budget)
            }
        }
    }

    /// [`Executor::run_task`] wrapped in telemetry: per-job wall time into
    /// the backend's `exec.job_us.*` histogram, shot/chunk volume, and one
    /// `executor`-layer trace span. With metrics and tracing both off this
    /// is two relaxed atomic loads and a tail call — no clock read.
    fn run_task_timed(&self, task: &BatchTask) -> Result<Counts, SimError> {
        if !tmetrics::enabled() && !trace::enabled() {
            return self.run_task(task);
        }
        let chunks = task.shots.div_ceil(SHOT_CHUNK);
        let span = trace::span("executor", "job")
            .label("backend", task.kind.name())
            .int("shots", task.shots as i128)
            .int("chunks", chunks as i128);
        let start = Instant::now();
        let result = self.run_task(task);
        let dur_us = start.elapsed().as_micros() as u64;
        let m = exec_metrics();
        m.jobs.inc();
        m.shots.add(task.shots);
        m.chunks.add(chunks);
        m.job_us(task.kind).record(dur_us);
        if result.is_err() {
            m.job_failures.inc();
        }
        span.int("ok", result.is_ok() as i128).finish();
        result
    }

    /// Monte-Carlo path: one trajectory per shot on the resolved backend.
    ///
    /// When a worker's state blows the MPS truncation budget mid-run the
    /// shared cancel flag aborts the remaining chunks: the run is already
    /// doomed to the typed error, so finishing the shot budget would only
    /// burn `~shots×` the cost for the same refusal. Runs within budget
    /// never set the flag and stay bit-identical for every thread count.
    fn run_trajectories(
        &self,
        kind: BackendKind,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
        budget: f64,
    ) -> Result<Counts, SimError> {
        let engine = kind.build();
        let engine = &engine;
        let worst_truncation = Mutex::new(0.0f64);
        let cancel = AtomicBool::new(false);
        let counts = self.chunked_counts(
            circuit.num_clbits(),
            shots,
            seed,
            || {
                engine
                    .init(circuit.num_qubits())
                    .expect("backend capacity pre-validated by resolve()")
            },
            |state, chunk_shots, rng| {
                let counts = self.trajectory_chunk(
                    circuit,
                    state.as_mut(),
                    circuit.num_clbits(),
                    chunk_shots,
                    rng,
                );
                if state.truncation_error() > budget {
                    cancel.store(true, Ordering::Relaxed);
                }
                counts
            },
            |state| {
                let e = state.truncation_error();
                let mut w = worst_truncation.lock().expect("truncation slot poisoned");
                *w = w.max(e);
            },
            &cancel,
        );
        if let BackendKind::Mps { max_bond } = kind {
            let worst = worst_truncation
                .into_inner()
                .expect("truncation slot poisoned");
            check_truncation(budget, max_bond, worst)?;
        }
        Ok(counts)
    }

    /// One chunk of Monte-Carlo trajectories on a reusable state; the
    /// outcome scratch word is reused across the chunk's shots, so ≤ 64-bit
    /// registers record without heap allocation.
    fn trajectory_chunk(
        &self,
        circuit: &Circuit,
        state: &mut dyn BackendState,
        num_clbits: usize,
        chunk_shots: u64,
        rng: &mut StdRng,
    ) -> Counts {
        let mut counts = Counts::new(num_clbits);
        let mut word = OutcomeWord::zero();
        for _ in 0..chunk_shots {
            self.trajectory(circuit, state, rng, &mut word);
            counts.record_word(&word);
        }
        counts
    }

    /// Partitions `shots` into [`SHOT_CHUNK`]-sized chunks and runs them on
    /// up to `self.threads` workers. `make_ctx` builds one reusable
    /// per-worker context (e.g. a simulator state), `run_chunk` executes one
    /// chunk with a chunk-seeded RNG, and `retire` observes each context
    /// after its worker finishes (so callers can fold per-state metadata
    /// like the MPS truncation ledger).
    ///
    /// Each chunk's RNG depends only on `(seed, chunk index)` and
    /// [`Counts::merge`] is commutative outcome-wise addition, so workers
    /// accumulate locally and the final merge order does not matter — the
    /// result is bit-identical to the serial loop with only `threads` (not
    /// `num_chunks`) counts tables alive.
    ///
    /// `cancel` is an early-abort flag: once set (by a `run_chunk` closure
    /// that has concluded the run cannot succeed, e.g. an exceeded MPS
    /// truncation budget), remaining chunks are skipped. The returned
    /// counts are then partial, which is fine because the caller turns a
    /// set flag into an error and discards them; runs that never set the
    /// flag are unaffected.
    #[allow(clippy::too_many_arguments)]
    fn chunked_counts<C, M, F, R>(
        &self,
        num_clbits: usize,
        shots: u64,
        seed: u64,
        make_ctx: M,
        run_chunk: F,
        retire: R,
        cancel: &AtomicBool,
    ) -> Counts
    where
        M: Fn() -> C + Sync,
        F: Fn(&mut C, u64, &mut StdRng) -> Counts + Sync,
        R: Fn(C) + Sync,
    {
        let num_chunks = shots.div_ceil(SHOT_CHUNK) as usize;
        let chunk_shots = |i: usize| (shots - i as u64 * SHOT_CHUNK).min(SHOT_CHUNK);
        let mut merged = Counts::new(num_clbits);
        let threads = self.config.threads.min(num_chunks);
        if threads <= 1 {
            let mut ctx = make_ctx();
            for i in 0..num_chunks {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                merged.merge(&run_chunk(&mut ctx, chunk_shots(i), &mut rng));
            }
            retire(ctx);
            return merged;
        }
        let next = AtomicUsize::new(0);
        let partials: Mutex<Vec<Counts>> = Mutex::new(Vec::with_capacity(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut ctx = make_ctx();
                    let mut local = Counts::new(num_clbits);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_chunks || cancel.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                        local.merge(&run_chunk(&mut ctx, chunk_shots(i), &mut rng));
                    }
                    retire(ctx);
                    partials
                        .lock()
                        .expect("partial counts poisoned")
                        .push(local);
                });
            }
        });
        for partial in partials.into_inner().expect("partial counts poisoned") {
            merged.merge(&partial);
        }
        merged
    }

    /// One full Monte-Carlo trajectory, writing the classical outcome into
    /// the caller's scratch word (cleared first; any register width).
    fn trajectory(
        &self,
        circuit: &Circuit,
        state: &mut dyn BackendState,
        rng: &mut StdRng,
        clbits: &mut OutcomeWord,
    ) {
        state.reinit();
        clbits.clear();
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    state.apply_gate(*gate, qubits);
                    for (q, pauli) in self.config.noise.sample_gate_errors(gate, qubits, rng) {
                        state.apply_pauli(q, pauli);
                    }
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    if clbits.bit(*clbit) == *value {
                        state.apply_gate(*gate, qubits);
                        for (q, pauli) in self.config.noise.sample_gate_errors(gate, qubits, rng) {
                            state.apply_pauli(q, pauli);
                        }
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let raw = state.measure(*qubit, rng);
                    let reported = self.config.noise.sample_readout(raw, rng);
                    clbits.set_bit(*clbit, reported);
                }
                Op::Reset { qubit } => {
                    state.reset(*qubit, rng);
                }
                Op::Barrier { .. } => {
                    for (q, pauli) in self
                        .config
                        .noise
                        .sample_idle_errors(state.num_qubits(), rng)
                    {
                        state.apply_pauli(q, pauli);
                    }
                }
            }
        }
    }

    /// The noiseless outcome distribution: exact for dense-sized circuits
    /// whose measurements all come last, estimated from
    /// 16384 auto-dispatched shots otherwise (mid-circuit measurement,
    /// conditionals, or Clifford circuits past the dense cap). The sampled
    /// fallback runs single-threaded; pass a worker count through
    /// [`Executor::try_ideal_distribution_threaded`] when the fallback
    /// workload is large.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no backend can run the circuit.
    pub fn try_ideal_distribution(circuit: &Circuit, seed: u64) -> Result<Distribution, SimError> {
        Self::try_ideal_distribution_threaded(circuit, seed, 1)
    }

    /// [`Executor::try_ideal_distribution`] with a worker-thread count for
    /// the sampled fallback (results are thread-count independent; see the
    /// module docs).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no backend can run the circuit.
    pub fn try_ideal_distribution_threaded(
        circuit: &Circuit,
        seed: u64,
        threads: usize,
    ) -> Result<Distribution, SimError> {
        if measures_only_at_end(circuit) && circuit.num_qubits() <= backend::DENSE_QUBIT_CAP {
            let span = if tmetrics::enabled() || trace::enabled() {
                exec_metrics().distributions.inc();
                Some(
                    trace::span("executor", "distribution")
                        .label("backend", "exact")
                        .int("qubits", circuit.num_qubits() as i128),
                )
            } else {
                None
            };
            let plan = plan::shared_cache()
                .lock()
                .expect("plan cache poisoned")
                .get_or_compile(circuit);
            let mut sv = StateVector::zero(circuit.num_qubits());
            plan.apply_unitary(&mut sv);
            let mut dist = Distribution::new(circuit.num_clbits());
            let mut word = OutcomeWord::zero();
            for (basis, p) in sv.probabilities().into_iter().enumerate() {
                if p <= 1e-15 {
                    continue;
                }
                word.clear();
                for &(q, c) in plan.measure_map() {
                    if (basis >> q) & 1 == 1 {
                        word.set_bit(c, true);
                    }
                }
                let existing = dist.get_word(&word);
                dist.set(word.clone(), existing + p);
            }
            if let Some(span) = span {
                span.int("ok", 1).finish();
            }
            Ok(dist)
        } else {
            ExecutorConfig::new()
                .threads(threads)
                .build()
                .try_run(circuit, DISTRIBUTION_SHOTS, seed)
                .map(|counts| counts.to_distribution())
        }
    }

    /// Panicking wrapper around [`Executor::try_ideal_distribution`].
    ///
    /// # Panics
    ///
    /// Panics when the circuit cannot be simulated.
    pub fn ideal_distribution(circuit: &Circuit, seed: u64) -> Distribution {
        match Self::try_ideal_distribution(circuit, seed) {
            Ok(dist) => dist,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Runs the unitary portion only and returns the final state.
    ///
    /// # Panics
    ///
    /// Panics when the circuit contains measurements, resets or conditional
    /// gates.
    pub fn statevector(circuit: &Circuit) -> StateVector {
        assert!(
            circuit.is_unitary_only(),
            "statevector() requires a measurement-free circuit"
        );
        let mut sv = StateVector::zero(circuit.num_qubits());
        for op in circuit.ops() {
            if let Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        sv
    }
}

/// One prepared batch task: how its chunks execute.
enum BatchPlan<'c> {
    /// Sampling fast path: the unitary prefix evolved once, shared
    /// read-only; chunks draw whole basis words from the [`Sampler`].
    Sampling {
        sampler: Sampler,
        measure_map: Vec<(usize, usize)>,
    },
    /// Monte-Carlo path on a compiled plan: noiseless dense circuits with
    /// mid-circuit measurement/conditionals/resets. Each worker lazily
    /// builds its own state vector; the plan itself is shared read-only.
    PlannedTrajectory { plan: Arc<CircuitPlan> },
    /// Monte-Carlo path on a noisy replay plan: dense circuits under a
    /// noisy model replay precompiled kernel segments between noise
    /// insertion points, bit-identical to per-gate dispatch.
    NoisyReplay { plan: Arc<NoisyPlan> },
    /// Monte-Carlo path: each worker lazily builds its own state per task.
    Trajectory {
        kind: BackendKind,
        circuit: &'c Circuit,
    },
}

/// A frozen measure-at-end prefix both sampling engines draw shots from —
/// the single `draw` seam the dense and MPS fast paths share, so the
/// executor has one sampling arm instead of twin dense/MPS copies.
enum Sampler {
    /// Dense state vector: exact index sampling from `2^n` probabilities.
    Dense(StateVector),
    /// MPS train with precomputed right environments: `O(n·χ²)` per shot.
    Mps(MpsSampler),
}

impl Sampler {
    /// Draws one basis word (bit `i` = qubit `i`) into the scratch word.
    fn draw_into(&self, rng: &mut StdRng, basis: &mut OutcomeWord) {
        match self {
            Sampler::Dense(sv) => basis.assign_u64(sv.sample(rng) as u64),
            Sampler::Mps(sampler) => sampler.sample_into(rng, basis),
        }
    }
}

/// A batch task with its execution plan and shot bookkeeping.
struct BatchTask<'c> {
    plan: BatchPlan<'c>,
    /// The resolved backend (telemetry keys per-job wall time by it).
    kind: BackendKind,
    num_clbits: usize,
    shots: u64,
    seed: u64,
    /// Effective MPS truncation budget (per-job override or executor
    /// default, folded in at `prepare` time).
    budget: f64,
}

/// The truncation budget check MPS runs pass through: `error_bound` is the
/// worst per-trajectory rigorous infidelity bound observed.
fn check_truncation(budget: f64, max_bond: usize, error_bound: f64) -> Result<(), SimError> {
    // Budget consumption in ‰ — how close MPS runs sail to their budget
    // is invisible from pass/fail alone. Unbounded budgets record nothing
    // (consumption of an infinite budget is always 0).
    if tmetrics::enabled() && budget > 0.0 && budget.is_finite() {
        let permille = (error_bound / budget * 1000.0).min(u64::MAX as f64) as u64;
        exec_metrics().truncation_permille.record(permille);
    }
    if error_bound > budget {
        exec_metrics().truncation_exceeded.inc();
        Err(SimError::TruncationBudgetExceeded {
            max_bond,
            error_bound,
            budget,
        })
    } else {
        Ok(())
    }
}

/// Per-worker reusable simulation context in the batch loop: a boxed
/// backend engine for unfused trajectories, or a bare state vector for
/// plan-driven ones.
enum WorkerCtx {
    Engine(Box<dyn BackendState>),
    Dense(StateVector),
}

/// One chunk of plan-driven noiseless trajectories on a reusable state
/// vector; the outcome scratch word is reused across the chunk's shots, so
/// ≤ 64-bit registers record without heap allocation.
fn plan_trajectory_chunk(
    plan: &CircuitPlan,
    sv: &mut StateVector,
    num_clbits: usize,
    chunk_shots: u64,
    rng: &mut StdRng,
) -> Counts {
    let mut counts = Counts::new(num_clbits);
    let mut word = OutcomeWord::zero();
    for _ in 0..chunk_shots {
        plan.run_trajectory(sv, rng, &mut word);
        counts.record_word(&word);
    }
    counts
}

/// One chunk of noisy replay trajectories on a reusable state vector: the
/// precompiled twin of the per-gate `trajectory_chunk`, sharing its RNG
/// consumption order exactly (see [`crate::replay`] for the bit-identity
/// contract).
fn noisy_replay_chunk(
    plan: &NoisyPlan,
    noise: &NoiseModel,
    sv: &mut StateVector,
    num_clbits: usize,
    chunk_shots: u64,
    rng: &mut StdRng,
) -> Counts {
    let mut counts = Counts::new(num_clbits);
    let mut word = OutcomeWord::zero();
    for _ in 0..chunk_shots {
        plan.run_trajectory(sv, noise, rng, &mut word);
        counts.record_word(&word);
    }
    counts
}

/// Evolves a measure-at-end circuit's unitary prefix on the MPS engine.
fn evolve_mps_prefix(circuit: &Circuit, max_bond: usize) -> (MpsState, Vec<(usize, usize)>) {
    let mut state = MpsState::new(circuit.num_qubits(), max_bond);
    let mut measure_map: Vec<(usize, usize)> = Vec::new();
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } => state.apply_gate(*gate, qubits),
            Op::Measure { qubit, clbit } => measure_map.push((*qubit, *clbit)),
            Op::Barrier { .. } => {}
            _ => unreachable!("fast path precondition violated"),
        }
    }
    (state, measure_map)
}

/// Draws one chunk of basis words from `draw` and packs them into classical
/// outcome words through the measurement map. Both scratch words are reused
/// across the chunk's shots, keeping ≤ 64-bit registers allocation-free.
fn sample_chunk(
    num_clbits: usize,
    chunk_shots: u64,
    rng: &mut StdRng,
    measure_map: &[(usize, usize)],
    draw: impl Fn(&mut StdRng, &mut OutcomeWord),
) -> Counts {
    let mut counts = Counts::new(num_clbits);
    let mut basis = OutcomeWord::zero();
    let mut word = OutcomeWord::zero();
    for _ in 0..chunk_shots {
        draw(rng, &mut basis);
        word.clear();
        for &(q, c) in measure_map {
            if basis.bit(q) {
                word.set_bit(c, true);
            }
        }
        counts.record_word(&word);
    }
    counts
}

/// `true` when the circuit has no conditionals/resets and every measurement
/// comes after the last gate.
pub fn measures_only_at_end(circuit: &Circuit) -> bool {
    let mut seen_measure = false;
    for op in circuit.ops() {
        match op {
            Op::CondGate { .. } | Op::Reset { .. } => return false,
            Op::Measure { .. } => seen_measure = true,
            Op::Gate { .. } => {
                if seen_measure {
                    return false;
                }
            }
            Op::Barrier { .. } => {}
        }
    }
    true
}

/// Convenience: sample a random `u64` stream deterministically from a seed
/// plus an index (used by the shot chunking and by benches to decorrelate
/// sweeps).
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    // SplitMix64 step.
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples `n` outcomes from an arbitrary discrete distribution (utility for
/// synthetic workloads).
pub fn sample_distribution(dist: &Distribution, n: u64, seed: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(&OutcomeWord, f64)> = dist.iter().collect();
    let zero = OutcomeWord::zero();
    let mut counts = Counts::new(dist.num_clbits());
    for _ in 0..n {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = pairs.last().map(|&(o, _)| o).unwrap_or(&zero);
        for &(o, p) in &pairs {
            acc += p;
            if r < acc {
                chosen = o;
                break;
            }
        }
        counts.record_word(chosen);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use qcir::gate::Gate;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    fn ghz(n: usize) -> Circuit {
        let mut qc = Circuit::new(n, n);
        qc.h(0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        qc
    }

    /// Forced-backend executor shorthand for the tests below.
    fn on_backend(choice: BackendChoice) -> Executor {
        ExecutorConfig::new().backend(choice).build()
    }

    #[test]
    fn ideal_bell_is_correlated() {
        let counts = Executor::ideal().try_run(&bell(), 2000, 9).unwrap();
        assert_eq!(counts.shots(), 2000);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn fast_and_trajectory_paths_agree() {
        let qc = bell();
        let fast = Executor::ideal()
            .try_run(&qc, 4000, 1)
            .unwrap()
            .to_distribution();
        // Force the noisy replay path with a zero-rate "noisy" model.
        let mut zero = NoiseModel::uniform_depolarizing(0.0);
        zero.idle_error = 0.0;
        zero.readout_error = 1e-300; // non-zero flag, negligible effect
        let slow = Executor::with_noise(zero)
            .try_run(&qc, 4000, 1)
            .unwrap()
            .to_distribution();
        assert!(fast.tvd(&slow) < 0.05);
    }

    #[test]
    fn ideal_distribution_is_exact() {
        let dist = Executor::ideal_distribution(&bell(), 0);
        assert!((dist.get(0b00) - 0.5).abs() < 1e-12);
        assert!((dist.get(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Executor::ideal().try_run(&bell(), 100, 42).unwrap();
        let b = Executor::ideal().try_run(&bell(), 100, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn readout_noise_pollutes_deterministic_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let nm = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.2,
            idle_error: 0.0,
            label: "ro".into(),
        };
        let counts = Executor::with_noise(nm).try_run(&qc, 20_000, 5).unwrap();
        let p_wrong = counts.probability(0b0);
        assert!((p_wrong - 0.2).abs() < 0.02, "p_wrong = {p_wrong}");
    }

    #[test]
    fn conditional_teleport_like_correction_works() {
        // Prepare |1> on q0, measure into c0, then conditionally flip q1.
        let mut qc = Circuit::new(2, 2);
        qc.x(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        let counts = Executor::ideal().try_run(&qc, 200, 3).unwrap();
        assert_eq!(counts.count(0b11), 200);
    }

    #[test]
    fn reset_mid_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).reset(0).measure(0, 0);
        let counts = Executor::ideal().try_run(&qc, 100, 4).unwrap();
        assert_eq!(counts.count(0), 100);
    }

    #[test]
    fn depolarizing_noise_reduces_fidelity() {
        let qc = bell();
        let noisy = Executor::with_noise(profiles::noisy_nisq())
            .try_run(&qc, 5000, 6)
            .unwrap();
        let ideal = Executor::ideal_distribution(&qc, 0);
        let tvd = noisy.to_distribution().tvd(&ideal);
        assert!(tvd > 0.02, "noise should be visible, tvd = {tvd}");
        assert!(tvd < 0.6, "noise should not destroy the state, tvd = {tvd}");
    }

    #[test]
    fn measures_only_at_end_detection() {
        assert!(measures_only_at_end(&bell()));
        let mut mid = Circuit::new(2, 2);
        mid.h(0).measure(0, 0).x(1).measure(1, 1);
        assert!(!measures_only_at_end(&mid));
        let mut cond = Circuit::new(1, 1);
        cond.measure(0, 0);
        cond.cond_gate(Gate::X, &[0], 0, true);
        assert!(!measures_only_at_end(&cond));
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(derive_seed(1, 0), a);
    }

    #[test]
    fn sample_distribution_matches_probabilities() {
        let mut d = Distribution::new(1);
        d.set(0, 0.25);
        d.set(1, 0.75);
        let counts = sample_distribution(&d, 20_000, 8);
        assert!((counts.probability(1) - 0.75).abs() < 0.02);
    }

    #[test]
    fn forced_backends_agree_on_bell() {
        let dense = on_backend(BackendChoice::Dense)
            .try_run(&bell(), 4000, 11)
            .unwrap()
            .to_distribution();
        let tableau = on_backend(BackendChoice::Tableau)
            .try_run(&bell(), 4000, 11)
            .unwrap()
            .to_distribution();
        assert!(dense.tvd(&tableau) < 0.05);
    }

    #[test]
    fn auto_dispatch_runs_large_clifford_circuits() {
        // 49 qubits: far past the dense cap, fine on the tableau.
        let counts = Executor::ideal().try_run(&ghz(49), 256, 13).unwrap();
        assert_eq!(counts.shots(), 256);
        assert_eq!(counts.distinct_outcomes(), 2);
        let all_ones = (1u64 << 49) - 1;
        assert_eq!(counts.count(0) + counts.count(all_ones), 256);
    }

    #[test]
    fn try_run_returns_typed_errors() {
        // Non-Clifford AND long-range past the dense cap: no backend can
        // run it (short-range circuits would dispatch to the MPS engine).
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).cp(0.4, 0, 29).measure(0, 0);
        assert!(matches!(
            Executor::ideal().try_run(&big, 16, 0),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                ..
            })
        ));
        // Forced tableau on a T gate.
        let mut t = Circuit::new(1, 1);
        t.t(0).measure(0, 0);
        assert!(matches!(
            on_backend(BackendChoice::Tableau).try_run(&t, 16, 0),
            Err(SimError::NonCliffordGate { gate: Gate::T })
        ));
    }

    #[test]
    fn wide_classical_registers_execute_end_to_end() {
        // 70 clbits: past the old one-word cap. The trajectory path writes
        // and conditions on spilled bits, and counts merge across chunks.
        let mut qc = Circuit::new(2, 70);
        qc.x(0).measure(0, 69);
        qc.cond_gate(Gate::X, &[1], 69, true);
        qc.measure(1, 0);
        let counts = Executor::ideal().try_run(&qc, 300, 3).unwrap();
        assert_eq!(counts.shots(), 300);
        let mut expected = OutcomeWord::from(1u64);
        expected.set_bit(69, true);
        assert_eq!(counts.count_word(&expected), 300);
        // Parallel chunking stays bit-identical on wide registers.
        let parallel = ExecutorConfig::new()
            .threads(4)
            .build()
            .try_run(&qc, 3000, 9)
            .unwrap();
        let serial = Executor::ideal().try_run(&qc, 3000, 9).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_shots_are_bit_identical_to_serial() {
        let qc = ghz(8);
        let noisy = profiles::noisy_nisq();
        for threads in [2usize, 4, 7] {
            let serial = Executor::with_noise(noisy.clone())
                .try_run(&qc, 5000, 21)
                .unwrap();
            let parallel = ExecutorConfig::new()
                .noise(noisy.clone())
                .threads(threads)
                .build()
                .try_run(&qc, 5000, 21)
                .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Also on the dense sampling fast path and the tableau path.
        let fast_serial = Executor::ideal().try_run(&qc, 5000, 22).unwrap();
        let fast_parallel = ExecutorConfig::new()
            .threads(4)
            .build()
            .try_run(&qc, 5000, 22)
            .unwrap();
        assert_eq!(fast_serial, fast_parallel);
        let tab = ExecutorConfig::new().backend(BackendChoice::Tableau);
        assert_eq!(
            tab.clone().build().try_run(&qc, 3000, 23).unwrap(),
            tab.threads(3).build().try_run(&qc, 3000, 23).unwrap()
        );
    }

    #[test]
    fn shot_totals_survive_chunking() {
        // Shot counts that are not multiples of SHOT_CHUNK partition cleanly.
        let exec = ExecutorConfig::new().threads(4).build();
        for shots in [0u64, 1, SHOT_CHUNK - 1, SHOT_CHUNK, SHOT_CHUNK + 1, 2500] {
            let counts = exec.try_run(&bell(), shots, 30).unwrap();
            assert_eq!(counts.shots(), shots);
        }
    }

    #[test]
    fn try_ideal_distribution_handles_large_clifford() {
        let dist = Executor::try_ideal_distribution(&ghz(30), 2).unwrap();
        let all_ones = (1u64 << 30) - 1;
        assert!((dist.get(0) - 0.5).abs() < 0.05);
        assert!((dist.get(all_ones) - 0.5).abs() < 0.05);
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).cp(0.4, 0, 29).measure(0, 0);
        assert!(Executor::try_ideal_distribution(&big, 2).is_err());
    }

    #[test]
    fn forced_mps_agrees_with_dense_on_bell() {
        let dense = on_backend(BackendChoice::Dense)
            .try_run(&bell(), 4000, 11)
            .unwrap()
            .to_distribution();
        let mps = on_backend(BackendChoice::Mps { max_bond: 4 })
            .try_run(&bell(), 4000, 12)
            .unwrap()
            .to_distribution();
        assert!(dense.tvd(&mps) < 0.05);
    }

    #[test]
    fn auto_runs_short_range_general_circuits_past_the_dense_cap() {
        // 30 qubits of nearest-neighbor T+CX: refused outright before the
        // MPS backend existed.
        let n = 30;
        let mut qc = Circuit::new(n, n);
        for q in 0..n {
            qc.h(q);
        }
        for q in 0..n - 1 {
            qc.t(q);
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        let counts = Executor::ideal().try_run(&qc, 128, 17).unwrap();
        assert_eq!(counts.shots(), 128);
    }

    #[test]
    fn mps_trajectory_path_handles_midcircuit_measurement() {
        // Teleport-like conditional on the forced MPS engine.
        let mut qc = Circuit::new(2, 2);
        qc.x(0).t(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        let counts = on_backend(BackendChoice::Mps { max_bond: 4 })
            .try_run(&qc, 200, 3)
            .unwrap();
        assert_eq!(counts.count(0b11), 200);
    }

    #[test]
    fn truncation_budget_is_enforced_and_typed() {
        // χ = 1 cannot hold a Bell pair: the run must refuse, not lie.
        let exec = on_backend(BackendChoice::Mps { max_bond: 1 });
        assert!(matches!(
            exec.try_run(&bell(), 100, 5),
            Err(SimError::TruncationBudgetExceeded { max_bond: 1, .. })
        ));
        // An explicit infinite budget lets the truncated run through.
        let counts = ExecutorConfig::new()
            .backend(BackendChoice::Mps { max_bond: 1 })
            .truncation_budget(f64::INFINITY)
            .build()
            .try_run(&bell(), 100, 5)
            .unwrap();
        assert_eq!(counts.shots(), 100);
        // The budget also applies on the per-shot trajectory path.
        let mut mid = Circuit::new(2, 2);
        mid.h(0).cx(0, 1).measure(0, 0).measure(1, 1).reset(0);
        assert!(matches!(
            exec.try_run(&mid, 50, 5),
            Err(SimError::TruncationBudgetExceeded { .. })
        ));
    }

    #[test]
    fn doomed_mps_trajectory_runs_abort_early_with_the_typed_error() {
        // χ = 1 blows the budget on the very first trajectory; with many
        // chunks queued, the cancel flag lets the run refuse without
        // replaying the whole shot budget. The refusal stays typed on both
        // the serial and the parallel chunk loop, and on the batch path.
        let mut mid = Circuit::new(2, 2);
        mid.h(0).cx(0, 1).measure(0, 0).measure(1, 1).reset(0);
        let exec = on_backend(BackendChoice::Mps { max_bond: 1 });
        let shots = 16 * SHOT_CHUNK;
        assert!(matches!(
            exec.try_run(&mid, shots, 5),
            Err(SimError::TruncationBudgetExceeded { max_bond: 1, .. })
        ));
        let parallel = ExecutorConfig::new()
            .backend(BackendChoice::Mps { max_bond: 1 })
            .threads(4)
            .build();
        assert!(matches!(
            parallel.try_run(&mid, shots, 5),
            Err(SimError::TruncationBudgetExceeded { max_bond: 1, .. })
        ));
        let mid = Arc::new(mid);
        let batch = parallel.try_run_batch(&[
            JobSpec::new(Arc::clone(&mid), shots, 5),
            JobSpec::new(Arc::clone(&mid), shots, 6),
        ]);
        for result in batch {
            assert!(matches!(
                result,
                Err(SimError::TruncationBudgetExceeded { max_bond: 1, .. })
            ));
        }
    }

    #[test]
    fn mps_parallel_sampling_is_deterministic() {
        let mut qc = Circuit::new(6, 6);
        for q in 0..6 {
            qc.h(q);
            qc.t(q);
        }
        for q in 0..5 {
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        let serial = on_backend(BackendChoice::Mps { max_bond: 8 })
            .try_run(&qc, 5000, 21)
            .unwrap();
        let parallel = ExecutorConfig::new()
            .backend(BackendChoice::Mps { max_bond: 8 })
            .threads(4)
            .build()
            .try_run(&qc, 5000, 21)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn planned_trajectories_match_the_unfused_engine_path() {
        // Noiseless dense with mid-circuit measurement: runs on the
        // plan-driven trajectory path. A zero-rate "noisy" model forces the
        // same circuit down the unfused noisy replay path; the
        // distributions must agree.
        let mut qc = Circuit::new(3, 3);
        qc.h(0).t(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.h(2).cx(2, 1).measure(1, 1).measure(2, 2).reset(2);
        let planned = Executor::ideal()
            .try_run(&qc, 6000, 31)
            .unwrap()
            .to_distribution();
        let mut zero = NoiseModel::uniform_depolarizing(0.0);
        zero.idle_error = 0.0;
        zero.readout_error = 1e-300;
        let unfused = Executor::with_noise(zero)
            .try_run(&qc, 6000, 31)
            .unwrap()
            .to_distribution();
        assert!(planned.tvd(&unfused) < 0.05);
        // The planned path stays bit-identical across thread counts.
        let serial = Executor::ideal().try_run(&qc, 5000, 32).unwrap();
        let parallel = ExecutorConfig::new()
            .threads(4)
            .build()
            .try_run(&qc, 5000, 32)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn warm_cached_plan_runs_are_bit_identical_to_cold_runs() {
        let mut qc = Circuit::new(4, 4);
        qc.h(0).t(1).cx(0, 1).measure(0, 0);
        qc.cond_gate(Gate::X, &[2], 0, true);
        qc.cx(1, 2).h(3).cx(2, 3).measure_all();
        // Cold: fresh private cache compiles the plan during the run.
        let private = || {
            ExecutorConfig::new()
                .plan_cache(PlanCacheMode::Private)
                .build()
        };
        let cold = private().try_run(&qc, 3000, 77).unwrap();
        // Warm: the plan is compiled and cached before the run starts.
        let exec = private();
        let _ = exec.plan_for(&qc);
        let warm = exec.try_run(&qc, 3000, 77).unwrap();
        assert_eq!(cold, warm);
        // Both cold and warm runs on the sampling fast path, too.
        let mut end = Circuit::new(3, 3);
        end.h(0).cx(0, 1).t(1).cx(1, 2).measure_all();
        let cold = private().try_run(&end, 3000, 78).unwrap();
        let exec = private();
        let _ = exec.plan_for(&end);
        assert_eq!(cold, exec.try_run(&end, 3000, 78).unwrap());
    }

    #[test]
    fn batch_matches_individual_runs_for_every_thread_count() {
        let qc_bell = bell();
        let qc_ghz = ghz(8);
        let mut qc_mid = Circuit::new(3, 3);
        qc_mid.h(0).measure(0, 0);
        qc_mid.cond_gate(Gate::X, &[1], 0, true);
        qc_mid.measure(1, 1).measure(2, 2);
        let mut qc_mps = Circuit::new(5, 5);
        for q in 0..5 {
            qc_mps.h(q);
            qc_mps.t(q);
        }
        for q in 0..4 {
            qc_mps.cx(q, q + 1);
        }
        qc_mps.measure_all();
        let mut qc_bad = Circuit::new(30, 30);
        qc_bad.h(0).t(0).cp(0.4, 0, 29).measure(0, 0);
        let qc_bell = Arc::new(qc_bell);
        let tasks: Vec<JobSpec> = vec![
            JobSpec::new(Arc::clone(&qc_bell), 3000, 1),
            JobSpec::new(qc_ghz, 2500, 2),
            JobSpec::new(qc_mid, 1500, 3),
            JobSpec::new(qc_mps, 2000, 4),
            JobSpec::new(qc_bad, 100, 5),
            JobSpec::new(qc_bell, 0, 6),
        ];
        for (noise, threads) in [
            (NoiseModel::ideal(), 1usize),
            (NoiseModel::ideal(), 4),
            (profiles::noisy_nisq(), 3),
        ] {
            let exec = ExecutorConfig::new().noise(noise).threads(threads).build();
            let batch = exec.try_run_batch(&tasks);
            for (i, spec) in tasks.iter().enumerate() {
                let single = exec.try_run_job(spec);
                assert_eq!(batch[i], single, "task {i}, threads {threads}");
            }
            assert!(matches!(batch[4], Err(SimError::QubitCapExceeded { .. })));
        }
    }

    #[test]
    fn per_job_overrides_beat_the_executor_config_in_batches() {
        // One executor, heterogeneous backends: the bell job forced onto
        // the tableau must match a tableau-configured executor exactly,
        // while its neighbor inherits the executor's dense default.
        let qc = Arc::new(bell());
        let exec = ExecutorConfig::new()
            .backend(BackendChoice::Dense)
            .threads(4)
            .build();
        let batch = exec.try_run_batch(&[
            JobSpec::new(Arc::clone(&qc), 3000, 7).with_backend(BackendChoice::Tableau),
            JobSpec::new(Arc::clone(&qc), 3000, 7),
        ]);
        let tableau = on_backend(BackendChoice::Tableau)
            .try_run(&qc, 3000, 7)
            .unwrap();
        let dense = on_backend(BackendChoice::Dense)
            .try_run(&qc, 3000, 7)
            .unwrap();
        assert_eq!(batch[0].as_ref().unwrap(), &tableau);
        assert_eq!(batch[1].as_ref().unwrap(), &dense);
        // A per-job budget override rescues an otherwise-refused MPS job.
        let exec = on_backend(BackendChoice::Mps { max_bond: 1 });
        assert!(exec
            .try_run_job(&JobSpec::new(Arc::clone(&qc), 100, 5))
            .is_err());
        let rescued = exec
            .try_run_job(&JobSpec::new(Arc::clone(&qc), 100, 5).with_budget(f64::INFINITY))
            .unwrap();
        assert_eq!(rescued.shots(), 100);
    }

    #[test]
    fn executor_config_from_env_parses_and_survives_garbage() {
        // Env-var tests share process state: one test covers all cases
        // sequentially rather than racing parallel test threads.
        let keys = [
            "QUGEN_BACKEND",
            "QUGEN_THREADS",
            "QUGEN_TRUNCATION_BUDGET",
            "QUGEN_PLAN_CACHE",
        ];
        let saved: Vec<_> = keys.iter().map(|k| std::env::var(k).ok()).collect();
        std::env::set_var("QUGEN_BACKEND", "mps:32");
        std::env::set_var("QUGEN_THREADS", "8");
        std::env::set_var("QUGEN_TRUNCATION_BUDGET", "0.5");
        std::env::set_var("QUGEN_PLAN_CACHE", "128");
        let config = ExecutorConfig::from_env();
        assert_eq!(config.backend, BackendChoice::Mps { max_bond: 32 });
        assert_eq!(config.threads, 8);
        assert_eq!(config.truncation_budget, 0.5);
        assert_eq!(config.plan_cache_capacity, 128);
        // The configured capacity reaches a private cache verbatim.
        let exec = config.plan_cache(PlanCacheMode::Private).build();
        assert_eq!(
            exec.plan_cache.lock().unwrap().capacity(),
            128,
            "private cache must be sized from the config"
        );
        std::env::set_var("QUGEN_THREADS", "zero");
        std::env::set_var("QUGEN_TRUNCATION_BUDGET", "-3");
        std::env::set_var("QUGEN_PLAN_CACHE", "many");
        let config = ExecutorConfig::from_env();
        assert_eq!(config.threads, 1, "garbage keeps the default");
        assert_eq!(config.truncation_budget, DEFAULT_TRUNCATION_BUDGET);
        assert_eq!(config.plan_cache_capacity, plan::PLAN_CACHE_CAPACITY);
        std::env::set_var("QUGEN_PLAN_CACHE", "0");
        assert_eq!(
            plan::try_capacity_from_env(),
            Err(plan::PlanCacheParseError::ZeroCapacity)
        );
        assert_eq!(
            ExecutorConfig::from_env().plan_cache_capacity,
            plan::PLAN_CACHE_CAPACITY,
            "zero warns and keeps the default"
        );
        std::env::set_var("QUGEN_TRUNCATION_BUDGET", "inf");
        assert_eq!(ExecutorConfig::from_env().truncation_budget, f64::INFINITY);
        for (k, v) in keys.iter().zip(saved) {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }

    #[test]
    fn noisy_replay_matches_per_gate_dispatch_across_thread_counts() {
        // The noisy dense path replays precompiled kernel segments; this
        // pins its counts bit-identically to a hand-rolled per-gate
        // reference that replicates the old dispatch loop (same chunk
        // partition, same derived seeds, same RNG consumption order).
        let mut c = Circuit::new(3, 3);
        c.h(0).cx(0, 1).t(1).rz(0.4, 2).barrier_all();
        c.swap(1, 2).ccx(0, 1, 2).measure(0, 0);
        c.cond_gate(Gate::X, &[2], 0, true);
        c.reset(0);
        c.h(0).cz(0, 2).measure(1, 1).measure(2, 2);

        let mut noise = NoiseModel::ideal();
        noise.one_qubit_depol = 0.02;
        noise.two_qubit_depol = 0.05;
        noise.idle_error = 0.01;
        noise.readout_error = 0.03;

        let shots = 3 * SHOT_CHUNK + 17; // force multiple chunks + a ragged tail
        let seed = 0xD15EA5E;

        // Per-gate reference: the same chunk partition and seed derivation
        // the executor uses, but each trajectory dispatched gate by gate.
        let reference_exec = ExecutorConfig::new().noise(noise.clone()).build();
        let mut expected = Counts::new(c.num_clbits());
        let chunks = shots.div_ceil(SHOT_CHUNK);
        let mut state = BackendKind::Dense
            .build()
            .init(c.num_qubits())
            .expect("3 qubits fit the dense backend");
        let mut word = OutcomeWord::zero();
        for chunk in 0..chunks {
            let chunk_shots = (shots - chunk * SHOT_CHUNK).min(SHOT_CHUNK);
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, chunk));
            for _ in 0..chunk_shots {
                reference_exec.trajectory(&c, state.as_mut(), &mut rng, &mut word);
                expected.record_word(&word);
            }
        }

        for threads in [1usize, 4] {
            let counts = ExecutorConfig::new()
                .noise(noise.clone())
                .threads(threads)
                .build()
                .try_run(&c, shots, seed)
                .unwrap();
            assert_eq!(
                counts, expected,
                "noisy replay must be bit-identical at {threads} thread(s)"
            );
        }
    }
}
