//! Circuit execution: shots, trajectories, conditionals, backend dispatch
//! and multi-threaded shot batching.
//!
//! # Shot chunking and determinism
//!
//! Shots are partitioned into fixed [`SHOT_CHUNK`]-sized chunks; chunk `i`
//! draws from its own RNG seeded with [`derive_seed`]`(seed, i)`, and the
//! per-chunk [`Counts`] are merged by commutative outcome-wise addition.
//! Because the partition and the seeds depend only on `(shots, seed)` —
//! never on thread scheduling or merge order — a run with
//! [`Executor::with_threads`]`(n)` is bit-identical to the single-threaded
//! run for every `n`.

use crate::backend::{self, BackendChoice, BackendKind, BackendState, SimError};
use crate::dist::{Counts, Distribution};
use crate::noise::NoiseModel;
use crate::state::StateVector;
use qcir::circuit::{Circuit, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shots per RNG chunk (see the module docs on determinism).
pub const SHOT_CHUNK: u64 = 1024;

/// Shots used by the sampled [`Executor::ideal_distribution`] fallback.
const DISTRIBUTION_SHOTS: u64 = 16_384;

/// A reasonable worker count for parallel shot execution on this host.
///
/// Results never depend on the thread count (see the module docs), so this
/// is purely a throughput knob.
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes circuits against a noise model on an automatically or
/// explicitly chosen simulation backend.
///
/// For noiseless circuits whose measurements all come last on the dense
/// backend, the executor evolves the state once and samples outcomes from
/// the exact distribution; otherwise it runs one Monte-Carlo trajectory per
/// shot (required for mid-circuit measurement, conditionals, resets and
/// noise). Clifford circuits dispatch to the stabilizer tableau per the
/// rules in [`crate::backend`], which keeps large QEC workloads polynomial.
#[derive(Debug, Clone)]
pub struct Executor {
    noise: NoiseModel,
    backend: BackendChoice,
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::ideal()
    }
}

impl Executor {
    /// A noiseless executor (auto backend, single-threaded).
    pub fn ideal() -> Self {
        Executor {
            noise: NoiseModel::ideal(),
            backend: BackendChoice::Auto,
            threads: 1,
        }
    }

    /// An executor with the given noise model.
    pub fn with_noise(noise: NoiseModel) -> Self {
        Executor {
            noise,
            ..Executor::ideal()
        }
    }

    /// Overrides the automatic backend dispatch.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker-thread count for shot execution (clamped to ≥ 1).
    /// Results are independent of this setting; see the module docs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The configured backend choice.
    pub fn backend_choice(&self) -> BackendChoice {
        self.backend
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `shots` shots with a deterministic seed.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no admissible backend can run the
    /// circuit (qubit caps, non-Clifford gates on a forced tableau, or a
    /// classical register wider than one outcome word) — conditions the
    /// pre-backend-layer API turned into panics.
    pub fn try_run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        let kind = backend::resolve(self.backend, circuit)?;
        if kind == BackendKind::Dense && !self.noise.is_noisy() && measures_only_at_end(circuit) {
            return Ok(self.run_sampling(circuit, shots, seed));
        }
        Ok(self.run_trajectories(kind, circuit, shots, seed))
    }

    /// Panicking wrapper around [`Executor::try_run`].
    ///
    /// # Panics
    ///
    /// Panics when the circuit cannot be simulated (see
    /// [`Executor::try_run`]).
    pub fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Counts {
        match self.try_run(circuit, shots, seed) {
            Ok(counts) => counts,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Dense fast path: evolves the unitary prefix once, then samples
    /// measured qubits per chunk.
    fn run_sampling(&self, circuit: &Circuit, shots: u64, seed: u64) -> Counts {
        let mut sv = StateVector::zero(circuit.num_qubits());
        let mut measure_map: Vec<(usize, usize)> = Vec::new();
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => sv.apply_gate(*gate, qubits),
                Op::Measure { qubit, clbit } => measure_map.push((*qubit, *clbit)),
                Op::Barrier { .. } => {}
                _ => unreachable!("fast path precondition violated"),
            }
        }
        let sv = &sv;
        let measure_map = &measure_map;
        self.chunked_counts(
            circuit.num_clbits(),
            shots,
            seed,
            || (),
            |(), chunk_shots, rng| {
                let mut counts = Counts::new(circuit.num_clbits());
                for _ in 0..chunk_shots {
                    let basis = sv.sample(rng);
                    let mut word = 0u64;
                    for &(q, c) in measure_map {
                        if (basis >> q) & 1 == 1 {
                            word |= 1 << c;
                        }
                    }
                    counts.record(word);
                }
                counts
            },
        )
    }

    /// Monte-Carlo path: one trajectory per shot on the resolved backend.
    fn run_trajectories(
        &self,
        kind: BackendKind,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Counts {
        let engine = kind.build();
        let engine = &engine;
        self.chunked_counts(
            circuit.num_clbits(),
            shots,
            seed,
            || {
                engine
                    .init(circuit.num_qubits())
                    .expect("backend capacity pre-validated by resolve()")
            },
            |state, chunk_shots, rng| {
                let mut counts = Counts::new(circuit.num_clbits());
                for _ in 0..chunk_shots {
                    counts.record(self.trajectory(circuit, state.as_mut(), rng));
                }
                counts
            },
        )
    }

    /// Partitions `shots` into [`SHOT_CHUNK`]-sized chunks and runs them on
    /// up to `self.threads` workers. `make_ctx` builds one reusable
    /// per-worker context (e.g. a simulator state), `run_chunk` executes one
    /// chunk with a chunk-seeded RNG.
    ///
    /// Each chunk's RNG depends only on `(seed, chunk index)` and
    /// [`Counts::merge`] is commutative outcome-wise addition, so workers
    /// accumulate locally and the final merge order does not matter — the
    /// result is bit-identical to the serial loop with only `threads` (not
    /// `num_chunks`) counts tables alive.
    fn chunked_counts<C, M, F>(
        &self,
        num_clbits: usize,
        shots: u64,
        seed: u64,
        make_ctx: M,
        run_chunk: F,
    ) -> Counts
    where
        M: Fn() -> C + Sync,
        F: Fn(&mut C, u64, &mut StdRng) -> Counts + Sync,
    {
        let num_chunks = shots.div_ceil(SHOT_CHUNK) as usize;
        let chunk_shots = |i: usize| (shots - i as u64 * SHOT_CHUNK).min(SHOT_CHUNK);
        let mut merged = Counts::new(num_clbits);
        let threads = self.threads.min(num_chunks);
        if threads <= 1 {
            let mut ctx = make_ctx();
            for i in 0..num_chunks {
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                merged.merge(&run_chunk(&mut ctx, chunk_shots(i), &mut rng));
            }
            return merged;
        }
        let next = AtomicUsize::new(0);
        let partials: Mutex<Vec<Counts>> = Mutex::new(Vec::with_capacity(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut ctx = make_ctx();
                    let mut local = Counts::new(num_clbits);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_chunks {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                        local.merge(&run_chunk(&mut ctx, chunk_shots(i), &mut rng));
                    }
                    partials
                        .lock()
                        .expect("partial counts poisoned")
                        .push(local);
                });
            }
        });
        for partial in partials.into_inner().expect("partial counts poisoned") {
            merged.merge(&partial);
        }
        merged
    }

    /// One full Monte-Carlo trajectory; returns the classical outcome word.
    fn trajectory(&self, circuit: &Circuit, state: &mut dyn BackendState, rng: &mut StdRng) -> u64 {
        state.reinit();
        let mut clbits = 0u64;
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    state.apply_gate(*gate, qubits);
                    for (q, pauli) in self.noise.sample_gate_errors(gate, qubits, rng) {
                        state.apply_pauli(q, pauli);
                    }
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    let bit = (clbits >> clbit) & 1 == 1;
                    if bit == *value {
                        state.apply_gate(*gate, qubits);
                        for (q, pauli) in self.noise.sample_gate_errors(gate, qubits, rng) {
                            state.apply_pauli(q, pauli);
                        }
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let raw = state.measure(*qubit, rng);
                    let reported = self.noise.sample_readout(raw, rng);
                    if reported {
                        clbits |= 1 << clbit;
                    } else {
                        clbits &= !(1 << clbit);
                    }
                }
                Op::Reset { qubit } => {
                    state.reset(*qubit, rng);
                }
                Op::Barrier { .. } => {
                    for (q, pauli) in self.noise.sample_idle_errors(state.num_qubits(), rng) {
                        state.apply_pauli(q, pauli);
                    }
                }
            }
        }
        clbits
    }

    /// The noiseless outcome distribution: exact for dense-sized circuits
    /// whose measurements all come last, estimated from
    /// 16384 auto-dispatched shots otherwise (mid-circuit measurement,
    /// conditionals, or Clifford circuits past the dense cap). The sampled
    /// fallback runs single-threaded; pass a worker count through
    /// [`Executor::try_ideal_distribution_threaded`] when the fallback
    /// workload is large.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no backend can run the circuit.
    pub fn try_ideal_distribution(circuit: &Circuit, seed: u64) -> Result<Distribution, SimError> {
        Self::try_ideal_distribution_threaded(circuit, seed, 1)
    }

    /// [`Executor::try_ideal_distribution`] with a worker-thread count for
    /// the sampled fallback (results are thread-count independent; see the
    /// module docs).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when no backend can run the circuit.
    pub fn try_ideal_distribution_threaded(
        circuit: &Circuit,
        seed: u64,
        threads: usize,
    ) -> Result<Distribution, SimError> {
        if circuit.num_clbits() > backend::MAX_CLBITS {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                cap: backend::MAX_CLBITS,
            });
        }
        if measures_only_at_end(circuit) && circuit.num_qubits() <= backend::DENSE_QUBIT_CAP {
            let mut sv = StateVector::zero(circuit.num_qubits());
            let mut measure_map: Vec<(usize, usize)> = Vec::new();
            for op in circuit.ops() {
                match op {
                    Op::Gate { gate, qubits } => sv.apply_gate(*gate, qubits),
                    Op::Measure { qubit, clbit } => measure_map.push((*qubit, *clbit)),
                    Op::Barrier { .. } => {}
                    _ => unreachable!(),
                }
            }
            let mut dist = Distribution::new(circuit.num_clbits());
            for (basis, p) in sv.probabilities().into_iter().enumerate() {
                if p <= 1e-15 {
                    continue;
                }
                let mut word = 0u64;
                for &(q, c) in &measure_map {
                    if (basis >> q) & 1 == 1 {
                        word |= 1 << c;
                    }
                }
                let existing = dist.get(word);
                dist.set(word, existing + p);
            }
            Ok(dist)
        } else {
            Executor::ideal()
                .with_threads(threads)
                .try_run(circuit, DISTRIBUTION_SHOTS, seed)
                .map(|counts| counts.to_distribution())
        }
    }

    /// Panicking wrapper around [`Executor::try_ideal_distribution`].
    ///
    /// # Panics
    ///
    /// Panics when the circuit cannot be simulated.
    pub fn ideal_distribution(circuit: &Circuit, seed: u64) -> Distribution {
        match Self::try_ideal_distribution(circuit, seed) {
            Ok(dist) => dist,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Runs the unitary portion only and returns the final state.
    ///
    /// # Panics
    ///
    /// Panics when the circuit contains measurements, resets or conditional
    /// gates.
    pub fn statevector(circuit: &Circuit) -> StateVector {
        assert!(
            circuit.is_unitary_only(),
            "statevector() requires a measurement-free circuit"
        );
        let mut sv = StateVector::zero(circuit.num_qubits());
        for op in circuit.ops() {
            if let Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        sv
    }
}

/// `true` when the circuit has no conditionals/resets and every measurement
/// comes after the last gate.
pub fn measures_only_at_end(circuit: &Circuit) -> bool {
    let mut seen_measure = false;
    for op in circuit.ops() {
        match op {
            Op::CondGate { .. } | Op::Reset { .. } => return false,
            Op::Measure { .. } => seen_measure = true,
            Op::Gate { .. } => {
                if seen_measure {
                    return false;
                }
            }
            Op::Barrier { .. } => {}
        }
    }
    true
}

/// Convenience: sample a random `u64` stream deterministically from a seed
/// plus an index (used by the shot chunking and by benches to decorrelate
/// sweeps).
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    // SplitMix64 step.
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples `n` outcomes from an arbitrary discrete distribution (utility for
/// synthetic workloads).
pub fn sample_distribution(dist: &Distribution, n: u64, seed: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(u64, f64)> = dist.iter().collect();
    let mut counts = Counts::new(dist.num_clbits());
    for _ in 0..n {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = pairs.last().map(|&(o, _)| o).unwrap_or(0);
        for &(o, p) in &pairs {
            acc += p;
            if r < acc {
                chosen = o;
                break;
            }
        }
        counts.record(chosen);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use qcir::gate::Gate;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    fn ghz(n: usize) -> Circuit {
        let mut qc = Circuit::new(n, n);
        qc.h(0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        qc
    }

    #[test]
    fn ideal_bell_is_correlated() {
        let counts = Executor::ideal().run(&bell(), 2000, 9);
        assert_eq!(counts.shots(), 2000);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn fast_and_trajectory_paths_agree() {
        let qc = bell();
        let fast = Executor::ideal().run(&qc, 4000, 1).to_distribution();
        // Force the trajectory path with a zero-rate "noisy" model.
        let mut zero = NoiseModel::uniform_depolarizing(0.0);
        zero.idle_error = 0.0;
        zero.readout_error = 1e-300; // non-zero flag, negligible effect
        let slow = Executor::with_noise(zero)
            .run(&qc, 4000, 1)
            .to_distribution();
        assert!(fast.tvd(&slow) < 0.05);
    }

    #[test]
    fn ideal_distribution_is_exact() {
        let dist = Executor::ideal_distribution(&bell(), 0);
        assert!((dist.get(0b00) - 0.5).abs() < 1e-12);
        assert!((dist.get(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Executor::ideal().run(&bell(), 100, 42);
        let b = Executor::ideal().run(&bell(), 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn readout_noise_pollutes_deterministic_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let nm = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.2,
            idle_error: 0.0,
            label: "ro".into(),
        };
        let counts = Executor::with_noise(nm).run(&qc, 20_000, 5);
        let p_wrong = counts.probability(0b0);
        assert!((p_wrong - 0.2).abs() < 0.02, "p_wrong = {p_wrong}");
    }

    #[test]
    fn conditional_teleport_like_correction_works() {
        // Prepare |1> on q0, measure into c0, then conditionally flip q1.
        let mut qc = Circuit::new(2, 2);
        qc.x(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        let counts = Executor::ideal().run(&qc, 200, 3);
        assert_eq!(counts.count(0b11), 200);
    }

    #[test]
    fn reset_mid_circuit() {
        let mut qc = Circuit::new(1, 1);
        qc.x(0).reset(0).measure(0, 0);
        let counts = Executor::ideal().run(&qc, 100, 4);
        assert_eq!(counts.count(0), 100);
    }

    #[test]
    fn depolarizing_noise_reduces_fidelity() {
        let qc = bell();
        let noisy = Executor::with_noise(profiles::noisy_nisq()).run(&qc, 5000, 6);
        let ideal = Executor::ideal_distribution(&qc, 0);
        let tvd = noisy.to_distribution().tvd(&ideal);
        assert!(tvd > 0.02, "noise should be visible, tvd = {tvd}");
        assert!(tvd < 0.6, "noise should not destroy the state, tvd = {tvd}");
    }

    #[test]
    fn measures_only_at_end_detection() {
        assert!(measures_only_at_end(&bell()));
        let mut mid = Circuit::new(2, 2);
        mid.h(0).measure(0, 0).x(1).measure(1, 1);
        assert!(!measures_only_at_end(&mid));
        let mut cond = Circuit::new(1, 1);
        cond.measure(0, 0);
        cond.cond_gate(Gate::X, &[0], 0, true);
        assert!(!measures_only_at_end(&cond));
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(derive_seed(1, 0), a);
    }

    #[test]
    fn sample_distribution_matches_probabilities() {
        let mut d = Distribution::new(1);
        d.set(0, 0.25);
        d.set(1, 0.75);
        let counts = sample_distribution(&d, 20_000, 8);
        assert!((counts.probability(1) - 0.75).abs() < 0.02);
    }

    #[test]
    fn forced_backends_agree_on_bell() {
        let dense = Executor::ideal()
            .with_backend(BackendChoice::Dense)
            .run(&bell(), 4000, 11)
            .to_distribution();
        let tableau = Executor::ideal()
            .with_backend(BackendChoice::Tableau)
            .run(&bell(), 4000, 11)
            .to_distribution();
        assert!(dense.tvd(&tableau) < 0.05);
    }

    #[test]
    fn auto_dispatch_runs_large_clifford_circuits() {
        // 49 qubits: far past the dense cap, fine on the tableau.
        let counts = Executor::ideal().run(&ghz(49), 256, 13);
        assert_eq!(counts.shots(), 256);
        assert_eq!(counts.distinct_outcomes(), 2);
        let all_ones = (1u64 << 49) - 1;
        assert_eq!(counts.count(0) + counts.count(all_ones), 256);
    }

    #[test]
    fn try_run_returns_typed_errors() {
        // Non-Clifford past the dense cap: no backend can run it.
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).measure(0, 0);
        assert!(matches!(
            Executor::ideal().try_run(&big, 16, 0),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                ..
            })
        ));
        // Forced tableau on a T gate.
        let mut t = Circuit::new(1, 1);
        t.t(0).measure(0, 0);
        assert!(matches!(
            Executor::ideal()
                .with_backend(BackendChoice::Tableau)
                .try_run(&t, 16, 0),
            Err(SimError::NonCliffordGate { gate: Gate::T })
        ));
        // Wide classical register.
        let wide = Circuit::new(1, 65);
        assert!(matches!(
            Executor::ideal().try_run(&wide, 16, 0),
            Err(SimError::TooManyClbits { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "simulation failed")]
    fn run_panics_with_the_error_message() {
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).measure(0, 0);
        Executor::ideal().run(&big, 16, 0);
    }

    #[test]
    fn parallel_shots_are_bit_identical_to_serial() {
        let qc = ghz(8);
        let noisy = profiles::noisy_nisq();
        for threads in [2usize, 4, 7] {
            let serial = Executor::with_noise(noisy.clone()).run(&qc, 5000, 21);
            let parallel = Executor::with_noise(noisy.clone())
                .with_threads(threads)
                .run(&qc, 5000, 21);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Also on the dense sampling fast path and the tableau path.
        let fast_serial = Executor::ideal().run(&qc, 5000, 22);
        let fast_parallel = Executor::ideal().with_threads(4).run(&qc, 5000, 22);
        assert_eq!(fast_serial, fast_parallel);
        let tab = Executor::ideal().with_backend(BackendChoice::Tableau);
        assert_eq!(
            tab.clone().run(&qc, 3000, 23),
            tab.with_threads(3).run(&qc, 3000, 23)
        );
    }

    #[test]
    fn shot_totals_survive_chunking() {
        // Shot counts that are not multiples of SHOT_CHUNK partition cleanly.
        for shots in [0u64, 1, SHOT_CHUNK - 1, SHOT_CHUNK, SHOT_CHUNK + 1, 2500] {
            let counts = Executor::ideal().with_threads(4).run(&bell(), shots, 30);
            assert_eq!(counts.shots(), shots);
        }
    }

    #[test]
    fn try_ideal_distribution_handles_large_clifford() {
        let dist = Executor::try_ideal_distribution(&ghz(30), 2).unwrap();
        let all_ones = (1u64 << 30) - 1;
        assert!((dist.get(0) - 0.5).abs() < 0.05);
        assert!((dist.get(all_ones) - 0.5).abs() < 0.05);
        let mut big = Circuit::new(30, 30);
        big.h(0).t(0).measure(0, 0);
        assert!(Executor::try_ideal_distribution(&big, 2).is_err());
    }
}
