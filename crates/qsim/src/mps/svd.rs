//! Minimal complex dense linear algebra for the MPS engine: a one-sided
//! Jacobi singular-value decomposition.
//!
//! The MPS two-site update needs the SVD of a `(2·χl) x (2·χr)` complex
//! matrix, and nothing in the workspace's vendored-crates policy provides
//! one — so we implement exactly that here. One-sided Jacobi was chosen
//! because it is simple (~100 lines), unconditionally convergent, and
//! computes small singular values to high relative accuracy, which is what
//! the truncation bookkeeping relies on.
//!
//! The algorithm: repeatedly sweep over column pairs of `A`, applying a
//! complex plane rotation `G` on the right (`A <- A·G`, `V <- V·G`) that
//! orthogonalizes the pair; at convergence the columns of `A` are `u_j ·
//! s_j` with `s_j = ‖a_j‖`, so `A = U·S·V†` falls out by normalizing.

use qcir::math::C64;

/// Convergence threshold for a column pair: the pair is skipped when
/// `|a_p† a_q| <= JACOBI_TOL · ‖a_p‖·‖a_q‖`.
const JACOBI_TOL: f64 = 1e-15;

/// Safety cap on Jacobi sweeps (convergence is typically 3–8 sweeps; the
/// cap only guards against pathological floating-point cycling).
const MAX_SWEEPS: usize = 64;

/// A singular-value decomposition `A = U·diag(S)·Vt` with `k =
/// min(rows, cols)` retained components, sorted by descending singular
/// value.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, row-major `rows x k`.
    pub u: Vec<C64>,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors (conjugate-transposed), row-major `k x cols`.
    pub vt: Vec<C64>,
    /// Number of retained components (`min(rows, cols)`).
    pub k: usize,
}

/// Computes the SVD of the row-major `rows x cols` matrix `a`.
///
/// # Panics
///
/// Panics when `a.len() != rows * cols` or either dimension is zero.
pub fn svd(rows: usize, cols: usize, a: &[C64]) -> Svd {
    assert!(rows > 0 && cols > 0, "svd of an empty matrix");
    assert_eq!(a.len(), rows * cols, "svd matrix shape mismatch");
    // Column-major working copies: Jacobi is all column operations.
    let mut w = vec![C64::ZERO; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            w[c * rows + r] = a[r * cols + c];
        }
    }
    // V accumulates the right rotations, column-major `cols x cols`.
    let mut v = vec![C64::ZERO; cols * cols];
    for c in 0..cols {
        v[c * cols + c] = C64::ONE;
    }

    for _ in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..cols.saturating_sub(1) {
            for q in (p + 1)..cols {
                let (alpha, beta, gamma) = column_moments(&w, rows, p, q);
                let g = gamma.abs();
                if g <= JACOBI_TOL * (alpha * beta).sqrt() {
                    continue;
                }
                rotated = true;
                // Absorb the phase of gamma so the 2x2 Gram matrix is real,
                // then apply the classical symmetric Jacobi rotation.
                let phi = gamma / g;
                let tau = (beta - alpha) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_pair(&mut w, rows, p, q, c, s, phi);
                rotate_pair(&mut v, cols, p, q, c, s, phi);
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..cols).collect();
    let norms: Vec<f64> = (0..cols)
        .map(|c| {
            w[c * rows..(c + 1) * rows]
                .iter()
                .map(|z| z.norm_sqr())
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));

    let k = rows.min(cols);
    let mut u = vec![C64::ZERO; rows * k];
    let mut s = vec![0.0; k];
    let mut vt = vec![C64::ZERO; k * cols];
    for (j, &col) in order.iter().take(k).enumerate() {
        s[j] = norms[col];
        if s[j] > 0.0 {
            let inv = 1.0 / s[j];
            for r in 0..rows {
                u[r * k + j] = w[col * rows + r] * inv;
            }
        }
        for r in 0..cols {
            vt[j * cols + r] = v[col * cols + r].conj();
        }
    }
    Svd { u, s, vt, k }
}

/// `(‖a_p‖², ‖a_q‖², a_p† a_q)` for columns `p`, `q` of a column-major
/// matrix with `rows` rows.
fn column_moments(w: &[C64], rows: usize, p: usize, q: usize) -> (f64, f64, C64) {
    let cp = &w[p * rows..(p + 1) * rows];
    let cq = &w[q * rows..(q + 1) * rows];
    let mut alpha = 0.0;
    let mut beta = 0.0;
    let mut gamma = C64::ZERO;
    for (a, b) in cp.iter().zip(cq) {
        alpha += a.norm_sqr();
        beta += b.norm_sqr();
        gamma += a.conj() * *b;
    }
    (alpha, beta, gamma)
}

/// Applies the rotation `[a_p, a_q] <- [c·a_p − s·φ̄·a_q, s·φ·a_p + c·a_q]`
/// to columns `p`, `q` of a column-major matrix. The 2x2 factor is unitary
/// for every `c² + s² = 1` and unit-modulus `φ`.
fn rotate_pair(w: &mut [C64], rows: usize, p: usize, q: usize, c: f64, s: f64, phi: C64) {
    for r in 0..rows {
        let ap = w[p * rows + r];
        let aq = w[q * rows + r];
        w[p * rows + r] = ap * c - phi.conj() * aq * s;
        w[q * rows + r] = phi * ap * s + aq * c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn reconstruct(rows: usize, cols: usize, d: &Svd) -> Vec<C64> {
        let mut out = vec![C64::ZERO; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = C64::ZERO;
                for j in 0..d.k {
                    acc += d.u[r * d.k + j] * d.vt[j * cols + c] * d.s[j];
                }
                out[r * cols + c] = acc;
            }
        }
        out
    }

    fn assert_svd_valid(rows: usize, cols: usize, a: &[C64]) {
        let d = svd(rows, cols, a);
        // Reconstruction.
        let back = reconstruct(rows, cols, &d);
        for (x, y) in a.iter().zip(&back) {
            assert!(x.approx_eq(*y, 1e-11), "reconstruction off: {x} vs {y}");
        }
        // Descending singular values.
        for pair in d.s.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
        // U columns orthonormal (skip numerically-null columns).
        for i in 0..d.k {
            for j in 0..d.k {
                let mut ip = C64::ZERO;
                for r in 0..rows {
                    ip += d.u[r * d.k + i].conj() * d.u[r * d.k + j];
                }
                if d.s[i] > 1e-12 && d.s[j] > 1e-12 {
                    let expect = if i == j { C64::ONE } else { C64::ZERO };
                    assert!(ip.approx_eq(expect, 1e-10), "U†U[{i}][{j}] = {ip}");
                }
            }
        }
        // Vt rows orthonormal.
        for i in 0..d.k {
            for j in 0..d.k {
                let mut ip = C64::ZERO;
                for c in 0..cols {
                    ip += d.vt[i * cols + c] * d.vt[j * cols + c].conj();
                }
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                assert!(ip.approx_eq(expect, 1e-10), "VtV[{i}][{j}] = {ip}");
            }
        }
    }

    #[test]
    fn random_square_and_rectangular_matrices() {
        for (rows, cols, seed) in [(4, 4, 1), (8, 3, 2), (3, 8, 3), (16, 16, 4), (1, 5, 5)] {
            assert_svd_valid(rows, cols, &random_matrix(rows, cols, seed));
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns: rank 1 on a 3x2 matrix.
        let a = vec![
            C64::new(1.0, 0.5),
            C64::new(1.0, 0.5),
            C64::new(-0.3, 0.0),
            C64::new(-0.3, 0.0),
            C64::new(0.0, 2.0),
            C64::new(0.0, 2.0),
        ];
        let d = svd(3, 2, &a);
        assert!(d.s[1] < 1e-12, "second singular value should vanish");
        assert_svd_valid(3, 2, &a);
    }

    #[test]
    fn diagonal_matrix_recovers_entries() {
        let mut a = vec![C64::ZERO; 9];
        a[0] = C64::real(3.0);
        a[4] = C64::real(1.0);
        a[8] = C64::real(2.0);
        let d = svd(3, 3, &a);
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_yields_zero_singular_values() {
        let a = vec![C64::ZERO; 6];
        let d = svd(2, 3, &a);
        assert!(d.s.iter().all(|&s| s == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_is_checked() {
        svd(2, 2, &[C64::ONE; 3]);
    }
}
