//! Matrix-product-state (MPS) simulation with bounded bond dimension.
//!
//! A pure state over `n` qubits is stored as a train of rank-3 site tensors
//! `A[i]` with shape `(χ_left, 2, χ_right)`; qubit `i` is the physical index
//! of site `i` (matching the little-endian basis indexing of
//! [`crate::state::StateVector`]). Memory and gate cost scale with the bond
//! dimension χ — the Schmidt rank across each cut — instead of with `2^n`,
//! so circuits whose entanglement stays low simulate far past the
//! [`crate::backend::DENSE_QUBIT_CAP`] dense limit.
//!
//! * One-qubit gates contract into a site tensor in `O(χ²)`.
//! * Two-qubit gates on adjacent sites contract both tensors into a
//!   two-site block, apply the unitary, and split back with a truncated SVD
//!   (see [`svd`], the engine's own small dense-linalg helper — no external
//!   dependency). Non-adjacent pairs are routed by a transient SWAP chain.
//! * Three-qubit gates (CCX, CSWAP) apply through exact Clifford+T
//!   decompositions into the one- and two-qubit machinery.
//! * Measurement and reset contract left/right environments for the local
//!   outcome probabilities, project the site tensor, and renormalize.
//! * Shot sampling ([`MpsSampler`]) precomputes right environments once and
//!   then draws whole basis words by sequential site-by-site collapse in
//!   `O(n·χ²)` per shot.
//!
//! # Truncation accounting
//!
//! Every truncated SVD records its *discarded weight* δ (the squared norm
//! of the dropped Schmidt components). [`MpsState::discarded_weight`]
//! accumulates Σδ and [`MpsState::truncation_error_bound`] the rigorous
//! infidelity bound `(Σ√(2δ))²`: unitaries preserve distances, so each
//! truncation moves the state by at most `√(2δ)` in norm and the errors add
//! at worst linearly. A run with bond dimension `χ ≥ 2^(n/2)` never
//! truncates and is exact to numerical precision. The executor turns an
//! exceeded budget into the typed
//! [`SimError::TruncationBudgetExceeded`](crate::backend::SimError) instead
//! of silently returning low-fidelity counts.

pub mod svd;

use crate::kernels;
use crate::noise::Pauli;
use crate::word::OutcomeWord;
use qcir::gate::Gate;
use qcir::math::{Matrix, C64};
use qugen_telemetry::metrics::{self, Counter};
use rand::Rng;
use std::sync::OnceLock;

/// Dispatch-tier counters for the two-site theta contraction: one count
/// per [`MpsState::apply_two_site`] call (which runs many
/// [`kernels::axpy`] sweeps), keyed by whether the AVX2+FMA tier is
/// active on this host.
struct ThetaTiers {
    theta_avx2: &'static Counter,
    theta_scalar: &'static Counter,
}

fn theta_tiers() -> &'static ThetaTiers {
    static COUNTERS: OnceLock<ThetaTiers> = OnceLock::new();
    COUNTERS.get_or_init(|| ThetaTiers {
        theta_avx2: metrics::counter("mps.theta_avx2"),
        theta_scalar: metrics::counter("mps.theta_scalar"),
    })
}

/// Relative singular-value cutoff: components below `σ_max · REL_CUTOFF`
/// are numerically-null and always dropped (their weight still counts
/// toward the discarded-weight ledger, at ~1e-28 per drop).
const REL_CUTOFF: f64 = 1e-14;

/// One site tensor with shape `(dl, 2, dr)`, stored row-major as
/// `a[(l*2 + s)*dr + r]`.
#[derive(Debug, Clone)]
struct SiteTensor {
    dl: usize,
    dr: usize,
    a: Vec<C64>,
}

impl SiteTensor {
    /// The |0> product-state site: all bond dimensions 1.
    fn zero_site() -> Self {
        SiteTensor {
            dl: 1,
            dr: 1,
            a: vec![C64::ONE, C64::ZERO],
        }
    }
}

/// A pure quantum state in matrix-product form with bounded bond dimension.
///
/// ```
/// use qsim::mps::MpsState;
/// use qcir::gate::Gate;
///
/// let mut psi = MpsState::new(2, 4);
/// psi.apply_gate(Gate::H, &[0]);
/// psi.apply_gate(Gate::CX, &[0, 1]);
/// let sv = psi.to_statevector();
/// assert!((sv.probabilities()[0b00] - 0.5).abs() < 1e-12);
/// assert!((sv.probabilities()[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MpsState {
    num_qubits: usize,
    max_bond: usize,
    tensors: Vec<SiteTensor>,
    /// Σδ over truncations since the last [`MpsState::reinit`].
    discarded: f64,
    /// Σ√(2δ) over the same truncations (for the rigorous error bound).
    sqrt_bound: f64,
    /// Max per-trajectory error bound over completed trajectories
    /// (survives `reinit`, so the executor can report the worst shot of a
    /// run).
    bound_peak: f64,
}

impl MpsState {
    /// The |0…0> product state with the given bond-dimension bound.
    ///
    /// `max_bond` is clamped to ≥ 1; a bound of `2^(n/2)` or larger makes
    /// every simulation exact (no truncation can occur).
    pub fn new(num_qubits: usize, max_bond: usize) -> Self {
        MpsState {
            num_qubits,
            max_bond: max_bond.max(1),
            tensors: (0..num_qubits).map(|_| SiteTensor::zero_site()).collect(),
            discarded: 0.0,
            sqrt_bound: 0.0,
            bound_peak: 0.0,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The configured bond-dimension bound χ.
    pub fn max_bond(&self) -> usize {
        self.max_bond
    }

    /// The largest bond dimension currently present in the train.
    pub fn peak_bond(&self) -> usize {
        self.tensors.iter().map(|t| t.dr).max().unwrap_or(1)
    }

    /// Accumulated discarded weight Σδ since the last [`MpsState::reinit`].
    pub fn discarded_weight(&self) -> f64 {
        self.discarded
    }

    /// Rigorous upper bound on the infidelity `1 − |<ψ_exact|ψ>|²` caused
    /// by truncation since the last [`MpsState::reinit`]: `(Σ√(2δ))²`,
    /// clamped to 1.
    pub fn truncation_error_bound(&self) -> f64 {
        (self.sqrt_bound * self.sqrt_bound).min(1.0)
    }

    /// Worst per-trajectory [`MpsState::truncation_error_bound`] over any
    /// trajectory of this state (the current one or any completed before a
    /// `reinit`) — the quantity the executor's truncation budget gates on.
    pub fn truncation_error(&self) -> f64 {
        self.truncation_error_bound().max(self.bound_peak)
    }

    /// Resets to |0…0> in place, folding the current trajectory's error
    /// bound into the cross-trajectory peak.
    pub fn reinit(&mut self) {
        self.bound_peak = self.bound_peak.max(self.truncation_error_bound());
        self.discarded = 0.0;
        self.sqrt_bound = 0.0;
        for t in &mut self.tensors {
            *t = SiteTensor::zero_site();
        }
    }

    /// Applies a gate in gate-operand order (same conventions as
    /// [`crate::state::StateVector::apply_gate`]).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, out-of-range or duplicate operands, or a
    /// 3-qubit gate outside the built-in set (CCX, CSWAP).
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "gate arity mismatch");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit index out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit operand");
        }
        match gate.num_qubits() {
            1 => {
                let m = gate.matrix();
                self.apply_1q(
                    qubits[0],
                    &[m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1)],
                );
            }
            2 => self.apply_2q(&mat4(&gate.matrix()), qubits[0], qubits[1]),
            _ => self.apply_3q(gate, qubits),
        }
    }

    /// Applies a single-qubit Pauli directly (the noise-injection hot path;
    /// no matrix construction).
    ///
    /// # Panics
    ///
    /// Panics when `qubit` is out of range.
    pub fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        let t = &mut self.tensors[qubit];
        let dr = t.dr;
        for l in 0..t.dl {
            for r in 0..dr {
                let i0 = (l * 2) * dr + r;
                let i1 = (l * 2 + 1) * dr + r;
                match pauli {
                    Pauli::X => t.a.swap(i0, i1),
                    Pauli::Y => {
                        let (a0, a1) = (t.a[i0], t.a[i1]);
                        t.a[i0] = -C64::I * a1;
                        t.a[i1] = C64::I * a0;
                    }
                    Pauli::Z => t.a[i1] = -t.a[i1],
                }
            }
        }
    }

    /// The probability of measuring `1` on `qubit` (normalized against the
    /// current state norm, so truncation drift does not bias outcomes).
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let (w0, w1) = self.outcome_weights(qubit);
        if w0 + w1 <= 0.0 {
            0.0
        } else {
            w1 / (w0 + w1)
        }
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> bool {
        let (w0, w1) = self.outcome_weights(qubit);
        let p1 = if w0 + w1 <= 0.0 { 0.0 } else { w1 / (w0 + w1) };
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(qubit, outcome, if outcome { w1 } else { w0 });
        outcome
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let (w0, w1) = self.outcome_weights(qubit);
        self.project(qubit, outcome, if outcome { w1 } else { w0 });
    }

    /// Resets `qubit` to |0> (measure + conditional flip, unrecorded).
    pub fn reset(&mut self, qubit: usize, rng: &mut impl Rng) {
        if self.measure(qubit, rng) {
            self.apply_pauli(qubit, Pauli::X);
        }
    }

    /// Squared norm (1 up to numerical error and truncation renorm).
    pub fn norm_sqr(&self) -> f64 {
        let mut env = vec![C64::ONE];
        for t in &self.tensors {
            env = env_step_left(&env, t);
        }
        env[0].re
    }

    /// Contracts the train into a dense [`crate::state::StateVector`]
    /// (normalized), for parity tests and small-circuit inspection.
    ///
    /// # Panics
    ///
    /// Panics past [`crate::backend::DENSE_QUBIT_CAP`] qubits.
    pub fn to_statevector(&self) -> crate::state::StateVector {
        assert!(
            self.num_qubits <= crate::backend::DENSE_QUBIT_CAP,
            "dense extraction capped at {} qubits",
            crate::backend::DENSE_QUBIT_CAP
        );
        // acc has shape (2^i, bond): acc[x*bond + l].
        let mut acc = vec![C64::ONE];
        let mut bond = 1usize;
        for (i, t) in self.tensors.iter().enumerate() {
            let rows = acc.len() / bond;
            let mut next = vec![C64::ZERO; rows * 2 * t.dr];
            for x in 0..rows {
                for l in 0..bond {
                    let av = acc[x * bond + l];
                    if av == C64::ZERO {
                        continue;
                    }
                    for s in 0..2 {
                        let idx = x | (s << i);
                        for r in 0..t.dr {
                            next[idx * t.dr + r] += av * t.a[(l * 2 + s) * t.dr + r];
                        }
                    }
                }
            }
            acc = next;
            bond = t.dr;
        }
        crate::state::StateVector::from_amplitudes(acc)
    }

    /// Consumes the state and precomputes the right environments needed for
    /// `O(n·χ²)`-per-shot basis sampling.
    pub fn into_sampler(self) -> MpsSampler {
        let n = self.num_qubits;
        let mut right = vec![vec![C64::ONE]; n + 1];
        for i in (0..n).rev() {
            right[i] = env_step_right(&right[i + 1], &self.tensors[i]);
        }
        MpsSampler { mps: self, right }
    }

    // ---- internal machinery -------------------------------------------

    /// `(‖P₀ψ‖², ‖P₁ψ‖²)` for the computational-basis projectors on
    /// `qubit`, via left/right environment contraction in `O(n·χ³)`.
    fn outcome_weights(&self, qubit: usize) -> (f64, f64) {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        let mut left = vec![C64::ONE];
        for t in &self.tensors[..qubit] {
            left = env_step_left(&left, t);
        }
        let mut rightv = vec![C64::ONE];
        for t in self.tensors[qubit + 1..].iter().rev() {
            rightv = env_step_right(&rightv, t);
        }
        let t = &self.tensors[qubit];
        let (dl, dr) = (t.dl, t.dr);
        let mut weights = [0.0f64; 2];
        for (s, w) in weights.iter_mut().enumerate() {
            // mid[r, r'] = Σ_{l,l'} A_s[l,r] · left[l,l'] · conj(A_s[l',r'])
            // tmp[l, r'] = Σ_l' left[l,l'] · conj(A_s[l',r'])
            let mut tmp = vec![C64::ZERO; dl * dr];
            for l in 0..dl {
                for lp in 0..dl {
                    let e = left[l * dl + lp];
                    if e == C64::ZERO {
                        continue;
                    }
                    for rp in 0..dr {
                        tmp[l * dr + rp] += e * t.a[(lp * 2 + s) * dr + rp].conj();
                    }
                }
            }
            let mut acc = 0.0;
            for l in 0..dl {
                for r in 0..dr {
                    let av = t.a[(l * 2 + s) * dr + r];
                    if av == C64::ZERO {
                        continue;
                    }
                    for rp in 0..dr {
                        acc += (av * tmp[l * dr + rp] * rightv[r * dr + rp]).re;
                    }
                }
            }
            *w = acc.max(0.0);
        }
        (weights[0], weights[1])
    }

    /// Zeroes the non-`outcome` physical row of `qubit`'s site tensor and
    /// rescales the state back to unit norm using the projected weight.
    fn project(&mut self, qubit: usize, outcome: bool, weight: f64) {
        let t = &mut self.tensors[qubit];
        let dr = t.dr;
        let kill = usize::from(!outcome);
        for l in 0..t.dl {
            for r in 0..dr {
                t.a[(l * 2 + kill) * dr + r] = C64::ZERO;
            }
        }
        if weight > 0.0 {
            let scale = 1.0 / weight.sqrt();
            for z in &mut t.a {
                *z = *z * scale;
            }
        }
    }

    /// `new[l,s,r] = Σ_{s'} m[s][s'] · old[l,s',r]` with `m` row-major 2x2.
    fn apply_1q(&mut self, q: usize, m: &[C64; 4]) {
        let t = &mut self.tensors[q];
        let dr = t.dr;
        for l in 0..t.dl {
            for r in 0..dr {
                let i0 = (l * 2) * dr + r;
                let i1 = (l * 2 + 1) * dr + r;
                let (a0, a1) = (t.a[i0], t.a[i1]);
                t.a[i0] = m[0] * a0 + m[1] * a1;
                t.a[i1] = m[2] * a0 + m[3] * a1;
            }
        }
    }

    /// Two-qubit unitary `u` (big-endian over `(a, b)`: operand `a` is the
    /// matrix MSB) on arbitrary sites, routed adjacent via SWAP chains.
    fn apply_2q(&mut self, u: &[C64; 16], a: usize, b: usize) {
        let (lo, hi) = (a.min(b), a.max(b));
        // Walk qubit `hi` down to site `lo + 1`.
        for j in ((lo + 1)..hi).rev() {
            self.swap_adjacent(j);
        }
        if a < b {
            self.apply_two_site(lo, u);
        } else {
            self.apply_two_site(lo, &permute_2q(u));
        }
        // Walk it back up.
        for j in (lo + 1)..hi {
            self.swap_adjacent(j);
        }
    }

    /// SWAP on sites `(j, j+1)`.
    fn swap_adjacent(&mut self, j: usize) {
        let o = C64::ONE;
        let z = C64::ZERO;
        #[rustfmt::skip]
        let swap: [C64; 16] = [
            o, z, z, z,
            z, z, o, z,
            z, o, z, z,
            z, z, z, o,
        ];
        self.apply_two_site(j, &swap);
    }

    /// Exact Clifford+T decompositions for the 3-qubit gates in the set.
    fn apply_3q(&mut self, gate: Gate, q: &[usize]) {
        let (a, b, c) = (q[0], q[1], q[2]);
        match gate {
            Gate::CCX => {
                // Standard 6-CNOT Toffoli (Nielsen & Chuang fig. 4.9).
                self.apply_gate(Gate::H, &[c]);
                self.apply_gate(Gate::CX, &[b, c]);
                self.apply_gate(Gate::Tdg, &[c]);
                self.apply_gate(Gate::CX, &[a, c]);
                self.apply_gate(Gate::T, &[c]);
                self.apply_gate(Gate::CX, &[b, c]);
                self.apply_gate(Gate::Tdg, &[c]);
                self.apply_gate(Gate::CX, &[a, c]);
                self.apply_gate(Gate::T, &[b]);
                self.apply_gate(Gate::T, &[c]);
                self.apply_gate(Gate::H, &[c]);
                self.apply_gate(Gate::CX, &[a, b]);
                self.apply_gate(Gate::T, &[a]);
                self.apply_gate(Gate::Tdg, &[b]);
                self.apply_gate(Gate::CX, &[a, b]);
            }
            Gate::CSWAP => {
                // Fredkin = CX sandwich around a Toffoli.
                self.apply_gate(Gate::CX, &[c, b]);
                self.apply_gate(Gate::CCX, &[a, b, c]);
                self.apply_gate(Gate::CX, &[c, b]);
            }
            _ => panic!("unsupported 3-qubit gate `{gate}` on the MPS backend"),
        }
    }

    /// The core two-site update: contract sites `(i, i+1)` into a block,
    /// apply `u` (row index `s_i·2 + s_{i+1}`), split back by truncated SVD.
    ///
    /// Both contraction stages run as contiguous [`kernels::axpy`] sweeps
    /// over the right bond index `r`, so on x86-64 with AVX2+FMA the inner
    /// loops take the packed-lane path (one tier count per call, not per
    /// sweep — see [`theta_tiers`]).
    fn apply_two_site(&mut self, i: usize, u: &[C64; 16]) {
        let t = theta_tiers();
        if kernels::avx2_fma_active() {
            t.theta_avx2.inc();
        } else {
            t.theta_scalar.inc();
        }
        let (dl, dm, dr) = (
            self.tensors[i].dl,
            self.tensors[i].dr,
            self.tensors[i + 1].dr,
        );
        // theta[(l*4 + s1*2 + s2)*dr + r] = Σ_k A[l,s1,k]·B[k,s2,r].
        let mut theta = vec![C64::ZERO; dl * 4 * dr];
        {
            let ta = &self.tensors[i].a;
            let tb = &self.tensors[i + 1].a;
            for l in 0..dl {
                for s1 in 0..2 {
                    for k in 0..dm {
                        let av = ta[(l * 2 + s1) * dm + k];
                        if av == C64::ZERO {
                            continue;
                        }
                        for s2 in 0..2 {
                            let dst = (l * 4 + s1 * 2 + s2) * dr;
                            let src = (k * 2 + s2) * dr;
                            kernels::axpy(&mut theta[dst..dst + dr], &tb[src..src + dr], av);
                        }
                    }
                }
            }
        }
        // Apply the 4x4 unitary on the physical pair: for each output row
        // `p = s1·2 + s2` the destination `block[(l·2+s1)·cols + s2·dr ..]`
        // is contiguous over `r`, so each `u[p,q]` term is one axpy sweep.
        let rows = 2 * dl;
        let cols = 2 * dr;
        let mut block = vec![C64::ZERO; rows * cols];
        for l in 0..dl {
            for p in 0..4 {
                // Reshape to (l, s1) x (s2, r) on the fly.
                let (s1, s2) = (p >> 1, p & 1);
                let dst = (l * 2 + s1) * cols + s2 * dr;
                for q in 0..4 {
                    let uv = u[p * 4 + q];
                    if uv != C64::ZERO {
                        let src = (l * 4 + q) * dr;
                        kernels::axpy(&mut block[dst..dst + dr], &theta[src..src + dr], uv);
                    }
                }
            }
        }
        let dec = svd::svd(rows, cols, &block);
        // Truncate: keep at most max_bond components above the relative
        // cutoff (always at least one).
        let smax = dec.s.first().copied().unwrap_or(0.0);
        let keep = dec
            .s
            .iter()
            .take(self.max_bond)
            .filter(|&&s| s > smax * REL_CUTOFF)
            .count()
            .max(1);
        let total: f64 = dec.s.iter().map(|s| s * s).sum();
        let kept: f64 = dec.s[..keep].iter().map(|s| s * s).sum();
        if total > 0.0 {
            let delta = (1.0 - kept / total).max(0.0);
            self.discarded += delta;
            self.sqrt_bound += (2.0 * delta).sqrt();
        }
        // Renormalize the kept block so the state norm is preserved.
        let renorm = if kept > 0.0 {
            (total / kept).sqrt()
        } else {
            1.0
        };
        let ta = &mut self.tensors[i];
        ta.dr = keep;
        ta.a = vec![C64::ZERO; dl * 2 * keep];
        for row in 0..rows {
            for j in 0..keep {
                ta.a[row * keep + j] = dec.u[row * dec.k + j];
            }
        }
        let tb = &mut self.tensors[i + 1];
        tb.dl = keep;
        tb.a = vec![C64::ZERO; keep * 2 * dr];
        for j in 0..keep {
            let w = C64::real(dec.s[j] * renorm);
            for s2 in 0..2 {
                for r in 0..dr {
                    tb.a[(j * 2 + s2) * dr + r] = w * dec.vt[j * cols + (s2 * dr + r)];
                }
            }
        }
    }
}

/// Left-environment transfer step: `out[r,r'] = Σ_s Σ_{l,l'} A_s[l,r] ·
/// env[l,l'] · conj(A_s[l',r'])` (`l` indexes the ket, `l'` the bra).
fn env_step_left(env: &[C64], t: &SiteTensor) -> Vec<C64> {
    let (dl, dr) = (t.dl, t.dr);
    let mut out = vec![C64::ZERO; dr * dr];
    let mut tmp = vec![C64::ZERO; dl * dr];
    for s in 0..2 {
        tmp.fill(C64::ZERO);
        // tmp[l, r'] = Σ_l' env[l,l'] conj(A_s[l',r'])
        for l in 0..dl {
            for lp in 0..dl {
                let e = env[l * dl + lp];
                if e == C64::ZERO {
                    continue;
                }
                for rp in 0..dr {
                    tmp[l * dr + rp] += e * t.a[(lp * 2 + s) * dr + rp].conj();
                }
            }
        }
        // out[r, r'] += Σ_l A_s[l,r] tmp[l, r']
        for l in 0..dl {
            for r in 0..dr {
                let av = t.a[(l * 2 + s) * dr + r];
                if av == C64::ZERO {
                    continue;
                }
                for rp in 0..dr {
                    out[r * dr + rp] += av * tmp[l * dr + rp];
                }
            }
        }
    }
    out
}

/// Right-environment transfer step: `out[l,l'] = Σ_s Σ_{r,r'} A_s[l,r] ·
/// env[r,r'] · conj(A_s[l',r'])`.
fn env_step_right(env: &[C64], t: &SiteTensor) -> Vec<C64> {
    let (dl, dr) = (t.dl, t.dr);
    let mut out = vec![C64::ZERO; dl * dl];
    let mut tmp = vec![C64::ZERO; dl * dr];
    for s in 0..2 {
        tmp.fill(C64::ZERO);
        // tmp[l, r'] = Σ_r A_s[l,r] env[r,r']
        for l in 0..dl {
            for r in 0..dr {
                let av = t.a[(l * 2 + s) * dr + r];
                if av == C64::ZERO {
                    continue;
                }
                for rp in 0..dr {
                    tmp[l * dr + rp] += av * env[r * dr + rp];
                }
            }
        }
        // out[l, l'] += Σ_r' tmp[l,r'] conj(A_s[l',r'])
        for l in 0..dl {
            for lp in 0..dl {
                let mut acc = C64::ZERO;
                for rp in 0..dr {
                    acc += tmp[l * dr + rp] * t.a[(lp * 2 + s) * dr + rp].conj();
                }
                out[l * dl + lp] += acc;
            }
        }
    }
    out
}

/// Flattens a 4x4 [`Matrix`] into the array layout `apply_two_site` takes.
fn mat4(m: &Matrix) -> [C64; 16] {
    debug_assert_eq!(m.dim(), 4);
    let mut out = [C64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r * 4 + c] = m.get(r, c);
        }
    }
    out
}

/// Conjugates a two-qubit unitary by SWAP: exchanges the roles of the two
/// operands so a matrix with operand 0 on the right site applies correctly.
fn permute_2q(u: &[C64; 16]) -> [C64; 16] {
    let flip = |p: usize| ((p & 1) << 1) | (p >> 1);
    let mut out = [C64::ZERO; 16];
    for p in 0..4 {
        for q in 0..4 {
            out[flip(p) * 4 + flip(q)] = u[p * 4 + q];
        }
    }
    out
}

/// A frozen [`MpsState`] plus precomputed right environments, for drawing
/// measurement outcomes of every qubit at `O(n·χ²)` per shot.
#[derive(Debug, Clone)]
pub struct MpsSampler {
    mps: MpsState,
    /// `right[i]` is the environment of sites `i..n` (dimension = site
    /// `i`'s left bond); `right[n]` is the trivial scalar.
    right: Vec<Vec<C64>>,
}

impl MpsSampler {
    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.mps.num_qubits
    }

    /// The underlying state (for truncation accounting).
    pub fn state(&self) -> &MpsState {
        &self.mps
    }

    /// Samples one basis word (bit `i` = qubit `i`) by sequential
    /// site-by-site collapse against the precomputed environments, writing
    /// into a caller-provided scratch word. Registers of any width work —
    /// a >64-qubit train spills into a multi-word outcome — and ≤ 64-qubit
    /// draws stay on the inline allocation-free representation, so
    /// measure-at-end circuits past the old 64-qubit sampler cap keep the
    /// `O(n·χ²)`-per-shot fast path instead of falling back to trajectory
    /// replay.
    pub fn sample_into(&self, rng: &mut impl Rng, word: &mut OutcomeWord) {
        word.clear();
        let mut left: Vec<C64> = vec![C64::ONE];
        for (i, t) in self.mps.tensors.iter().enumerate() {
            let (dl, dr) = (t.dl, t.dr);
            let env = &self.right[i + 1];
            let mut cond = [vec![C64::ZERO; dr], vec![C64::ZERO; dr]];
            let mut weights = [0.0f64; 2];
            for s in 0..2 {
                // u_s[r] = Σ_l left[l] A_s[l,r]
                for (l, &lv) in left.iter().enumerate().take(dl) {
                    if lv == C64::ZERO {
                        continue;
                    }
                    let row = &t.a[(l * 2 + s) * dr..(l * 2 + s) * dr + dr];
                    for (cv, &av) in cond[s].iter_mut().zip(row) {
                        *cv += lv * av;
                    }
                }
                // w_s = Σ_{r,r'} u_s[r] env[r,r'] conj(u_s[r'])
                let mut acc = 0.0;
                for (r, &cv) in cond[s].iter().enumerate() {
                    if cv == C64::ZERO {
                        continue;
                    }
                    for rp in 0..dr {
                        acc += (cv * env[r * dr + rp] * cond[s][rp].conj()).re;
                    }
                }
                weights[s] = acc.max(0.0);
            }
            let total = weights[0] + weights[1];
            let p1 = if total <= 0.0 {
                0.0
            } else {
                weights[1] / total
            };
            let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
            let s = usize::from(outcome);
            if outcome {
                word.set_bit(i, true);
            }
            left = std::mem::take(&mut cond[s]);
            if weights[s] > 0.0 {
                let scale = 1.0 / weights[s].sqrt();
                for z in &mut left {
                    *z = *z * scale;
                }
            }
        }
    }

    /// Allocating convenience around [`MpsSampler::sample_into`].
    pub fn sample(&self, rng: &mut impl Rng) -> OutcomeWord {
        let mut word = OutcomeWord::zero();
        self.sample_into(rng, &mut word);
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mps_vs_dense(gates: &[(Gate, Vec<usize>)], n: usize, max_bond: usize) {
        let mut mps = MpsState::new(n, max_bond);
        let mut sv = StateVector::zero(n);
        for (g, qs) in gates {
            mps.apply_gate(*g, qs);
            sv.apply_gate(*g, qs);
        }
        let contracted = mps.to_statevector();
        for (i, (a, b)) in contracted
            .amplitudes()
            .iter()
            .zip(sv.amplitudes())
            .enumerate()
        {
            assert!(a.approx_eq(*b, 1e-10), "amp {i}: {a} vs {b}");
        }
    }

    #[test]
    fn bell_state_matches_dense() {
        mps_vs_dense(&[(Gate::H, vec![0]), (Gate::CX, vec![0, 1])], 2, 2);
    }

    #[test]
    fn nonadjacent_gates_route_through_swaps() {
        mps_vs_dense(
            &[
                (Gate::H, vec![0]),
                (Gate::CX, vec![0, 3]),
                (Gate::T, vec![3]),
                (Gate::CX, vec![3, 1]),
                (Gate::CP(0.7), vec![4, 0]),
            ],
            5,
            8,
        );
    }

    #[test]
    fn reversed_operand_order_is_respected() {
        // CX with control above target exercises the permuted matrix path.
        mps_vs_dense(
            &[
                (Gate::X, vec![2]),
                (Gate::CX, vec![2, 0]),
                (Gate::CRZ(0.9), vec![2, 1]),
            ],
            3,
            4,
        );
    }

    #[test]
    fn three_qubit_gates_decompose_exactly() {
        for input in 0..8usize {
            let prep: Vec<(Gate, Vec<usize>)> = (0..3)
                .filter(|b| (input >> b) & 1 == 1)
                .map(|b| (Gate::X, vec![b]))
                .collect();
            let mut gates = prep.clone();
            gates.push((Gate::CCX, vec![0, 1, 2]));
            mps_vs_dense(&gates, 3, 4);
            let mut gates = prep;
            gates.push((Gate::CSWAP, vec![2, 0, 1]));
            mps_vs_dense(&gates, 3, 4);
        }
    }

    #[test]
    fn deep_random_circuit_untruncated_matches_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        let n = 6;
        let mut gates: Vec<(Gate, Vec<usize>)> = Vec::new();
        for _ in 0..60 {
            match rng.gen_range(0..5) {
                0 => gates.push((Gate::H, vec![rng.gen_range(0..n)])),
                1 => gates.push((Gate::T, vec![rng.gen_range(0..n)])),
                2 => gates.push((
                    Gate::RY(rng.gen_range(-2.0..2.0)),
                    vec![rng.gen_range(0..n)],
                )),
                3 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates.push((Gate::CX, vec![a, b]));
                }
                _ => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    gates.push((Gate::CP(rng.gen_range(-2.0..2.0)), vec![a, b]));
                }
            }
        }
        mps_vs_dense(&gates, n, 8); // 2^(6/2) = 8: untruncated
    }

    #[test]
    fn truncation_is_tracked_and_bounded() {
        // χ = 1 cannot hold a Bell pair: half the weight is discarded.
        let mut mps = MpsState::new(2, 1);
        mps.apply_gate(Gate::H, &[0]);
        mps.apply_gate(Gate::CX, &[0, 1]);
        assert!((mps.discarded_weight() - 0.5).abs() < 1e-12);
        assert!(mps.truncation_error_bound() >= mps.discarded_weight());
        // Untruncated runs report (numerically) zero.
        let mut exact = MpsState::new(2, 2);
        exact.apply_gate(Gate::H, &[0]);
        exact.apply_gate(Gate::CX, &[0, 1]);
        assert!(exact.discarded_weight() < 1e-20);
    }

    #[test]
    fn reinit_folds_peak_and_resets() {
        let mut mps = MpsState::new(2, 1);
        mps.apply_gate(Gate::H, &[0]);
        mps.apply_gate(Gate::CX, &[0, 1]);
        let before = mps.truncation_error_bound();
        assert!(before > 0.0);
        mps.reinit();
        assert_eq!(mps.discarded_weight(), 0.0);
        assert_eq!(mps.truncation_error_bound(), 0.0);
        // The worst completed trajectory's bound survives the reinit.
        assert!((mps.truncation_error() - before).abs() < 1e-12);
        assert!(mps.to_statevector().amplitudes()[0].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn measurement_collapses_and_correlates() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut mps = MpsState::new(3, 4);
            mps.apply_gate(Gate::H, &[0]);
            mps.apply_gate(Gate::CX, &[0, 1]);
            mps.apply_gate(Gate::CX, &[1, 2]);
            let m0 = mps.measure(0, &mut rng);
            assert_eq!(mps.measure(1, &mut rng), m0, "GHZ correlation");
            assert_eq!(mps.measure(2, &mut rng), m0, "GHZ correlation");
            assert!((mps.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mps = MpsState::new(2, 2);
        mps.apply_gate(Gate::H, &[0]);
        mps.apply_gate(Gate::CX, &[0, 1]);
        mps.reset(0, &mut rng);
        assert!(mps.prob_one(0) < 1e-12);
    }

    #[test]
    fn pauli_injection_matches_gates() {
        for (pauli, gate) in [
            (Pauli::X, Gate::X),
            (Pauli::Y, Gate::Y),
            (Pauli::Z, Gate::Z),
        ] {
            let mut a = MpsState::new(2, 2);
            a.apply_gate(Gate::H, &[0]);
            a.apply_gate(Gate::CX, &[0, 1]);
            let mut b = a.clone();
            a.apply_pauli(1, pauli);
            b.apply_gate(gate, &[1]);
            let fa = a.to_statevector();
            let fb = b.to_statevector();
            assert!((fa.fidelity(&fb) - 1.0).abs() < 1e-12, "{pauli:?}");
        }
    }

    #[test]
    fn sampler_matches_exact_distribution() {
        let mut mps = MpsState::new(3, 4);
        mps.apply_gate(Gate::H, &[0]);
        mps.apply_gate(Gate::CX, &[0, 1]);
        mps.apply_gate(Gate::RY(0.8), &[2]);
        let probs = mps.to_statevector().probabilities();
        let sampler = mps.into_sampler();
        let mut rng = StdRng::seed_from_u64(9);
        let shots = 20_000;
        let mut counts = [0usize; 8];
        let mut word = OutcomeWord::zero();
        for _ in 0..shots {
            sampler.sample_into(&mut rng, &mut word);
            counts[word.low64() as usize] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let f = counts[i] as f64 / shots as f64;
            assert!((f - p).abs() < 0.02, "basis {i}: sampled {f}, exact {p}");
        }
    }

    #[test]
    fn peak_bond_reflects_entanglement() {
        let mut mps = MpsState::new(4, 16);
        assert_eq!(mps.peak_bond(), 1);
        mps.apply_gate(Gate::H, &[0]);
        mps.apply_gate(Gate::CX, &[0, 1]);
        assert_eq!(mps.peak_bond(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_operands_are_rejected() {
        MpsState::new(2, 2).apply_gate(Gate::CX, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_operands_are_rejected() {
        MpsState::new(2, 2).apply_gate(Gate::H, &[2]);
    }
}
